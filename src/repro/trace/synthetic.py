"""Hand-built traces for tests and controlled experiments.

The OLTP trace generator produces realistic but complicated streams;
when testing the simulator itself it is far more useful to construct
tiny traces with exactly known sharing patterns (a line ping-ponging
between two CPUs, a read-only broadcast line, a private sweep) and
assert the resulting miss classification and latency charges.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Sequence, Tuple

from repro.cpu.events import encode
from repro.trace.generator import OltpTrace, TraceQuantum


def make_trace(
    ncpus: int,
    quanta: Sequence[Tuple[int, Iterable[int]]],
    *,
    page_bytes: int = 256,
    text_pages: frozenset = frozenset(),
    warmup_quanta: int = 0,
    measured_txns: int = 0,
    scale: int = 1,
) -> OltpTrace:
    """Build a replayable trace from (cpu, encoded-refs) pairs.

    Encode references with :func:`repro.cpu.events.encode`.
    """
    packed: List[TraceQuantum] = [
        TraceQuantum(cpu, array("q", list(refs))) for cpu, refs in quanta
    ]
    for q in packed:
        if not 0 <= q.cpu < ncpus:
            raise ValueError(f"quantum CPU {q.cpu} out of range for {ncpus} CPUs")
    return OltpTrace(
        ncpus=ncpus,
        scale=scale,
        page_bytes=page_bytes,
        text_pages=text_pages,
        quanta=packed,
        warmup_quanta=warmup_quanta,
        measured_txns=measured_txns,
        engine_stats=None,
        config=None,
    )


def sweep_refs(start_line: int, nlines: int, *, write: bool = False,
               instr: bool = False) -> List[int]:
    """Encoded sequential sweep over ``nlines`` lines."""
    return [encode(start_line + i, write=write, instr=instr) for i in range(nlines)]


def pingpong_trace(line: int, rounds: int, *, ncpus: int = 2,
                   page_bytes: int = 256) -> OltpTrace:
    """Two CPUs alternately writing one line: pure migratory sharing."""
    quanta = []
    for r in range(rounds):
        cpu = r % ncpus
        quanta.append((cpu, [encode(line, write=True)]))
    return make_trace(ncpus, quanta, page_bytes=page_bytes)
