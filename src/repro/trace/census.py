"""Workload census: attribute trace references and misses to regions.

When calibrating a synthetic workload (or extending this one), the
question is always *which structure* is generating the traffic: is the
direct-mapped cache thrashing on code, private PGAs, or the log?  The
census answers it by rebuilding the trace's address-space model
(placement is deterministic given the workload config and seed) and
classifying every physical line back to its region.

Three levels of analysis:

* :func:`census` — reference-stream composition per region (touches,
  distinct lines, read/write/instruction mix);
* :func:`attribute_misses` — replay the measured window through a
  stand-alone L2 model per node and attribute the misses per region.
  This deliberately ignores L1s and coherence (they do not change
  *which lines* miss much), making it fast and machine-independent
  enough for workload tuning.
* :func:`sharing_census` — the replay pipeline's pre-pass: classify
  every line as provably private to one coherence node or potentially
  shared.  A private line is touched by exactly one node over the
  *whole* trace (warmup included), so the directory can never send it
  an invalidation or downgrade; the batched multiprocessor engine
  (:mod:`repro.memsys.vectorized_mp`) replays such lines without
  consulting the coherence core at all.  Classification depends only
  on the *set* of (line, node) pairs, never on interleaving order, so
  it is stable under any re-interleaving of the trace's quanta — the
  property tests in ``tests/trace/test_census_properties.py`` enforce
  both facts.
"""

from __future__ import annotations

import weakref
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.machine import MachineConfig
from repro.trace.address_space import MemoryModel
from repro.trace.generator import OltpTrace


def _region_of_line(model: MemoryModel) -> Dict[int, str]:
    """Physical-page -> region-name map, with PGAs collapsed to 'pga'."""
    page_map: Dict[int, str] = {}
    page_bytes = model.page_bytes
    for name, region in model.regions.items():
        group = "pga" if name.startswith("pga") else name
        vpage0 = region.base // page_bytes
        vpage1 = (region.end - 1) // page_bytes
        for vpage in range(vpage0, vpage1 + 1):
            base_line = model._ppage_base_line(vpage)
            page_map[base_line // model.page_lines] = group
    return page_map


def rebuild_model(trace: OltpTrace) -> MemoryModel:
    """Reconstruct the address-space model the trace was built with."""
    if trace.config is None:
        raise ValueError("trace carries no workload config (synthetic trace?)")
    return MemoryModel(trace.config, seed=trace.config.seed)


@dataclass
class RegionStats:
    """Per-region reference composition over the measured window."""

    touches: int = 0
    distinct_lines: int = 0
    writes: int = 0
    instr: int = 0
    kernel: int = 0

    @property
    def write_fraction(self) -> float:
        return self.writes / self.touches if self.touches else 0.0


@dataclass
class TraceCensus:
    """Reference-stream composition of a trace, per region."""

    per_region: Dict[str, RegionStats] = field(default_factory=dict)
    total_refs: int = 0
    measured_txns: int = 0

    def render(self) -> str:
        lines = [
            "Workload census (measured window)",
            f"{'region':14s} {'refs/txn':>9s} {'lines':>7s} {'write%':>7s} "
            f"{'instr%':>7s} {'kernel%':>8s}",
        ]
        txns = max(1, self.measured_txns)
        ordered = sorted(
            self.per_region.items(), key=lambda kv: kv[1].touches, reverse=True
        )
        for name, s in ordered:
            lines.append(
                f"{name:14s} {s.touches / txns:9.1f} {s.distinct_lines:7d} "
                f"{100 * s.writes / max(1, s.touches):6.1f}% "
                f"{100 * s.instr / max(1, s.touches):6.1f}% "
                f"{100 * s.kernel / max(1, s.touches):7.1f}%"
            )
        lines.append(f"total: {self.total_refs:,} measured references")
        return "\n".join(lines)


def census(trace: OltpTrace) -> TraceCensus:
    """Compute the per-region composition of the measured window."""
    model = rebuild_model(trace)
    page_map = _region_of_line(model)
    page_lines = model.page_lines
    stats: Dict[str, RegionStats] = defaultdict(RegionStats)
    seen: Dict[str, set] = defaultdict(set)
    total = 0
    for quantum in trace.quanta[trace.warmup_quanta:]:
        for ref in quantum.refs:
            flags = ref & 15
            line = ref >> 4
            region = page_map.get(line // page_lines, "?")
            s = stats[region]
            s.touches += 1
            total += 1
            if flags & 1:
                s.writes += 1
            if flags & 2:
                s.instr += 1
            if flags & 4:
                s.kernel += 1
            seen[region].add(line)
    for region, lines_set in seen.items():
        stats[region].distinct_lines = len(lines_set)
    return TraceCensus(dict(stats), total, trace.measured_txns)


@dataclass
class MissAttribution:
    """Per-region L2 miss counts for one cache geometry."""

    machine_label: str
    misses: Dict[str, int]
    total: int
    measured_txns: int

    def render(self) -> str:
        lines = [
            f"L2 miss attribution — {self.machine_label} "
            f"({self.total / max(1, self.measured_txns):.1f} misses/txn)",
            f"{'region':14s} {'misses':>8s} {'per txn':>9s} {'share':>7s}",
        ]
        for region, count in Counter(self.misses).most_common():
            lines.append(
                f"{region:14s} {count:8d} "
                f"{count / max(1, self.measured_txns):9.2f} "
                f"{100 * count / max(1, self.total):6.1f}%"
            )
        return "\n".join(lines)


def attribute_misses(trace: OltpTrace, machine: MachineConfig) -> MissAttribution:
    """Replay through a stand-alone L2 model and classify the misses.

    The model is one LRU set-associative cache per node at the
    machine's scaled L2 geometry — no L1 filtering and no coherence,
    so absolute counts differ slightly from a full simulation, but the
    per-region attribution (the tuning signal) matches.
    """
    if trace.ncpus != machine.ncpus:
        raise ValueError("machine/trace CPU count mismatch")
    model = rebuild_model(trace)
    page_map = _region_of_line(model)
    page_lines = model.page_lines
    nsets = machine.scaled_l2_size // (machine.l2_assoc * 64)
    assoc = machine.l2_assoc
    cores = machine.cores_per_node
    sets: List[Dict[int, list]] = [
        defaultdict(list) for _ in range(machine.num_nodes)
    ]
    misses: Counter = Counter()
    total = 0
    for qi, quantum in enumerate(trace.quanta):
        measured = qi >= trace.warmup_quanta
        node_sets = sets[quantum.cpu // cores]
        for ref in quantum.refs:
            line = ref >> 4
            ways = node_sets[line % nsets]
            if line in ways:
                if ways[0] != line:
                    ways.remove(line)
                    ways.insert(0, line)
                continue
            if measured:
                misses[page_map.get(line // page_lines, "?")] += 1
                total += 1
            if len(ways) >= assoc:
                ways.pop()
            ways.insert(0, line)
    return MissAttribution(machine.label, dict(misses), total, trace.measured_txns)


@dataclass
class SharingCensus:
    """Flattened per-reference view of a trace plus sharing classes.

    Phase 1 of the staged replay pipeline.  Every array is aligned
    with the flattened reference stream (all quanta, warmup included,
    in trace order):

    * ``lines`` / ``flags`` — the unpacked reference stream;
    * ``nodes`` — issuing coherence node per reference;
    * ``q_offsets`` — length ``len(quanta) + 1``; quantum *q* owns the
      half-open slice ``[q_offsets[q], q_offsets[q + 1])``;
    * ``q_nodes`` — issuing node per quantum;
    * ``uniq`` / ``uniq_private`` — sorted distinct lines and their
      classification;
    * ``private`` — per-reference boolean, True iff the line is only
      ever touched by a single node.

    The classification is conservative-exact: it is independent of the
    home map (a private line is private under *any* home assignment),
    and a line flagged private provably never receives an
    invalidation, downgrade or intervention from the directory.

    ``derived`` is a scratch cache for engine-side projections of
    these arrays (python lists, effective flags, per-geometry set
    indices).  It rides on the census MRU cache so repeated replays of
    one trace — engine sweeps, benchmark rounds, campaign grids — pay
    the array-to-list conversions once; it never affects equality or
    classification.
    """

    lines: np.ndarray
    flags: np.ndarray
    nodes: np.ndarray
    q_offsets: np.ndarray
    q_nodes: np.ndarray
    uniq: np.ndarray
    uniq_private: np.ndarray
    private: np.ndarray
    cores_per_node: int
    derived: dict = field(default_factory=dict, repr=False, compare=False)

    def is_private(self, line: int) -> bool:
        """Whether ``line`` is provably private to one node."""
        i = int(np.searchsorted(self.uniq, line))
        return (
            i < len(self.uniq)
            and int(self.uniq[i]) == line
            and bool(self.uniq_private[i])
        )

    def private_lines(self) -> np.ndarray:
        return self.uniq[self.uniq_private]

    def shared_lines(self) -> np.ndarray:
        return self.uniq[~self.uniq_private]


# Small MRU cache so repeated replays of one trace (engine sweeps,
# differential tests, per-machine experiment grids) share one census.
# Same idiom as memsys.vectorized._VIEW_CACHE: identity plus a weakref
# liveness check, because traces are not hashable.
_CENSUS_CACHE: List[Tuple[int, int, object, "SharingCensus"]] = []
_CENSUS_CACHE_SIZE = 2


def sharing_census(trace: OltpTrace, cores_per_node: int = 1) -> SharingCensus:
    """Classify every line in ``trace`` as node-private or shared.

    The scan covers *all* quanta — warmup included — because privacy
    must hold over the whole replay for the batched engine to skip the
    coherence core.  Classification is order-insensitive: it depends
    only on the set of (line, node) pairs, so any re-interleaving of
    the quanta yields the same result.
    """
    for i, (tid, cpn, ref, cached) in enumerate(_CENSUS_CACHE):
        if tid == id(trace) and cpn == cores_per_node and ref() is trace:
            if i:
                _CENSUS_CACHE.insert(0, _CENSUS_CACHE.pop(i))
            return cached

    parts = [
        np.frombuffer(q.refs, dtype=np.int64) for q in trace.quanta
    ]
    counts = np.array([len(p) for p in parts], dtype=np.int64)
    refs = (
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    )
    lines = refs >> 4
    flags = refs & 15
    q_nodes = np.array(
        [q.cpu // cores_per_node for q in trace.quanta], dtype=np.int64
    )
    nodes = np.repeat(q_nodes, counts)
    q_offsets = np.concatenate(
        ([0], np.cumsum(counts))
    ).astype(np.int64)

    if len(lines):
        order = np.argsort(lines, kind="stable")
        ls = lines[order]
        ns = nodes[order]
        starts = np.flatnonzero(np.r_[True, ls[1:] != ls[:-1]])
        uniq = ls[starts]
        nmin = np.minimum.reduceat(ns, starts)
        nmax = np.maximum.reduceat(ns, starts)
        uniq_private = nmin == nmax
        private = uniq_private[np.searchsorted(uniq, lines)]
    else:
        uniq = np.empty(0, dtype=np.int64)
        uniq_private = np.empty(0, dtype=bool)
        private = np.empty(0, dtype=bool)

    sc = SharingCensus(
        lines=lines,
        flags=flags,
        nodes=nodes,
        q_offsets=q_offsets,
        q_nodes=q_nodes,
        uniq=uniq,
        uniq_private=uniq_private,
        private=private,
        cores_per_node=cores_per_node,
    )
    _CENSUS_CACHE.insert(
        0, (id(trace), cores_per_node, weakref.ref(trace), sc)
    )
    del _CENSUS_CACHE[_CENSUS_CACHE_SIZE:]
    return sc
