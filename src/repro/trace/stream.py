"""Streaming trace pipeline: quantum-aligned chunks, bounded memory.

The materialized :class:`~repro.trace.generator.OltpTrace` caps
workload size at whatever fits in RAM.  This module is the seam that
removes the cap: a :class:`StreamedTrace` carries the same metadata as
a materialized trace but delivers its quanta through a single-use
iterator of :class:`TraceChunk` objects, so the producer (the live
workload generator, or a chunked archive) and the consumer (a replay
engine) each hold only one chunk at a time.

Three invariants make streams interchangeable with materialized
traces:

* **Quantum alignment** — a chunk boundary never splits a quantum;
  concatenating every chunk's quanta reconstructs the materialized
  trace exactly (tests/trace/test_stream_properties.py).
* **Warmup visibility** — ``warmup_quanta`` may be unknown (``None``)
  while the stream is still inside warmup, but the producer always
  publishes it *before* yielding the chunk that contains the boundary
  quantum, so engines that re-read it at every chunk cross the
  measurement boundary at exactly the same reference as the
  materialized replay.
* **Counted consumption** — the stream validates and counts quanta and
  references as they pass through, so end-of-run accounting
  (``measured_refs``) and the materialized-trace validation errors
  (empty trace, no measured quanta, out-of-range CPU) are preserved.

Engines do not special-case trace types: :func:`iter_chunks` presents
a materialized trace as one zero-copy chunk and a stream as itself.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.integrity.errors import StateError, TraceMismatchError
from repro.trace.generator import OltpTrace, TraceQuantum

__all__ = [
    "DEFAULT_CHUNK_TXNS",
    "NEVER_WARMUP",
    "TraceChunk",
    "StreamedTrace",
    "iter_chunks",
    "iter_quanta",
    "is_streaming",
    "warmup_bound",
]

#: Default generation batch, in transactions, for :func:`stream_trace`
#: and the streaming store.  ~128 txns is a fraction of a megabyte of
#: packed references — small enough to keep RSS flat, large enough to
#: amortize the per-chunk bookkeeping.
DEFAULT_CHUNK_TXNS = 128

#: Sentinel for "warmup boundary not yet known": larger than any
#: quantum index, so ``qi == warmup`` never fires and ``qi >= warmup``
#: (measurement sampling) stays off until the boundary is published.
NEVER_WARMUP = 1 << 62


class TraceChunk:
    """A contiguous run of whole quanta, starting at global index ``start``."""

    __slots__ = ("start", "quanta")

    def __init__(self, start: int, quanta: List[TraceQuantum]):
        self.start = start
        self.quanta = quanta

    @property
    def refs(self) -> int:
        return sum(len(q.refs) for q in self.quanta)

    def __len__(self) -> int:
        return len(self.quanta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceChunk(start={self.start}, quanta={len(self.quanta)})"


def is_streaming(trace) -> bool:
    """True when ``trace`` delivers its quanta through a chunk stream."""
    return getattr(trace, "streaming", False)


def warmup_bound(trace) -> int:
    """The warmup boundary as an engine-comparable quantum index.

    ``None`` (boundary not yet produced) maps to :data:`NEVER_WARMUP`;
    engines re-read this at every chunk, so the boundary is always
    known by the time the chunk containing it replays.
    """
    warmup = trace.warmup_quanta
    return NEVER_WARMUP if warmup is None else warmup


class StreamedTrace:
    """A chunked, single-consumption view of an OLTP trace.

    Metadata (``ncpus``, ``page_bytes``, ``text_pages``, …) mirrors
    :class:`~repro.trace.generator.OltpTrace` and is available before
    consumption; ``warmup_quanta`` and ``engine_stats`` may start as
    ``None`` on a live generator stream and are filled in by the
    producer as the stream advances (see the module docstring for the
    warmup-visibility contract).

    The chunk iterator is consumed exactly once — replaying a stream
    twice requires re-creating it — and validates as it goes:
    out-of-range CPUs, non-contiguous chunks, empty streams and
    all-warmup streams raise the same
    :class:`~repro.integrity.errors.TraceMismatchError` family the
    materialized validation does.
    """

    streaming = True

    def __init__(self, *, ncpus, scale, page_bytes, text_pages,
                 measured_txns, config, chunks: Iterable[TraceChunk],
                 warmup_quanta: Optional[int] = None,
                 engine_stats=None, num_quanta: Optional[int] = None):
        self.ncpus = ncpus
        self.scale = scale
        self.page_bytes = page_bytes
        self.text_pages = text_pages
        self.measured_txns = measured_txns
        self.config = config
        self.warmup_quanta = warmup_quanta
        self.engine_stats = engine_stats
        self.num_quanta = num_quanta
        self._chunks = iter(chunks)
        self._consumed = False
        # Filled while the stream is consumed.
        self.quanta_seen = 0
        self.refs_seen = 0
        self.measured_refs_seen = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: OltpTrace,
                   chunk_quanta: Optional[int] = None) -> "StreamedTrace":
        """Chunked view of a materialized trace (zero-copy quantum slices).

        ``chunk_quanta=None`` yields the whole trace as one chunk; any
        positive value slices it into runs of that many quanta.  Used
        by the differential tests to replay every engine through the
        chunked path against a known materialized baseline.
        """
        n = len(trace.quanta)
        step = n if not chunk_quanta else max(1, int(chunk_quanta))

        def produce() -> Iterator[TraceChunk]:
            for start in range(0, n, step):
                yield TraceChunk(start, trace.quanta[start:start + step])

        return cls(
            ncpus=trace.ncpus,
            scale=trace.scale,
            page_bytes=trace.page_bytes,
            text_pages=trace.text_pages,
            measured_txns=trace.measured_txns,
            config=trace.config,
            engine_stats=trace.engine_stats,
            warmup_quanta=trace.warmup_quanta,
            num_quanta=n,
            chunks=produce(),
        )

    # -- consumption -----------------------------------------------------------

    @property
    def consumed(self) -> bool:
        return self._consumed

    @property
    def total_refs(self) -> int:
        return self.refs_seen

    @property
    def measured_refs(self) -> int:
        return self.measured_refs_seen

    def chunks(self) -> Iterator[TraceChunk]:
        """The validating chunk iterator; callable exactly once."""
        if self._consumed:
            raise StateError(
                "a StreamedTrace is single-consumption; re-create the "
                "stream to replay it again"
            )
        self._consumed = True
        return self._consume()

    def _consume(self) -> Iterator[TraceChunk]:
        ncpus = self.ncpus
        expected = 0
        for chunk in self._chunks:
            if chunk.start != expected:
                raise StateError(
                    f"stream chunk starts at quantum {chunk.start}, "
                    f"expected {expected}; the producer broke chunk "
                    "contiguity"
                )
            refs = 0
            for q in chunk.quanta:
                if not 0 <= q.cpu < ncpus:
                    raise TraceMismatchError(
                        f"trace schedules CPU {q.cpu}, but the trace "
                        f"declares CPUs 0..{ncpus - 1}"
                    )
                refs += len(q.refs)
            n = len(chunk.quanta)
            warmup = self.warmup_quanta
            if warmup is not None and warmup < expected + n:
                if warmup <= expected:
                    self.measured_refs_seen += refs
                else:
                    self.measured_refs_seen += sum(
                        len(q.refs) for q in chunk.quanta[warmup - expected:]
                    )
            expected += n
            self.quanta_seen += n
            self.refs_seen += refs
            yield chunk

        if self.num_quanta is not None and expected != self.num_quanta:
            raise StateError(
                f"stream ended after {expected} quanta but declared "
                f"{self.num_quanta}; the producer is truncated"
            )
        self.num_quanta = expected
        if self.warmup_quanta is None:
            # Producer never crossed the boundary: mirror the
            # materialized builder, which finalizes warmup to 0.
            self.warmup_quanta = 0
            self.measured_refs_seen = self.refs_seen
        if expected == 0:
            raise TraceMismatchError(
                "trace has no scheduling quanta; nothing to replay"
            )
        if not 0 <= self.warmup_quanta < expected:
            raise TraceMismatchError(
                f"warmup_quanta={self.warmup_quanta} leaves no measured "
                f"quanta (trace has {expected}); lower the warmup or "
                "lengthen the trace"
            )

    def collect(self) -> OltpTrace:
        """Materialize the remaining stream into an ``OltpTrace``.

        The vectorized engines' structural algorithms (global argsort
        runs, first-touch ``np.unique``) need the whole reference
        stream at once; they accept a chunk iterator by collecting it
        here.  Consumes the stream.
        """
        from repro.oltp.engine import EngineStats

        quanta: List[TraceQuantum] = []
        for chunk in self.chunks():
            quanta.extend(chunk.quanta)
        return OltpTrace(
            ncpus=self.ncpus,
            scale=self.scale,
            page_bytes=self.page_bytes,
            text_pages=self.text_pages,
            quanta=quanta,
            warmup_quanta=self.warmup_quanta,
            measured_txns=self.measured_txns,
            engine_stats=self.engine_stats or EngineStats(),
            config=self.config,
        )

    # -- producer-side adapters ------------------------------------------------

    def tee(self, sink: Callable[[TraceChunk], None],
            finish: Optional[Callable[["StreamedTrace"], None]] = None,
            abort: Optional[Callable[[], None]] = None) -> "StreamedTrace":
        """Pass every produced chunk to ``sink`` on its way downstream.

        ``finish`` fires after the producer is exhausted (metadata such
        as ``warmup_quanta`` and ``engine_stats`` is final by then);
        ``abort`` fires if production or consumption dies mid-stream.
        The streaming store uses this to spill an archive while the
        first consumer replays, without a second pass.
        """
        if self._consumed:
            raise StateError("cannot tee a consumed stream")
        inner = self._chunks

        def produce() -> Iterator[TraceChunk]:
            try:
                for chunk in inner:
                    sink(chunk)
                    yield chunk
            except BaseException:
                if abort is not None:
                    abort()
                raise
            else:
                if finish is not None:
                    finish(self)

        self._chunks = produce()
        return self

    def rechunk(self, chunk_quanta: int) -> "StreamedTrace":
        """Re-slice the stream into chunks of ``chunk_quanta`` quanta.

        Quanta are only ever regrouped — never split or reordered — so
        the warmup-visibility contract is preserved (a regrouped chunk
        yields no earlier than the producer chunk it came from).
        Memory stays bounded by one producer chunk plus one output
        chunk.
        """
        if self._consumed:
            raise StateError("cannot rechunk a consumed stream")
        step = max(1, int(chunk_quanta))
        inner = self._chunks

        def produce() -> Iterator[TraceChunk]:
            buf: List[TraceQuantum] = []
            start = 0
            for chunk in inner:
                buf.extend(chunk.quanta)
                while len(buf) >= step:
                    yield TraceChunk(start, buf[:step])
                    start += step
                    buf = buf[step:]
            if buf:
                yield TraceChunk(start, buf)

        self._chunks = produce()
        return self


def iter_chunks(trace) -> Iterator[TraceChunk]:
    """Uniform chunk iteration over materialized and streamed traces.

    A materialized :class:`OltpTrace` becomes a single zero-copy chunk
    (the engines' historical whole-trace behaviour); a
    :class:`StreamedTrace` is consumed through its validating iterator.
    """
    if is_streaming(trace):
        return trace.chunks()
    return iter((TraceChunk(0, trace.quanta),))


def iter_quanta(trace, engine: str = "") -> Iterator[
        Tuple[int, TraceQuantum, bool, bool]]:
    """Flat per-quantum replay iteration for the scalar engines.

    Yields ``(qi, quantum, at_boundary, measured)``: ``at_boundary``
    is True exactly once, at the quantum where the warmup/measurement
    boundary must be crossed, and ``measured`` is True from that
    quantum on — both already normalized against a stream's
    late-arriving ``warmup_quanta``, so the engine loops carry no
    warmup bookkeeping of their own.

    On a streamed trace every chunk additionally emits a
    ``stream.chunk`` observability span (engine, chunk index, quanta,
    references) when tracing is enabled.
    """
    if not is_streaming(trace):
        warmup = trace.warmup_quanta
        for qi, quantum in enumerate(trace.quanta):
            yield qi, quantum, qi == warmup, qi >= warmup
        return

    from repro.obs import current_tracer

    tracer = current_tracer()
    spans = tracer.enabled
    qi = 0
    for ci, chunk in enumerate(trace.chunks()):
        t0 = time.perf_counter() if spans else 0.0
        # The producer publishes the boundary before yielding the
        # chunk that contains it, so one re-read per chunk is exact.
        warmup = warmup_bound(trace)
        for quantum in chunk.quanta:
            yield qi, quantum, qi == warmup, qi >= warmup
            qi += 1
        if spans:
            tracer.add_span(
                "stream.chunk", t0, time.perf_counter() - t0,
                engine=engine, chunk=ci, start=chunk.start,
                quanta=len(chunk.quanta), refs=chunk.refs,
            )
