"""Save and load traces as compressed ``.npz`` archives.

Workload generation is cheap relative to a full figure sweep, but
saving traces lets long experiments (and other tools) replay exactly
the same workload across processes and machines.  The format packs all
quanta into three parallel arrays (cpu ids, offsets, references) plus
a JSON metadata blob; loading reconstructs a fully functional
:class:`~repro.trace.generator.OltpTrace`.
"""

from __future__ import annotations

import json
from array import array
from dataclasses import asdict
from typing import Union

import numpy as np

from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import EngineStats
from repro.oltp.schema import TpcbScale
from repro.trace.generator import OltpTrace, TraceQuantum

#: Format version written into every archive.
FORMAT_VERSION = 1


def save_trace(trace: OltpTrace, path: Union[str, "object"]) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive."""
    cpus = np.fromiter((q.cpu for q in trace.quanta), dtype=np.int32,
                       count=len(trace.quanta))
    lengths = np.fromiter((len(q.refs) for q in trace.quanta), dtype=np.int64,
                          count=len(trace.quanta))
    offsets = np.zeros(len(trace.quanta) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    refs = np.empty(int(offsets[-1]), dtype=np.int64)
    for i, q in enumerate(trace.quanta):
        refs[offsets[i]:offsets[i + 1]] = q.refs

    config = asdict(trace.config)
    tpcb = config.pop("tpcb")
    meta = {
        "format": FORMAT_VERSION,
        "ncpus": trace.ncpus,
        "scale": trace.scale,
        "page_bytes": trace.page_bytes,
        "warmup_quanta": trace.warmup_quanta,
        "measured_txns": trace.measured_txns,
        "engine_stats": asdict(trace.engine_stats),
        "config": config,
        "tpcb": tpcb,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        cpus=cpus,
        offsets=offsets,
        refs=refs,
        text_pages=np.array(sorted(trace.text_pages), dtype=np.int64),
    )


def load_trace(path: Union[str, "object"]) -> OltpTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {meta.get('format')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        cpus = data["cpus"]
        offsets = data["offsets"]
        refs = data["refs"]
        text_pages = frozenset(int(p) for p in data["text_pages"])

    quanta = [
        TraceQuantum(int(cpus[i]),
                     array("q", refs[offsets[i]:offsets[i + 1]].tolist()))
        for i in range(len(cpus))
    ]
    config = WorkloadConfig(tpcb=TpcbScale(**meta["tpcb"]), **meta["config"])
    return OltpTrace(
        ncpus=meta["ncpus"],
        scale=meta["scale"],
        page_bytes=meta["page_bytes"],
        text_pages=text_pages,
        quanta=quanta,
        warmup_quanta=meta["warmup_quanta"],
        measured_txns=meta["measured_txns"],
        engine_stats=EngineStats(**meta["engine_stats"]),
        config=config,
    )
