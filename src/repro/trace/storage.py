"""Save and load traces as compressed ``.npz`` archives.

Workload generation is cheap relative to a full figure sweep, but
saving traces lets long experiments (and other tools) replay exactly
the same workload across processes and machines.  The format packs all
quanta into three parallel arrays (cpu ids, offsets, references) plus
a JSON metadata blob; loading reconstructs a fully functional
:class:`~repro.trace.generator.OltpTrace`.

Archives are versioned and checksummed (format 2 adds a CRC-32 over
the packed arrays).  Any unreadable, corrupt, truncated, or
future-version archive raises
:class:`~repro.integrity.errors.TraceFormatError` instead of leaking a
raw numpy/zipfile/KeyError; format-1 archives (no checksum) still
load.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from array import array
from dataclasses import asdict
from typing import Union

import numpy as np

from repro.integrity.errors import TraceFormatError
from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import EngineStats
from repro.oltp.schema import TpcbScale
from repro.scenario.workload import BASELINE_WORKLOAD, WorkloadSpec
from repro.trace.generator import OltpTrace, TraceQuantum

#: Format version written into every archive.
FORMAT_VERSION = 2

#: Oldest format this build can still read (format 1 lacks a checksum).
OLDEST_READABLE_VERSION = 1

#: Format version of *chunked* (streaming) archives, versioned
#: independently of the whole-trace format above.
STREAM_FORMAT_VERSION = 1


def _content_crc(cpus, offsets, refs, text_pages) -> int:
    """CRC-32 over the packed data arrays (not the metadata blob)."""
    crc = 0
    for arr in (cpus, offsets, refs, text_pages):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


def _config_from_meta(meta: dict) -> WorkloadConfig:
    """Rebuild the nested WorkloadConfig from archive metadata.

    Pre-scenario archives carry no ``workload`` key; they were all
    generated with the baseline TPC-B spec, so that is what a missing
    key means.
    """
    config = dict(meta["config"])
    workload = config.pop("workload", None)
    return WorkloadConfig(
        tpcb=TpcbScale(**meta["tpcb"]),
        workload=(BASELINE_WORKLOAD if workload is None
                  else WorkloadSpec.from_dict(workload)),
        **config,
    )


def save_trace(trace: OltpTrace, path: Union[str, "object"]) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive."""
    cpus = np.fromiter((q.cpu for q in trace.quanta), dtype=np.int32,
                       count=len(trace.quanta))
    lengths = np.fromiter((len(q.refs) for q in trace.quanta), dtype=np.int64,
                          count=len(trace.quanta))
    offsets = np.zeros(len(trace.quanta) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    refs = np.empty(int(offsets[-1]), dtype=np.int64)
    for i, q in enumerate(trace.quanta):
        refs[offsets[i]:offsets[i + 1]] = q.refs
    text_pages = np.array(sorted(trace.text_pages), dtype=np.int64)

    config = asdict(trace.config)
    tpcb = config.pop("tpcb")
    config["workload"] = trace.config.workload.to_dict()
    meta = {
        "format": FORMAT_VERSION,
        "crc32": _content_crc(cpus, offsets, refs, text_pages),
        "ncpus": trace.ncpus,
        "scale": trace.scale,
        "page_bytes": trace.page_bytes,
        "warmup_quanta": trace.warmup_quanta,
        "measured_txns": trace.measured_txns,
        "engine_stats": asdict(trace.engine_stats),
        "config": config,
        "tpcb": tpcb,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        cpus=cpus,
        offsets=offsets,
        refs=refs,
        text_pages=text_pages,
    )


def save_trace_atomic(trace: OltpTrace, path: str) -> None:
    """Write ``trace`` to ``path`` with no torn-write window.

    Several campaign processes may race to spill the same trace; each
    writes a private temporary archive, fsyncs it, and atomically
    renames it into place, so readers only ever observe a complete
    durable archive (the last writer wins with identical
    bytes-equivalent content) even across a crash or power cut.
    """
    tmp = f"{path}.tmp.{os.getpid()}.npz"
    try:
        save_trace(trace, tmp)
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load_trace(path: Union[str, "object"]) -> OltpTrace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`TraceFormatError` when the archive is corrupt,
    truncated, missing required members, fails its checksum, or was
    written by a format this build cannot read.  A missing file still
    raises the ordinary ``FileNotFoundError``.
    """
    try:
        return _load_trace(path)
    except TraceFormatError:
        raise
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, KeyError, IndexError,
            TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"cannot read trace archive {path!r}: {exc}"
        ) from exc


def _load_trace(path) -> OltpTrace:
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        version = meta.get("format")
        if (not isinstance(version, int)
                or not OLDEST_READABLE_VERSION <= version <= FORMAT_VERSION):
            raise TraceFormatError(
                f"unsupported trace format {version!r} (this build reads "
                f"versions {OLDEST_READABLE_VERSION}..{FORMAT_VERSION}); "
                "regenerate the trace or upgrade the package"
            )
        cpus = data["cpus"]
        offsets = data["offsets"]
        refs = data["refs"]
        text_pages_arr = data["text_pages"]

    if version >= 2:
        expected = meta.get("crc32")
        actual = _content_crc(cpus, offsets, refs, text_pages_arr)
        if expected != actual:
            raise TraceFormatError(
                f"trace archive {path!r} failed its content checksum "
                f"(stored {expected!r}, computed {actual}); the file is "
                "corrupt — regenerate it"
            )
    if (len(offsets) != len(cpus) + 1
            or (len(offsets) and (int(offsets[0]) != 0
                                  or int(offsets[-1]) != len(refs)))
            or np.any(np.diff(offsets) < 0)):
        raise TraceFormatError(
            f"trace archive {path!r} has inconsistent quantum offsets; "
            "the file is truncated or corrupt"
        )

    text_pages = frozenset(int(p) for p in text_pages_arr)
    quanta = [
        TraceQuantum(int(cpus[i]),
                     array("q", refs[offsets[i]:offsets[i + 1]].tolist()))
        for i in range(len(cpus))
    ]
    config = _config_from_meta(meta)
    return OltpTrace(
        ncpus=meta["ncpus"],
        scale=meta["scale"],
        page_bytes=meta["page_bytes"],
        text_pages=text_pages,
        quanta=quanta,
        warmup_quanta=meta["warmup_quanta"],
        measured_txns=meta["measured_txns"],
        engine_stats=EngineStats(**meta["engine_stats"]),
        config=config,
    )


# -- chunked (streaming) archives ----------------------------------------------
#
# A chunked archive is still one ``.npz`` zip, but the reference
# stream is split across one pair of members per producer chunk
# (``refs_<i>`` / ``lens_<i>``).  ``np.load`` reads zip members
# lazily, so a reader decompresses one chunk at a time and peak memory
# stays bounded by the largest chunk — the on-disk half of the
# streaming pipeline in :mod:`repro.trace.stream`.  The small global
# members (``meta``, ``cpus``, ``text_pages``) load eagerly; each
# chunk carries its own CRC-32, verified as it streams past.


def _chunk_crc(lens: np.ndarray, refs: np.ndarray) -> int:
    crc = zlib.crc32(np.ascontiguousarray(lens).tobytes())
    return zlib.crc32(np.ascontiguousarray(refs).tobytes(), crc)


class ChunkedTraceWriter:
    """Incrementally spill a chunk stream into an atomic archive.

    Chunks are appended as they are produced (one zip member pair
    each); :meth:`finish` writes the global members and metadata, then
    fsyncs and atomically renames into place — exactly the
    :func:`save_trace_atomic` crash contract, so a reader only ever
    observes a complete archive.  :meth:`abort` discards the partial
    temporary file.
    """

    def __init__(self, path: str):
        self.path = path
        self._tmp = f"{path}.tmp.{os.getpid()}.npz"
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._zf = zipfile.ZipFile(self._tmp, "w", zipfile.ZIP_DEFLATED)
        self._cpus: list = []
        self._chunk_quanta: list = []
        self._chunk_crcs: list = []
        self._total_refs = 0
        self._done = False

    def _write_member(self, name: str, arr: np.ndarray) -> None:
        with self._zf.open(name + ".npy", "w", force_zip64=True) as fh:
            np.lib.format.write_array(fh, np.ascontiguousarray(arr),
                                      allow_pickle=False)

    def add_chunk(self, chunk) -> None:
        """Append one :class:`~repro.trace.stream.TraceChunk`."""
        i = len(self._chunk_quanta)
        lens = np.fromiter((len(q.refs) for q in chunk.quanta),
                           dtype=np.int64, count=len(chunk.quanta))
        refs = np.empty(int(lens.sum()), dtype=np.int64)
        pos = 0
        for q in chunk.quanta:
            n = len(q.refs)
            refs[pos:pos + n] = q.refs
            pos += n
        self._write_member(f"lens_{i}", lens)
        self._write_member(f"refs_{i}", refs)
        self._cpus.extend(q.cpu for q in chunk.quanta)
        self._chunk_quanta.append(len(chunk.quanta))
        self._chunk_crcs.append(_chunk_crc(lens, refs))
        self._total_refs += int(lens.sum())

    def finish(self, stream) -> None:
        """Write global members + metadata from the exhausted ``stream``."""
        if self._done:
            return
        self._done = True
        cpus = np.array(self._cpus, dtype=np.int32)
        text_pages = np.array(sorted(stream.text_pages), dtype=np.int64)
        self._write_member("cpus", cpus)
        self._write_member("text_pages", text_pages)
        config = asdict(stream.config)
        tpcb = config.pop("tpcb")
        config["workload"] = stream.config.workload.to_dict()
        meta = {
            "format": STREAM_FORMAT_VERSION,
            "ncpus": stream.ncpus,
            "scale": stream.scale,
            "page_bytes": stream.page_bytes,
            "warmup_quanta": stream.warmup_quanta,
            "measured_txns": stream.measured_txns,
            "engine_stats": asdict(stream.engine_stats),
            "config": config,
            "tpcb": tpcb,
            "num_quanta": len(cpus),
            "total_refs": self._total_refs,
            "chunk_quanta": self._chunk_quanta,
            "chunk_crcs": self._chunk_crcs,
            "cpus_crc": zlib.crc32(cpus.tobytes()),
        }
        self._write_member(
            "meta", np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8))
        self._zf.close()
        fd = os.open(self._tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(self._tmp, self.path)

    def abort(self) -> None:
        """Discard the partial archive (idempotent)."""
        if self._done:
            return
        self._done = True
        try:
            self._zf.close()
        except Exception:
            pass
        try:
            os.unlink(self._tmp)
        except OSError:
            pass


def open_stream_archive(path: str):
    """Open a chunked archive as a bounded-memory ``StreamedTrace``.

    The header (metadata, per-quantum CPU ids, text pages) is read and
    validated eagerly; reference chunks decompress lazily, one at a
    time, as the stream is consumed.  A chunk that fails its CRC
    raises :class:`TraceFormatError` *mid-stream* — callers that want
    rebuild-on-corruption must validate before replaying into mutable
    state (see ``StreamingTraceStore.ensure_archived``).
    """
    from repro.trace.stream import StreamedTrace, TraceChunk

    try:
        data = np.load(path)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise TraceFormatError(
            f"cannot read chunked trace archive {path!r}: {exc}"
        ) from exc
    try:
        meta = json.loads(bytes(data["meta"]).decode())
        version = meta.get("format")
        if version != STREAM_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported chunked trace format {version!r} (this "
                f"build reads version {STREAM_FORMAT_VERSION}); "
                "regenerate the archive"
            )
        cpus = data["cpus"]
        text_pages_arr = data["text_pages"]
        chunk_quanta = meta["chunk_quanta"]
        chunk_crcs = meta["chunk_crcs"]
        if zlib.crc32(np.ascontiguousarray(cpus).tobytes()) != meta["cpus_crc"]:
            raise TraceFormatError(
                f"chunked trace archive {path!r} failed its cpu-array "
                "checksum; the file is corrupt — regenerate it"
            )
        if (len(chunk_quanta) != len(chunk_crcs)
                or sum(chunk_quanta) != meta["num_quanta"]
                or len(cpus) != meta["num_quanta"]):
            raise TraceFormatError(
                f"chunked trace archive {path!r} has an inconsistent "
                "chunk table; the file is truncated or corrupt"
            )
        config = _config_from_meta(meta)
        engine_stats = EngineStats(**meta["engine_stats"])
    except TraceFormatError:
        data.close()
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        data.close()
        raise TraceFormatError(
            f"cannot read chunked trace archive {path!r}: {exc}"
        ) from exc

    def produce():
        try:
            start = 0
            for i, nq in enumerate(chunk_quanta):
                lens = data[f"lens_{i}"]
                refs = data[f"refs_{i}"]
                if _chunk_crc(lens, refs) != chunk_crcs[i]:
                    raise TraceFormatError(
                        f"chunk {i} of trace archive {path!r} failed its "
                        "checksum; the file is corrupt — regenerate it"
                    )
                if len(lens) != nq or int(lens.sum()) != len(refs):
                    raise TraceFormatError(
                        f"chunk {i} of trace archive {path!r} is "
                        "inconsistent with its chunk table"
                    )
                quanta = []
                payload = memoryview(refs.tobytes())
                pos = 0
                for j in range(nq):
                    n = int(lens[j])
                    seg = array("q")
                    seg.frombytes(payload[pos * 8:(pos + n) * 8])
                    quanta.append(TraceQuantum(int(cpus[start + j]), seg))
                    pos += n
                yield TraceChunk(start, quanta)
                start += nq
        finally:
            data.close()

    return StreamedTrace(
        ncpus=meta["ncpus"],
        scale=meta["scale"],
        page_bytes=meta["page_bytes"],
        text_pages=frozenset(int(p) for p in text_pages_arr),
        measured_txns=meta["measured_txns"],
        config=config,
        engine_stats=engine_stats,
        warmup_quanta=meta["warmup_quanta"],
        num_quanta=meta["num_quanta"],
        chunks=produce(),
    )
