"""Save and load traces as compressed ``.npz`` archives.

Workload generation is cheap relative to a full figure sweep, but
saving traces lets long experiments (and other tools) replay exactly
the same workload across processes and machines.  The format packs all
quanta into three parallel arrays (cpu ids, offsets, references) plus
a JSON metadata blob; loading reconstructs a fully functional
:class:`~repro.trace.generator.OltpTrace`.

Archives are versioned and checksummed (format 2 adds a CRC-32 over
the packed arrays).  Any unreadable, corrupt, truncated, or
future-version archive raises
:class:`~repro.integrity.errors.TraceFormatError` instead of leaking a
raw numpy/zipfile/KeyError; format-1 archives (no checksum) still
load.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from array import array
from dataclasses import asdict
from typing import Union

import numpy as np

from repro.integrity.errors import TraceFormatError
from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import EngineStats
from repro.oltp.schema import TpcbScale
from repro.trace.generator import OltpTrace, TraceQuantum

#: Format version written into every archive.
FORMAT_VERSION = 2

#: Oldest format this build can still read (format 1 lacks a checksum).
OLDEST_READABLE_VERSION = 1


def _content_crc(cpus, offsets, refs, text_pages) -> int:
    """CRC-32 over the packed data arrays (not the metadata blob)."""
    crc = 0
    for arr in (cpus, offsets, refs, text_pages):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


def save_trace(trace: OltpTrace, path: Union[str, "object"]) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive."""
    cpus = np.fromiter((q.cpu for q in trace.quanta), dtype=np.int32,
                       count=len(trace.quanta))
    lengths = np.fromiter((len(q.refs) for q in trace.quanta), dtype=np.int64,
                          count=len(trace.quanta))
    offsets = np.zeros(len(trace.quanta) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    refs = np.empty(int(offsets[-1]), dtype=np.int64)
    for i, q in enumerate(trace.quanta):
        refs[offsets[i]:offsets[i + 1]] = q.refs
    text_pages = np.array(sorted(trace.text_pages), dtype=np.int64)

    config = asdict(trace.config)
    tpcb = config.pop("tpcb")
    meta = {
        "format": FORMAT_VERSION,
        "crc32": _content_crc(cpus, offsets, refs, text_pages),
        "ncpus": trace.ncpus,
        "scale": trace.scale,
        "page_bytes": trace.page_bytes,
        "warmup_quanta": trace.warmup_quanta,
        "measured_txns": trace.measured_txns,
        "engine_stats": asdict(trace.engine_stats),
        "config": config,
        "tpcb": tpcb,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        cpus=cpus,
        offsets=offsets,
        refs=refs,
        text_pages=text_pages,
    )


def save_trace_atomic(trace: OltpTrace, path: str) -> None:
    """Write ``trace`` to ``path`` with no torn-write window.

    Several campaign processes may race to spill the same trace; each
    writes a private temporary archive, fsyncs it, and atomically
    renames it into place, so readers only ever observe a complete
    durable archive (the last writer wins with identical
    bytes-equivalent content) even across a crash or power cut.
    """
    tmp = f"{path}.tmp.{os.getpid()}.npz"
    try:
        save_trace(trace, tmp)
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load_trace(path: Union[str, "object"]) -> OltpTrace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`TraceFormatError` when the archive is corrupt,
    truncated, missing required members, fails its checksum, or was
    written by a format this build cannot read.  A missing file still
    raises the ordinary ``FileNotFoundError``.
    """
    try:
        return _load_trace(path)
    except TraceFormatError:
        raise
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, KeyError, IndexError,
            TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"cannot read trace archive {path!r}: {exc}"
        ) from exc


def _load_trace(path) -> OltpTrace:
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        version = meta.get("format")
        if (not isinstance(version, int)
                or not OLDEST_READABLE_VERSION <= version <= FORMAT_VERSION):
            raise TraceFormatError(
                f"unsupported trace format {version!r} (this build reads "
                f"versions {OLDEST_READABLE_VERSION}..{FORMAT_VERSION}); "
                "regenerate the trace or upgrade the package"
            )
        cpus = data["cpus"]
        offsets = data["offsets"]
        refs = data["refs"]
        text_pages_arr = data["text_pages"]

    if version >= 2:
        expected = meta.get("crc32")
        actual = _content_crc(cpus, offsets, refs, text_pages_arr)
        if expected != actual:
            raise TraceFormatError(
                f"trace archive {path!r} failed its content checksum "
                f"(stored {expected!r}, computed {actual}); the file is "
                "corrupt — regenerate it"
            )
    if (len(offsets) != len(cpus) + 1
            or (len(offsets) and (int(offsets[0]) != 0
                                  or int(offsets[-1]) != len(refs)))
            or np.any(np.diff(offsets) < 0)):
        raise TraceFormatError(
            f"trace archive {path!r} has inconsistent quantum offsets; "
            "the file is truncated or corrupt"
        )

    text_pages = frozenset(int(p) for p in text_pages_arr)
    quanta = [
        TraceQuantum(int(cpus[i]),
                     array("q", refs[offsets[i]:offsets[i + 1]].tolist()))
        for i in range(len(cpus))
    ]
    config = WorkloadConfig(tpcb=TpcbScale(**meta["tpcb"]), **meta["config"])
    return OltpTrace(
        ncpus=meta["ncpus"],
        scale=meta["scale"],
        page_bytes=meta["page_bytes"],
        text_pages=text_pages,
        quanta=quanta,
        warmup_quanta=meta["warmup_quanta"],
        measured_txns=meta["measured_txns"],
        engine_stats=EngineStats(**meta["engine_stats"]),
        config=config,
    )
