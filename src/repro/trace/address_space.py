"""Address-space layout and virtual-to-physical page mapping.

The tracer places every logical object the engine touches — code,
buffer frames, metadata arrays, private PGAs, the log buffer, kernel
structures — into one flat virtual address space, then scatters
virtual pages across "physical" memory with a deterministic hash.

That scatter is load-bearing: commercial workloads see effectively
random page colouring, so hot lines collide in cache sets
statistically.  This is exactly the conflict-miss population the paper
shows a large *direct-mapped* off-chip cache struggling with and a
small *associative* on-chip cache absorbing (Sections 3 and 8); we get
the effect from the same mechanism rather than by construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.oltp.config import WorkloadConfig
from repro.oltp.locks import NUM_LATCH_SLOTS
from repro.oltp.schema import BLOCK_SIZE
from repro.params import LINE_SHIFT, LINE_SIZE, PAGE_SIZE

#: SGA metadata element strides in bytes.
HASH_BUCKET_BYTES = 16
BUF_HEADER_BYTES = 128
LOCK_SLOT_BYTES = 64
LATCH_BYTES = 64
TXNSLOT_BYTES = 64
NUM_TXNSLOTS = 16

#: Kernel structure strides.
PROC_STRUCT_BYTES = 256
PIPE_BUFFER_BYTES = 512
RUNQUEUE_BYTES = 256
KGLOBAL_BYTES = 1024


def _mix(x: int) -> int:
    """SplitMix64 finalizer: a high-quality deterministic page hash."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class Region:
    """A named, page-aligned range of the virtual address space."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Region({self.name!r}, base={self.base:#x}, size={self.size})"


class MemoryModel:
    """Places engine objects in memory and hashes pages to frames.

    All public ``*_line(s)`` helpers return *physical line numbers*
    ready for the cache simulator.  ``page_bytes`` (scaled with the
    workload) is also the granularity of home-node assignment, and
    ``text_pages`` is the physical-page set used for OS instruction
    replication.
    """

    #: Servers per CPU that share a PGA page colour (see
    #: :meth:`_colour_pga_pages`).  With the paper's 8 servers per
    #: processor this gives an aliasing depth of ~3 per group.
    NUM_ALIAS_GROUPS = 3

    def __init__(self, config: WorkloadConfig, seed: int = 0):
        self.config = config
        page = PAGE_SIZE // config.scale
        # Page must hold a power-of-two number of lines, at least 4.
        page_lines = max(4, page // LINE_SIZE)
        page_lines = 1 << (page_lines.bit_length() - 1)
        self.page_bytes = page_lines * LINE_SIZE
        self._page_lines = page_lines
        self._salt = _mix(seed + 0x5EED)
        self._page_cache: Dict[int, int] = {}

        num_procs = config.num_servers + 2  # servers + LGWR + DBWR
        buckets = max(16, config.buffer_frames // 4)
        self.num_hash_buckets = buckets

        cursor = self.page_bytes  # keep page 0 unused
        self.regions: Dict[str, Region] = {}

        def alloc(name: str, size: int) -> Region:
            nonlocal cursor
            size = max(size, LINE_SIZE)
            # Page-align every region and leave a guard page between
            # regions so unrelated structures never share a page.
            aligned = -(-size // self.page_bytes) * self.page_bytes
            region = Region(name, cursor, size)
            self.regions[name] = region
            cursor += aligned + self.page_bytes
            return region

        alloc("text_hot", config.text_hot_bytes)
        alloc("text_cold", config.text_cold_bytes)
        alloc("ktext_hot", config.ktext_hot_bytes)
        alloc("ktext_cold", config.ktext_cold_bytes)
        alloc("sga_buffer", config.buffer_frames * BLOCK_SIZE)
        alloc("sga_hash", buckets * HASH_BUCKET_BYTES)
        alloc("sga_headers", config.buffer_frames * BUF_HEADER_BYTES)
        alloc("sga_locks", config.lock_slots * LOCK_SLOT_BYTES)
        alloc("sga_latch", NUM_LATCH_SLOTS * LATCH_BYTES)
        alloc("sga_txnslot", NUM_TXNSLOTS * TXNSLOT_BYTES)
        alloc("log", config.log_buffer_bytes)
        pga_bytes = config.pga_hot_bytes + config.pga_cold_bytes
        pga_regions = [alloc(f"pga{i}", pga_bytes) for i in range(num_procs)]
        alloc("kproc", num_procs * PROC_STRUCT_BYTES)
        alloc("kpipe", config.num_servers * PIPE_BUFFER_BYTES)
        alloc("krunq", config.ncpus * RUNQUEUE_BYTES)
        alloc("kglobal", KGLOBAL_BYTES)
        alloc("kcold", max(4096, 64 * 1024 // config.scale))
        self.virtual_size = cursor

        self._colour_pga_pages(pga_regions)
        self.text_pages: FrozenSet[int] = frozenset(self._collect_text_pages())

    def _colour_pga_pages(self, pga_regions) -> None:
        """Give server PGAs correlated physical page colours.

        Every dedicated server runs the same binary with the same PGA
        layout, and the OS's page allocator hands out physically
        correlated pages — so in real OLTP systems the servers' private
        hot pages systematically alias in the cache index.  This is the
        population of conflict misses that a direct-mapped cache of
        *any* size keeps paying for and that modest associativity
        wipes out (paper Sections 3 and 8).

        We model it by mapping the PGAs of servers in the same *alias
        group* to identical set-index bits (identical low physical-page
        bits), with only high bits distinguishing them.  Groups are
        formed per node — ``NUM_ALIAS_GROUPS`` servers per CPU collide
        — so the aliasing depth per cache is scale-independent.
        """
        ncpus = self.config.ncpus
        for pga_id, region in enumerate(pga_regions):
            group = (pga_id // ncpus) % self.NUM_ALIAS_GROUPS
            vpage0 = region.base // self.page_bytes
            vpage1 = (region.end - 1) // self.page_bytes
            for j, vpage in enumerate(range(vpage0, vpage1 + 1)):
                # Low bits (set index): a *random* colour shared by the
                # whole group, so group members alias exactly while the
                # group's pages spread evenly over the index space.
                # High bits: unique per PGA, invisible to the index.
                colour = _mix((group << 20) ^ (j * 0x9E37) ^ self._salt) & 0xFFFFF
                ppage = (1 << 42) | (pga_id << 24) | colour
                self._page_cache[vpage] = ppage * self._page_lines

    # -- virtual to physical ----------------------------------------------------

    def _ppage_base_line(self, vpage: int) -> int:
        """First physical line of the frame backing ``vpage`` (memoized)."""
        cached = self._page_cache.get(vpage)
        if cached is None:
            # 40-bit physical page number: vastly larger than any cache,
            # so hash collisions between distinct pages are negligible.
            ppage = _mix(vpage ^ self._salt) & 0xFFFFFFFFFF
            cached = ppage * self._page_lines
            self._page_cache[vpage] = cached
        return cached

    def line_of(self, byte_addr: int) -> int:
        """Physical line number backing a virtual byte address."""
        vpage, off = divmod(byte_addr, self.page_bytes)
        return self._ppage_base_line(vpage) + (off >> LINE_SHIFT)

    def lines_of(self, byte_addr: int, nbytes: int) -> list:
        """Physical lines covering [byte_addr, byte_addr + nbytes)."""
        if nbytes <= 0:
            return []
        first = byte_addr >> LINE_SHIFT
        last = (byte_addr + nbytes - 1) >> LINE_SHIFT
        return [self.line_of(v << LINE_SHIFT) for v in range(first, last + 1)]

    def _collect_text_pages(self):
        for name in ("text_hot", "text_cold", "ktext_hot", "ktext_cold"):
            region = self.regions[name]
            vpage0 = region.base // self.page_bytes
            vpage1 = (region.end - 1) // self.page_bytes
            for vpage in range(vpage0, vpage1 + 1):
                yield self._ppage_base_line(vpage) // self._page_lines

    @property
    def page_lines(self) -> int:
        return self._page_lines

    def is_text_page(self, ppage: int) -> bool:
        return ppage in self.text_pages

    # -- object placement helpers -------------------------------------------------

    def frame_addr(self, frame_id: int, offset: int = 0) -> int:
        if not 0 <= frame_id < self.config.buffer_frames:
            raise IndexError(f"frame {frame_id} out of range")
        return self.regions["sga_buffer"].base + frame_id * BLOCK_SIZE + offset

    def meta_addr(self, struct: str, index: int) -> int:
        if struct == "buf_hash":
            return self.regions["sga_hash"].base + index * HASH_BUCKET_BYTES
        if struct == "buf_header":
            return self.regions["sga_headers"].base + index * BUF_HEADER_BYTES
        if struct == "lock":
            return self.regions["sga_locks"].base + index * LOCK_SLOT_BYTES
        if struct == "latch":
            return self.regions["sga_latch"].base + index * LATCH_BYTES
        if struct == "txnslot":
            return self.regions["sga_txnslot"].base + (index % NUM_TXNSLOTS) * TXNSLOT_BYTES
        raise KeyError(f"unknown metadata structure {struct!r}")

    def pga_addr(self, pga_id: int, offset: int) -> int:
        region = self.regions[f"pga{pga_id}"]
        if offset >= region.size:
            offset %= region.size
        return region.base + offset

    def log_addr(self, offset: int) -> int:
        return self.regions["log"].base + (offset % self.config.log_buffer_bytes)

    def kproc_addr(self, pid: int) -> int:
        return self.regions["kproc"].base + pid * PROC_STRUCT_BYTES

    def kpipe_addr(self, pipe_id: int, offset: int = 0) -> int:
        return self.regions["kpipe"].base + pipe_id * PIPE_BUFFER_BYTES + offset

    def krunq_addr(self, cpu: int) -> int:
        return self.regions["krunq"].base + cpu * RUNQUEUE_BYTES

    def kglobal_addr(self, slot: int) -> int:
        return self.regions["kglobal"].base + (slot * LINE_SIZE) % KGLOBAL_BYTES
