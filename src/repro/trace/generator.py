"""Trace builder: turns engine activity into a multi-CPU reference trace.

The :class:`TraceBuilder` is the real implementation of the engine's
tracer interface.  It expands each engine hook into physical-line
references (packed integers; see :mod:`repro.cpu.events`), groups them
into *quanta* — one per process dispatch, tagged with the CPU the
process ran on — and records the warmup boundary so the simulator can
reset statistics exactly where measurement begins, mirroring the
paper's warmup-then-measure protocol.

The result, an :class:`OltpTrace`, is machine-independent: the same
trace is replayed against every cache/integration configuration of an
experiment, which both matches trace-driven methodology and guarantees
all configurations see the identical workload.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.cpu.events import (
    FLAG_BITS,
    FLAG_DEPENDENT,
    FLAG_KERNEL,
    FLAG_WRITE,
)
from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import EngineStats, OracleEngine
from repro.oltp.tracing import EngineTracer, ProcessContext
from repro.trace.address_space import MemoryModel
from repro.trace.codepath import CodeModel


@dataclass
class TraceQuantum:
    """One scheduling quantum: consecutive references from one CPU."""

    cpu: int
    refs: array


@dataclass
class OltpTrace:
    """A complete, replayable multi-CPU memory-reference trace."""

    ncpus: int
    scale: int
    page_bytes: int
    text_pages: FrozenSet[int]
    quanta: List[TraceQuantum]
    warmup_quanta: int
    measured_txns: int
    engine_stats: EngineStats
    config: WorkloadConfig

    @property
    def total_refs(self) -> int:
        return sum(len(q.refs) for q in self.quanta)

    @property
    def measured_refs(self) -> int:
        return sum(len(q.refs) for q in self.quanta[self.warmup_quanta:])


class TraceBuilder(EngineTracer):
    """EngineTracer implementation that records packed references."""

    def __init__(
        self,
        model: MemoryModel,
        code: CodeModel,
        rng: random.Random,
        warmup_txns: int,
    ):
        self.model = model
        self.code = code
        self.rng = rng
        self.warmup_txns = warmup_txns
        self.quanta: List[TraceQuantum] = []
        #: Global index of ``quanta[0]``: stays 0 for whole-trace
        #: builds, advances as :meth:`drain_quanta` hands flushed
        #: quanta to a streaming producer.
        self.quanta_base = 0
        self.warmup_quanta: Optional[int] = None
        self._current: Optional[ProcessContext] = None
        self._buf: List[int] = []
        self._kernel_mode = False

    # -- quantum management ---------------------------------------------------

    def _flush(self) -> None:
        if self._current is not None and self._buf:
            self.quanta.append(TraceQuantum(self._current.cpu, array("q", self._buf)))
            self._buf = []

    def finalize(self) -> None:
        """Flush the trailing quantum; call after the engine run ends."""
        self._flush()
        if self.warmup_quanta is None:
            self.warmup_quanta = 0

    def drain_quanta(self) -> List[TraceQuantum]:
        """Detach every *flushed* quantum (the streaming produce path).

        The open buffer of the currently running process is left in
        place — it belongs to a quantum that has not ended yet — so a
        quantum is never split across two drains and the concatenation
        of all drains equals a whole-trace build exactly.
        """
        done = self.quanta
        self.quanta = []
        self.quanta_base += len(done)
        return done

    def on_switch(self, process: ProcessContext) -> None:
        self._flush()
        self._current = process
        # Scheduler work: runqueue manipulation and the incoming
        # process's proc structure (kernel data, on the new CPU).
        buf = self._buf
        w = FLAG_WRITE | FLAG_KERNEL
        buf.append((self.model.line_of(self.model.krunq_addr(process.cpu)) << FLAG_BITS) | w)
        buf.append(
            (self.model.line_of(self.model.kproc_addr(process.pga_id)) << FLAG_BITS)
            | FLAG_KERNEL
        )

    # -- instruction side ----------------------------------------------------------

    def on_code(self, routine: str, units: int = 1) -> None:
        self.code.emit(routine, self._buf, units)

    # -- data side --------------------------------------------------------------------

    def _touch(self, addr: int, nbytes: int, write: bool,
               dependent: bool = False, kernel: bool = False) -> None:
        flags = 0
        if write:
            flags |= FLAG_WRITE
        if kernel:
            flags |= FLAG_KERNEL
        if dependent:
            flags |= FLAG_DEPENDENT
        buf = self._buf
        for line in self.model.lines_of(addr, nbytes):
            buf.append((line << FLAG_BITS) | flags)
            flags &= ~FLAG_DEPENDENT  # only the first load heads the chain

    def on_frame(self, frame_id: int, offset: int, nbytes: int,
                 write: bool, dependent: bool = False) -> None:
        self._touch(self.model.frame_addr(frame_id, offset), nbytes, write, dependent)

    def on_meta(self, struct: str, index: int, write: bool,
                dependent: bool = False) -> None:
        self._touch(self.model.meta_addr(struct, index), 16, write, dependent)

    def on_pga(self, offset: int, nbytes: int, write: bool) -> None:
        process = self._current
        if process is None:
            raise RuntimeError("PGA access before any process was dispatched")
        self._touch(self.model.pga_addr(process.pga_id, offset), nbytes, write)

    def on_log(self, offset: int, nbytes: int, write: bool) -> None:
        self._touch(self.model.log_addr(offset), nbytes, write)

    # -- kernel expansion ------------------------------------------------------------------

    def on_syscall(self, name: str, payload_bytes: int = 0, obj: int = 0) -> None:
        process = self._current
        if process is None:
            raise RuntimeError("syscall before any process was dispatched")
        code = self.code
        model = self.model
        code.emit("syscall_entry", self._buf)
        code.emit(name, self._buf)
        # Every syscall touches the caller's proc structure.
        self._touch(model.kproc_addr(process.pga_id), 64, True, kernel=True)
        if name in ("pipe_read", "pipe_write"):
            write = name == "pipe_write"
            self._touch(model.kpipe_addr(obj), max(64, payload_bytes), write, kernel=True)
        elif name in ("disk_read", "disk_write"):
            # Device queue manipulation plus the completion interrupt.
            self._touch(model.kglobal_addr(1), 64, True, kernel=True)
            code.emit("interrupt", self._buf)
        # Global kernel bookkeeping (time, stats): a genuinely shared
        # hot kernel line, occasionally updated by every CPU.
        if self.rng.random() < 0.2:
            self._touch(model.kglobal_addr(0), 64, True, kernel=True)

    # -- warmup boundary -----------------------------------------------------------------------

    def on_txn_boundary(self, committed: int) -> None:
        if self.warmup_quanta is None and committed >= self.warmup_txns:
            self._flush()
            self.warmup_quanta = self.quanta_base + len(self.quanta)


def build_trace(
    *,
    ncpus: int = 1,
    scale: int = 32,
    txns: int = 1000,
    warmup_txns: Optional[int] = None,
    seed: int = 2000,
    workload=None,
) -> OltpTrace:
    """Run the OLTP engine and capture its reference trace.

    ``txns`` are the *measured* transactions; ``warmup_txns`` default
    to enough transactions for every server process to have run several
    times, so caches and the buffer pool reach steady state before
    measurement starts.  ``workload`` (a
    :class:`~repro.scenario.workload.WorkloadSpec`, default the
    paper's TPC-B) selects the transaction mix the engine generates.
    """
    from repro.obs import current_tracer

    with current_tracer().span("trace.build", ncpus=ncpus, scale=scale,
                               txns=txns, seed=seed):
        config = WorkloadConfig.build(ncpus=ncpus, scale=scale, seed=seed,
                                      workload=workload)
        if warmup_txns is None:
            warmup_txns = max(100, 4 * config.num_servers)
        model = MemoryModel(config, seed=seed)
        rng = random.Random(seed ^ 0xC0DE)
        builder = TraceBuilder(model, CodeModel(model, rng), rng, warmup_txns)
        engine = OracleEngine(config, builder)
        engine.prewarm()
        engine.run(warmup_txns + txns)
        builder.finalize()
        engine.db.check_consistency()
        return OltpTrace(
            ncpus=ncpus,
            scale=scale,
            page_bytes=model.page_bytes,
            text_pages=model.text_pages,
            quanta=builder.quanta,
            warmup_quanta=builder.warmup_quanta,
            measured_txns=txns,
            engine_stats=engine.stats,
            config=config,
        )


def stream_trace(
    *,
    ncpus: int = 1,
    scale: int = 32,
    txns: int = 1000,
    warmup_txns: Optional[int] = None,
    seed: int = 2000,
    chunk_txns: Optional[int] = None,
    workload=None,
):
    """Run the OLTP engine and *stream* its reference trace.

    Identical workload to :func:`build_trace` — same engine, same
    seeds, same flush points — but delivered as a
    :class:`~repro.trace.stream.StreamedTrace` of quantum-aligned
    chunks: the engine advances ``chunk_txns`` transactions at a time
    and every quantum flushed so far is handed downstream, so peak
    memory is one chunk instead of the whole trace.  Engine state
    itself is bounded (the TPC-B history segment is a circular
    window), which makes arbitrarily long runs flat in RSS.

    ``warmup_quanta`` and ``engine_stats`` on the returned stream are
    filled in as the producer advances; the warmup boundary is always
    published before the chunk containing it is yielded.
    """
    from repro.obs import current_tracer
    from repro.trace.stream import DEFAULT_CHUNK_TXNS, StreamedTrace, TraceChunk

    config = WorkloadConfig.build(ncpus=ncpus, scale=scale, seed=seed,
                                  workload=workload)
    if warmup_txns is None:
        warmup_txns = max(100, 4 * config.num_servers)
    model = MemoryModel(config, seed=seed)
    rng = random.Random(seed ^ 0xC0DE)
    builder = TraceBuilder(model, CodeModel(model, rng), rng, warmup_txns)
    engine = OracleEngine(config, builder)
    batch_txns = max(1, int(chunk_txns or DEFAULT_CHUNK_TXNS))
    total_txns = warmup_txns + txns

    def produce():
        tracer = current_tracer()
        with tracer.span("trace.stream", ncpus=ncpus, scale=scale,
                         txns=txns, seed=seed, chunk_txns=batch_txns):
            engine.prewarm()
            remaining = total_txns
            while remaining > 0:
                batch = min(batch_txns, remaining)
                engine.run(batch)
                remaining -= batch
                # Publish the boundary before the chunk containing it
                # leaves the producer (the stream contract).
                streamed.warmup_quanta = builder.warmup_quanta
                start = builder.quanta_base
                quanta = builder.drain_quanta()
                if quanta:
                    yield TraceChunk(start, quanta)
            builder.finalize()
            engine.db.check_consistency()
            streamed.warmup_quanta = builder.warmup_quanta
            streamed.engine_stats = engine.stats
            start = builder.quanta_base
            quanta = builder.drain_quanta()
            if quanta:
                yield TraceChunk(start, quanta)

    streamed = StreamedTrace(
        ncpus=ncpus,
        scale=scale,
        page_bytes=model.page_bytes,
        text_pages=model.text_pages,
        measured_txns=txns,
        config=config,
        chunks=produce(),
    )
    return streamed
