"""Instruction-fetch modelling: engine routines mapped onto code pages.

OLTP executions are dominated by a large, branchy instruction
footprint: every transaction sweeps most of the engine's hot text once
(paper Sections 1 and 3 — the I-footprint overwhelms the L1 and
stresses even multi-megabyte L2s).  We model this by giving every
engine/kernel routine a contiguous slice of the (scaled) hot text
region, sized proportionally to fixed weights; executing a routine
fetches its lines in order.  A small probability of straying into the
cold-text tail reproduces the long footprint tail (error paths, rare
SQL shapes, seldom-used kernel code).

Because the physical placement of each routine is fixed for a run, the
encoded reference list per routine is precomputed once — emission is a
single ``list.extend``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.cpu.events import FLAG_BITS, FLAG_INSTR, FLAG_KERNEL
from repro.params import LINE_SIZE
from repro.trace.address_space import MemoryModel

#: Relative hot-text sizes of the engine's user-mode routines.
USER_ROUTINES: Dict[str, int] = {
    "sql_parse": 12,
    "sql_execute": 10,
    "idx_search": 6,
    "buf_get": 8,
    "buf_replace": 5,
    "row_update": 7,
    "row_insert": 5,
    "redo_gen": 6,
    "latch_get": 2,
    "txn_commit": 6,
    "lgwr_flush": 7,
    "dbwr_scan": 7,
}

#: Relative hot-text sizes of the kernel paths.
KERNEL_ROUTINES: Dict[str, int] = {
    "ctx_switch": 9,
    "pipe_read": 8,
    "pipe_write": 8,
    "disk_read": 7,
    "disk_write": 7,
    "syscall_entry": 4,
    "interrupt": 6,
}

#: Chance per routine execution of straying into cold text.
COLD_VISIT_PROB = 0.015

#: Lines fetched per cold-text excursion.
COLD_VISIT_LINES = 4


class UnknownRoutineError(KeyError):
    """The engine reported a routine the code model has no slice for."""


class CodeModel:
    """Precomputed per-routine instruction reference sequences."""

    def __init__(self, model: MemoryModel, rng: random.Random):
        self.model = model
        self.rng = rng
        self._encoded: Dict[str, List[int]] = {}
        self._layout: Dict[str, tuple] = {}
        self._build("text_hot", USER_ROUTINES, kernel=False)
        self._build("ktext_hot", KERNEL_ROUTINES, kernel=True)
        self._cold_user = model.regions["text_cold"]
        self._cold_kernel = model.regions["ktext_cold"]
        self._kernel_names = frozenset(KERNEL_ROUTINES)

    def _build(self, region_name: str, table: Dict[str, int], kernel: bool) -> None:
        region = self.model.regions[region_name]
        total_lines = region.size // LINE_SIZE
        total_weight = sum(table.values())
        flags = FLAG_INSTR | (FLAG_KERNEL if kernel else 0)
        cursor = 0
        for name, weight in table.items():
            nlines = max(2, (total_lines * weight) // total_weight)
            if cursor + nlines > total_lines:
                nlines = max(1, total_lines - cursor)
            addr0 = region.base + cursor * LINE_SIZE
            refs = [
                (self.model.line_of(addr0 + i * LINE_SIZE) << FLAG_BITS) | flags
                for i in range(nlines)
            ]
            self._encoded[name] = refs
            self._layout[name] = (addr0, nlines, kernel)
            cursor += nlines

    # -- queries -------------------------------------------------------------

    def routine_lines(self, name: str) -> int:
        """Number of I-lines ``name`` fetches per execution."""
        try:
            return self._layout[name][1]
        except KeyError:
            raise UnknownRoutineError(name) from None

    def is_kernel(self, name: str) -> bool:
        return name in self._kernel_names

    @property
    def routines(self) -> tuple:
        return tuple(self._encoded)

    # -- emission ---------------------------------------------------------------

    def emit(self, name: str, out: List[int], units: int = 1) -> None:
        """Append ``units`` executions of ``name`` to the ref buffer.

        Each execution enters at the routine's head and, mimicking
        data-dependent branches, covers a random 50–100 % prefix of its
        body; over many transactions every line stays hot while the
        per-transaction fetch volume matches branchy OLTP code.
        """
        try:
            refs = self._encoded[name]
        except KeyError:
            raise UnknownRoutineError(name) from None
        n = len(refs)
        rand = self.rng.random
        for _ in range(units):
            cover = n - int(rand() * 0.5 * n)
            out.extend(refs[:cover])
        if self.rng.random() < COLD_VISIT_PROB * units:
            kernel = self._layout[name][2]
            region = self._cold_kernel if kernel else self._cold_user
            flags = FLAG_INSTR | (FLAG_KERNEL if kernel else 0)
            span = max(1, region.size // LINE_SIZE - COLD_VISIT_LINES)
            start = self.rng.randrange(span)
            base = region.base + start * LINE_SIZE
            out.extend(
                (self.model.line_of(base + i * LINE_SIZE) << FLAG_BITS) | flags
                for i in range(COLD_VISIT_LINES)
            )
