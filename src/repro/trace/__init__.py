"""Trace layer: address spaces, code paths, and trace generation."""

from repro.trace.address_space import MemoryModel, Region
from repro.trace.census import (
    MissAttribution,
    TraceCensus,
    attribute_misses,
    census,
    rebuild_model,
)
from repro.trace.codepath import CodeModel, UnknownRoutineError
from repro.trace.generator import OltpTrace, TraceBuilder, TraceQuantum, build_trace
from repro.trace.storage import load_trace, save_trace
from repro.trace.synthetic import make_trace, pingpong_trace, sweep_refs

__all__ = [
    "MemoryModel",
    "Region",
    "MissAttribution",
    "TraceCensus",
    "attribute_misses",
    "census",
    "rebuild_model",
    "CodeModel",
    "UnknownRoutineError",
    "OltpTrace",
    "TraceBuilder",
    "TraceQuantum",
    "build_trace",
    "load_trace",
    "save_trace",
    "make_trace",
    "pingpong_trace",
    "sweep_refs",
]
