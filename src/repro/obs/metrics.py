"""Metrics: named counters/gauges/histograms and per-quantum series.

The :class:`MetricsRegistry` is the numeric side of the observability
subsystem.  Instruments are created on first use and keyed by
dot-separated names (``integrity.checks_run``); a registry is cheap
enough to build per run or per campaign and merges across process
boundaries via :meth:`MetricsRegistry.to_dict` /
:meth:`MetricsRegistry.absorb`, mirroring the tracer's worker
stitching.

:class:`QuantumSeries` is the piece the paper's figures cannot give
you: *time-resolved* trajectories sampled once per scheduling quantum
by the replay engines — the miss-kind mix (local / 2-hop remote-clean
/ 3-hop remote-dirty), L2 misses against instructions executed (MPKI),
directory occupancy, and RAC hit rate.  End-of-run aggregates show
*that* a bigger L2 converts 2-hop misses into 3-hop dirty misses;
the series shows *when*.  Samplers take cumulative counter snapshots
and store per-quantum deltas, so the engines pass the counters they
already maintain and pay one ``sample()`` call per measured quantum —
and nothing at all when metrics are disabled (the engines hold
``None`` instead of a sampler).

Like tracing, metrics are observational by contract: sampling reads
simulator counters and never writes simulator state.

Counter families by convention: ``integrity.*`` (checker),
``campaign.*`` (runner — including ``campaign.shm_segments`` /
``campaign.shm_fallbacks`` for the shared-memory trace arena),
``service.*`` (job service), ``cache.*`` (result cache) and
``stream.*`` (streaming trace store: ``stream.builds``,
``stream.spills``, ``stream.archive_streams``); the streaming replay
path additionally emits one ``stream.chunk`` span per consumed chunk
when tracing is enabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.params import INSTRS_PER_ILINE

__all__ = [
    "NULL_METRICS",
    "MetricsRegistry",
    "NullMetrics",
    "QuantumSeries",
    "current_metrics",
    "use_metrics",
]


class HistogramSummary:
    """Streaming summary of an observed distribution (no buckets)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: dict) -> None:
        self.count += data.get("count", 0)
        self.total += data.get("total", 0.0)
        for key, better in (("min", min), ("max", max)):
            other = data.get(key)
            if other is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, other if mine is None else better(mine, other))


class QuantumSeries:
    """Per-quantum deltas of the headline memory-system metrics.

    ``sample()`` receives *cumulative* counters (what the engines
    already maintain between the measurement boundary and the current
    quantum) and stores the delta since the previous sample.  Columns:

    * ``quantum`` — trace quantum index;
    * ``miss_local`` / ``miss_2hop`` / ``miss_3hop`` — L2 misses
      serviced from local memory, a remote home or owner with clean
      data (2 network hops), and a remote dirty third node (3 hops);
    * ``i_refs`` — instruction-line fetches (×
      :data:`~repro.params.INSTRS_PER_ILINE` = instructions, the MPKI
      denominator);
    * ``dir_lines`` — directory-tracked lines (a gauge, not a delta).
      The scalar engines and the staged pipeline's stream mode read
      the live directory; the staged pipeline's *batch* mode reports
      its coherence-tracked (shared) lines only, a lower bound, since
      private lines there bypass the directory until the run
      materializes;
    * ``rac_probes`` / ``rac_hits`` — remote-access-cache activity.
    """

    DELTA_FIELDS = ("miss_local", "miss_2hop", "miss_3hop", "i_refs",
                    "rac_probes", "rac_hits")

    def __init__(self, meta: Optional[dict] = None):
        self.meta = dict(meta or {})
        self.quantum: List[int] = []
        self.miss_local: List[int] = []
        self.miss_2hop: List[int] = []
        self.miss_3hop: List[int] = []
        self.i_refs: List[int] = []
        self.dir_lines: List[int] = []
        self.rac_probes: List[int] = []
        self.rac_hits: List[int] = []
        self._prev = (0, 0, 0, 0, 0, 0)

    def sample(self, quantum: int, misses, i_refs: int, dir_lines: int,
               rac_probes: int = 0, rac_hits: int = 0) -> None:
        """Record one quantum from cumulative counters.

        ``misses`` is the live :class:`~repro.stats.breakdown.MissBreakdown`;
        instruction misses fold any remote service into I-Rem (code is
        read-only), so the 2-hop column carries ``i_remote`` whole.
        """
        local = misses.i_local + misses.d_local
        hop2 = misses.i_remote + misses.d_remote_clean
        hop3 = misses.d_remote_dirty
        p_local, p_hop2, p_hop3, p_iref, p_probe, p_hit = self._prev
        self.quantum.append(quantum)
        self.miss_local.append(local - p_local)
        self.miss_2hop.append(hop2 - p_hop2)
        self.miss_3hop.append(hop3 - p_hop3)
        self.i_refs.append(i_refs - p_iref)
        self.dir_lines.append(dir_lines)
        self.rac_probes.append(rac_probes - p_probe)
        self.rac_hits.append(rac_hits - p_hit)
        self._prev = (local, hop2, hop3, i_refs, rac_probes, rac_hits)

    # -- derived views ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.quantum)

    @property
    def total_misses(self) -> int:
        return (sum(self.miss_local) + sum(self.miss_2hop)
                + sum(self.miss_3hop))

    @property
    def dirty_share(self) -> float:
        """3-hop share of all sampled misses (the paper's fig-9 axis)."""
        total = self.total_misses
        return sum(self.miss_3hop) / total if total else 0.0

    def mpki(self) -> List[float]:
        """Per-quantum L2 misses per thousand instructions."""
        out = []
        for local, hop2, hop3, irefs in zip(
                self.miss_local, self.miss_2hop, self.miss_3hop,
                self.i_refs):
            instr = irefs * INSTRS_PER_ILINE
            out.append(1000.0 * (local + hop2 + hop3) / instr if instr
                       else 0.0)
        return out

    def rac_hit_rate(self) -> List[float]:
        """Per-quantum RAC hit rate (0.0 where the RAC saw no probe)."""
        return [hits / probes if probes else 0.0
                for probes, hits in zip(self.rac_probes, self.rac_hits)]

    def to_dict(self) -> dict:
        return {
            "meta": self.meta,
            "quantum": self.quantum,
            "miss_local": self.miss_local,
            "miss_2hop": self.miss_2hop,
            "miss_3hop": self.miss_3hop,
            "i_refs": self.i_refs,
            "dir_lines": self.dir_lines,
            "rac_probes": self.rac_probes,
            "rac_hits": self.rac_hits,
            "l2_mpki": [round(v, 4) for v in self.mpki()],
            "rac_hit_rate": [round(v, 4) for v in self.rac_hit_rate()],
            "dirty_share": round(self.dirty_share, 6),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantumSeries":
        series = cls(data.get("meta"))
        series.quantum = list(data.get("quantum", ()))
        for field in cls.DELTA_FIELDS + ("dir_lines",):
            setattr(series, field, list(data.get(field, ())))
        return series


class MetricsRegistry:
    """Named instruments plus the per-run quantum series."""

    enabled = True

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}
        self.series: List[QuantumSeries] = []

    # -- instruments --------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def new_series(self, **meta) -> QuantumSeries:
        """Open a per-quantum series for one simulation run."""
        series = QuantumSeries(meta)
        self.series.append(series)
        return series

    # -- serialization and merging -----------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.histograms.items()
            },
            "series": [series.to_dict() for series in self.series],
        }

    def absorb(self, payload: dict) -> None:
        """Merge a registry serialized in another process (a worker)."""
        for name, value in payload.get("counters", {}).items():
            self.count(name, value)
        self.gauges.update(payload.get("gauges", {}))
        for name, data in payload.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramSummary()
            hist.merge_dict(data)
        self.series.extend(
            QuantumSeries.from_dict(d) for d in payload.get("series", ())
        )


class NullMetrics:
    """Metrics disabled: instruments discard, samplers are never built.

    Engines ask ``current_metrics().enabled`` once per run and keep
    ``None`` in place of a sampler, so the per-quantum paths pay one
    ``is not None`` test when metrics are off.
    """

    enabled = False

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "series": []}

    def absorb(self, payload: dict) -> None:
        pass


#: The process-wide disabled registry (the default).
NULL_METRICS = NullMetrics()

_current: "MetricsRegistry | NullMetrics" = NULL_METRICS


def current_metrics() -> "MetricsRegistry | NullMetrics":
    """The active registry; :data:`NULL_METRICS` unless one is installed."""
    return _current


@contextmanager
def use_metrics(
    registry: "MetricsRegistry | NullMetrics",
) -> Iterator["MetricsRegistry | NullMetrics"]:
    """Install ``registry`` as the process-wide metrics sink for the block."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous
