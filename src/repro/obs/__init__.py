"""Simulation observability: span tracing, metrics, and exporters.

The paper's figures attribute every cycle of *simulated* time; this
package does the same for the *simulator's* time.  Three layers:

* :mod:`repro.obs.tracer` — nestable wall-clock spans with a shared
  no-op :data:`NULL_TRACER` when disabled, wired into
  :meth:`repro.core.system.System.run`, all four replay engines, the
  campaign executor (stitched across worker processes) and the OLTP
  trace generator;
* :mod:`repro.obs.metrics` — named counters/gauges/histograms plus
  per-quantum :class:`QuantumSeries` (miss-kind mix, L2 MPKI,
  directory occupancy, RAC hit rate) sampled by the replay loops;
* :mod:`repro.obs.export` — Chrome trace-event JSON for
  Perfetto/``chrome://tracing``, JSON/CSV metrics dumps, and the
  self-time table behind ``repro-oltp profile``.

Both the tracer and the registry are installed process-wide with
context managers (:func:`use_tracer` / :func:`use_metrics`); the
default is the null implementation, and every instrumentation site is
observational only — enabling observability never changes simulation
results (the differential suite enforces it).
"""

from repro.obs.export import (
    chrome_trace_events,
    render_self_time,
    self_time_table,
    total_root_seconds,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    QuantumSeries,
    current_metrics,
    use_metrics,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    assign_parents,
    current_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "QuantumSeries",
    "SpanRecord",
    "Tracer",
    "assign_parents",
    "chrome_trace_events",
    "current_metrics",
    "current_tracer",
    "render_self_time",
    "self_time_table",
    "total_root_seconds",
    "use_metrics",
    "use_tracer",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]
