"""Span tracing: lightweight nested wall-clock intervals.

A :class:`Tracer` records *spans* — named ``perf_counter`` intervals
opened with a ``with`` block — at subsystem granularity: one per
simulation, one per replay-engine phase, one per campaign job, one per
integrity-checker walk.  Spans are cheap (one object and two clock
reads each) but they are **not** free, so the hot replay loops never
open one per reference or per quantum; engines accumulate per-phase
segment timings and publish them as synthetic spans via
:meth:`Tracer.add_span` once per run instead.

When tracing is off — the default — the process-wide tracer is the
shared :data:`NULL_TRACER`, whose ``span()`` hands back one reusable
no-op context manager: the disabled cost of an instrumentation site is
an attribute lookup and an empty ``with`` block.  The zero-overhead
contract (and the measured number backing it) lives in
``benchmarks/test_bench_obs.py`` / ``BENCH_obs.json``.

Spans travel across process boundaries as plain dicts
(:meth:`Tracer.to_dicts` / :meth:`Tracer.absorb`): campaign workers
trace locally and ship their records back with their own ``pid``, so a
stitched campaign trace shows one Perfetto process track per worker.
``time.perf_counter`` is system-wide monotonic on Linux, macOS and
Windows, so worker timestamps land on the same axis as the parent's.

Tracing is observational by contract: no instrumentation site may read
a value into the simulation or mutate simulator state, and the
differential suite re-checks engine value-identity with tracing on.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "assign_parents",
    "current_tracer",
    "use_tracer",
]


class SpanRecord:
    """One finished span: name, interval, origin, and string-keyed tags."""

    __slots__ = ("name", "ts", "dur", "pid", "tid", "args")

    def __init__(self, name: str, ts: float, dur: float, pid: int,
                 tid: str, args: Optional[dict] = None):
        self.name = name
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.args = args or {}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            data["name"], data["ts"], data["dur"],
            data.get("pid", 0), data.get("tid", "main"),
            data.get("args") or {},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, ts={self.ts:.6f}, "
                f"dur={self.dur:.6f}, args={self.args})")


class _Span:
    """Context manager recording one interval into its tracer."""

    __slots__ = ("_tracer", "_name", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        t0 = self._t0
        tracer = self._tracer
        tracer.spans.append(SpanRecord(
            self._name, t0, perf_counter() - t0,
            tracer.pid, tracer.tid, self._args,
        ))


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_SHARED_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one process (or one campaign worker)."""

    enabled = True

    def __init__(self, pid: Optional[int] = None, tid: str = "main"):
        self.spans: List[SpanRecord] = []
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid

    def span(self, name: str, **args) -> _Span:
        """Open a named span; tags become Chrome-trace ``args``."""
        return _Span(self, name, args or None)

    def add_span(self, name: str, ts: float, dur: float, **args) -> None:
        """Record a synthetic span from an externally measured interval.

        The replay engines use this to publish per-phase time they
        accumulated across thousands of quanta as one aggregate span
        per phase, positioned inside the enclosing engine span.
        """
        self.spans.append(SpanRecord(
            name, ts, dur, self.pid, self.tid, args or None,
        ))

    # -- cross-process stitching -------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Serialize every span (workers ship this to the parent)."""
        return [span.to_dict() for span in self.spans]

    def absorb(self, records: List[dict]) -> None:
        """Merge spans serialized by another tracer (a campaign worker).

        Records keep their original ``pid``/``tid``, so each worker
        renders as its own process track; ``perf_counter`` is
        system-wide monotonic on every supported platform, so the
        timestamps share the parent's axis.
        """
        self.spans.extend(SpanRecord.from_dict(r) for r in records)


class NullTracer:
    """Tracing disabled: every call is a no-op.

    ``span()`` returns one shared empty context manager, so a disabled
    instrumentation site costs an attribute lookup, a call, and an
    empty ``with`` block — nothing allocates and nothing is recorded.
    """

    enabled = False
    spans: List[SpanRecord] = []  # always empty; shared sentinel
    pid = 0
    tid = "null"

    def span(self, name: str, **args) -> _NullSpan:
        return _SHARED_NULL_SPAN

    def add_span(self, name: str, ts: float, dur: float, **args) -> None:
        pass

    def to_dicts(self) -> List[dict]:
        return []

    def absorb(self, records: List[dict]) -> None:
        pass


#: The process-wide disabled tracer (the default).
NULL_TRACER = NullTracer()

_current: "Tracer | NullTracer" = NULL_TRACER


def current_tracer() -> "Tracer | NullTracer":
    """The active tracer; :data:`NULL_TRACER` unless one is installed."""
    return _current


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Install ``tracer`` as the process-wide tracer for the block."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous


# ---------------------------------------------------------------------------
# Nesting reconstruction (shared by the exporters and the profile table)
# ---------------------------------------------------------------------------

def assign_parents(spans: List[SpanRecord]) -> Dict[int, Optional[int]]:
    """Map each span index to its parent's index (None for roots).

    Nesting is reconstructed from the intervals themselves: within one
    ``(pid, tid)`` track, a span is the child of the innermost span
    whose interval contains it.  Records may arrive in any order
    (spans are appended on *exit*, so children precede parents).
    """
    order = sorted(
        range(len(spans)),
        key=lambda i: (spans[i].pid, spans[i].tid, spans[i].ts,
                       -spans[i].dur),
    )
    parents: Dict[int, Optional[int]] = {}
    stack: List[int] = []
    track = None
    eps = 1e-9  # float headroom for back-to-back synthetic spans
    for i in order:
        span = spans[i]
        if (span.pid, span.tid) != track:
            track = (span.pid, span.tid)
            stack = []
        while stack:
            top = spans[stack[-1]]
            if span.ts + span.dur <= top.ts + top.dur + eps:
                break
            stack.pop()
        parents[i] = stack[-1] if stack else None
        stack.append(i)
    return parents
