"""Exporters: Chrome trace-event JSON, metrics dumps, self-time tables.

Three consumers, three formats:

* :func:`write_chrome_trace` — the Chrome trace-event format
  (``{"traceEvents": [...]}``, complete ``"X"`` events with
  microsecond ``ts``/``dur``), loadable in Perfetto or
  ``chrome://tracing``.  Each campaign worker appears as its own
  process track (its real ``pid``), named via ``process_name``
  metadata events.
* :func:`write_metrics_json` / :func:`write_metrics_csv` — the
  registry's counters/gauges/histograms and the per-quantum series,
  flat for scripting (CSV holds one row per sampled quantum).
* :func:`self_time_table` / :func:`render_self_time` — per-span-name
  aggregation of *self* time (duration minus child durations), the
  table ``repro-oltp profile`` prints.  Summed self time equals summed
  root-span duration by construction, which is what the profile verb
  checks against measured wall time.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional

from repro.obs.tracer import SpanRecord, assign_parents

__all__ = [
    "chrome_trace_events",
    "render_self_time",
    "self_time_table",
    "total_root_seconds",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]


def chrome_trace_events(spans: List[SpanRecord]) -> List[dict]:
    """Spans as Chrome trace-event dicts (µs, relative to the first span)."""
    if not spans:
        return []
    base = min(span.ts for span in spans)
    events: List[dict] = []
    seen_pids: Dict[int, str] = {}
    for span in spans:
        if span.pid not in seen_pids:
            seen_pids[span.pid] = span.tid
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": span.pid,
                "tid": 0,
                "args": {"name": f"repro pid {span.pid}"},
            })
        event = {
            "name": span.name,
            "ph": "X",
            "ts": round((span.ts - base) * 1e6, 3),
            "dur": round(span.dur * 1e6, 3),
            "pid": span.pid,
            "tid": span.tid,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


def write_chrome_trace(spans: List[SpanRecord], path: str) -> None:
    """Write ``spans`` as a Chrome trace-event JSON file."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


# ---------------------------------------------------------------------------
# Metrics dumps
# ---------------------------------------------------------------------------

def write_metrics_json(registry, path: str) -> None:
    """Dump the whole registry (instruments + series) as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.to_dict(), fh, indent=2, sort_keys=True)


_CSV_COLUMNS = (
    "series", "label", "engine", "quantum", "miss_local", "miss_2hop",
    "miss_3hop", "i_refs", "dir_lines", "rac_probes", "rac_hits",
    "l2_mpki", "rac_hit_rate",
)


def write_metrics_csv(registry, path: str) -> None:
    """Flatten every per-quantum series to one CSV row per quantum."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_COLUMNS)
        for index, series in enumerate(registry.series):
            label = series.meta.get("label", "")
            engine = series.meta.get("engine", "")
            mpki = series.mpki()
            hit_rate = series.rac_hit_rate()
            for row in range(len(series)):
                writer.writerow((
                    index, label, engine, series.quantum[row],
                    series.miss_local[row], series.miss_2hop[row],
                    series.miss_3hop[row], series.i_refs[row],
                    series.dir_lines[row], series.rac_probes[row],
                    series.rac_hits[row],
                    round(mpki[row], 4), round(hit_rate[row], 4),
                ))


# ---------------------------------------------------------------------------
# Self-time profiling
# ---------------------------------------------------------------------------

def self_time_table(spans: List[SpanRecord]) -> List[dict]:
    """Aggregate spans by name into calls / total / self seconds.

    *Self* time is a span's duration minus the durations of its direct
    children (nesting reconstructed from the intervals per
    ``(pid, tid)`` track), so the table's self column sums to the
    total root-span time: nothing is double-counted.
    Rows come back sorted by descending self time.
    """
    parents = assign_parents(spans)
    child_dur = [0.0] * len(spans)
    for i, parent in parents.items():
        if parent is not None:
            child_dur[parent] += spans[i].dur
    rows: Dict[str, dict] = {}
    for i, span in enumerate(spans):
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = {
                "name": span.name, "calls": 0, "total": 0.0, "self": 0.0,
            }
        row["calls"] += 1
        row["total"] += span.dur
        row["self"] += span.dur - child_dur[i]
    return sorted(rows.values(), key=lambda r: -r["self"])


def total_root_seconds(spans: List[SpanRecord]) -> float:
    """Summed duration of all root spans (== summed self time)."""
    parents = assign_parents(spans)
    return sum(spans[i].dur for i, parent in parents.items()
               if parent is None)


def render_self_time(spans: List[SpanRecord],
                     wall_seconds: Optional[float] = None) -> str:
    """The profile verb's self-time table, as printable text."""
    rows = self_time_table(spans)
    width = max([len(r["name"]) for r in rows] + [24])
    lines = [
        "span self-time profile",
        f"  {'span':{width}s} {'calls':>6s} {'total':>9s} {'self':>9s} "
        f"{'self%':>6s}",
    ]
    covered = sum(r["self"] for r in rows)
    denom = covered or 1.0
    for r in rows:
        lines.append(
            f"  {r['name']:{width}s} {r['calls']:6d} {r['total']:8.3f}s "
            f"{r['self']:8.3f}s {100 * r['self'] / denom:5.1f}%"
        )
    if wall_seconds is not None:
        lines.append(
            f"  span total {covered:.3f}s covers "
            f"{100 * covered / wall_seconds if wall_seconds else 0:.1f}% "
            f"of {wall_seconds:.3f}s wall"
        )
    return "\n".join(lines)
