"""Technology parameters and the paper's latency tables.

This module encodes the fixed inputs of the study:

* the Base system parameters from Figure 2 (1 GHz clock, 64 B lines,
  64 KB 2-way L1 caches, 8 MB direct-mapped off-chip L2, 8 processors),
* the memory latencies for every integration level from Figure 3, and
* the remote-access-cache (RAC) latencies from Section 6.

All latencies are in CPU cycles; at the paper's 1 GHz clock one cycle
equals one nanosecond, so the figures can be read either way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

KB = 1024
MB = 1024 * KB

#: Processor clock (Hz).  1 GHz makes cycles == nanoseconds (Figure 3).
CLOCK_HZ = 1_000_000_000

#: Cache line size in bytes (Figure 2).
LINE_SIZE = 64

#: log2(LINE_SIZE), used to convert addresses to line numbers.
LINE_SHIFT = 6

#: Page size used for home-node assignment and code replication (bytes).
PAGE_SIZE = 8 * KB

#: log2(PAGE_SIZE).
PAGE_SHIFT = 13

#: Number of processors in the multiprocessor configuration (Figure 2).
MP_NODES = 8

#: L1 parameters from Figure 2.
L1_SIZE = 64 * KB
L1_ASSOC = 2

#: Baseline off-chip L2 from Figure 2.
BASE_L2_SIZE = 8 * MB
BASE_L2_ASSOC = 1

#: Server processes per processor (Section 2.1).
SERVERS_PER_CPU = 8

#: Approximate Alpha instructions represented by one instruction-line fetch.
#: OLTP code is branchy, so a 64 B line (16 Alpha instructions) yields
#: roughly half of its instructions per visit.
INSTRS_PER_ILINE = 8


class IntegrationLevel(enum.Enum):
    """Successive levels of chip-level integration studied by the paper.

    Each level pulls one more system component onto the processor die:
    the second-level cache data array, then the memory controller, then
    the coherence controller and network router.
    """

    CONSERVATIVE_BASE = "conservative-base"
    BASE = "base"
    L2 = "l2"
    L2_MC = "l2+mc"
    FULL = "l2+mc+cc/nr"

    @property
    def l2_on_chip(self) -> bool:
        return self in (IntegrationLevel.L2, IntegrationLevel.L2_MC, IntegrationLevel.FULL)

    @property
    def mc_on_chip(self) -> bool:
        return self in (IntegrationLevel.L2_MC, IntegrationLevel.FULL)

    @property
    def cc_on_chip(self) -> bool:
        return self is IntegrationLevel.FULL


class L2Technology(enum.Enum):
    """Storage technology of the L2 data array.

    Off-chip caches are external SRAM.  On-chip caches can use SRAM
    (fast, ~2 MB in 0.18 um) or embedded DRAM (slower, ~8 MB).
    """

    OFF_CHIP_SRAM = "off-chip-sram"
    ON_CHIP_SRAM = "on-chip-sram"
    ON_CHIP_DRAM = "on-chip-dram"


@dataclass(frozen=True)
class LatencyTable:
    """Miss-service latencies in cycles for one machine configuration.

    Mirrors one row of Figure 3.  ``l2_hit`` is the load-to-use latency
    of a hit in the second-level cache; ``local`` is a miss served by
    the node's own memory; ``remote_clean`` is a two-hop miss served by
    a remote home node; ``remote_dirty`` is a three-hop miss served by a
    dirty copy in another processor's cache.

    ``remote_upgrade`` is the data-less ownership round-trip to a
    remote home directory.  It tracks ``remote_clean`` except in the
    L2+MC configuration: the Section-4 penalty on 2-hop accesses exists
    because the separated coherence controller must cross the system
    bus to fetch data *from memory*, which an upgrade never does.
    """

    l2_hit: int
    local: int
    remote_clean: int
    remote_dirty: int
    remote_upgrade: int = -1

    def __post_init__(self):
        if self.remote_upgrade < 0:
            object.__setattr__(self, "remote_upgrade", self.remote_clean)

    def for_miss(self, kind: "MissKind") -> int:
        """Latency in cycles to service an L2 miss of the given kind."""
        if kind is MissKind.LOCAL:
            return self.local
        if kind is MissKind.REMOTE_CLEAN:
            return self.remote_clean
        if kind is MissKind.REMOTE_DIRTY:
            return self.remote_dirty
        raise ValueError(f"not an L2 miss kind: {kind}")


class MissKind(enum.Enum):
    """Where an L2 miss was serviced from (the paper's miss taxonomy)."""

    LOCAL = "local"
    REMOTE_CLEAN = "remote-clean"  # 2-hop: home memory of another node
    REMOTE_DIRTY = "remote-dirty"  # 3-hop: dirty copy in a remote cache


#: Figure 3, verbatim.  Keys are (integration level, direct_mapped flag,
#: L2 technology); only the combinations the paper defines are present.
_FIGURE3 = {
    # Conservative Base: everything off-chip, unoptimized memory system.
    (IntegrationLevel.CONSERVATIVE_BASE, None): LatencyTable(30, 150, 225, 325),
    # Base, direct-mapped off-chip L2 (wave-pipelined SRAM).
    (IntegrationLevel.BASE, True): LatencyTable(25, 100, 175, 275),
    # Base, set-associative off-chip L2 (external set selection costs 5).
    (IntegrationLevel.BASE, False): LatencyTable(30, 100, 175, 275),
    # Integrated L2, SRAM array.
    (IntegrationLevel.L2, L2Technology.ON_CHIP_SRAM): LatencyTable(15, 100, 175, 275),
    # Integrated L2, embedded-DRAM array (larger but slower).
    (IntegrationLevel.L2, L2Technology.ON_CHIP_DRAM): LatencyTable(25, 100, 175, 275),
    # L2 + memory controller integrated; the CC is now separated from the
    # MC, so remote (2-hop) memory fetches get *more* expensive
    # (Section 4) — data-less upgrades keep the Base round-trip.
    (IntegrationLevel.L2_MC, None): LatencyTable(15, 75, 225, 275, remote_upgrade=175),
    # Full integration (Alpha 21364 style).
    (IntegrationLevel.FULL, None): LatencyTable(15, 75, 150, 200),
}

#: Extra cycles over an L2 hit to swap a line back from the on-chip
#: L2 victim buffer (tag check plus array swap; extension, not paper).
VICTIM_HIT_EXTRA = 4

#: Cycles for a software TLB fill (Alpha refills its TLB in PALcode;
#: the fill runs real instructions, so it is charged as kernel busy
#: time).  Extension, not modelled by the paper's figures.
TLB_WALK_CYCLES = 40

#: RAC hit latency (same as local memory, Section 6).
RAC_HIT_LATENCY = 75

#: Fetching dirty data out of a *remote node's RAC* (Section 6).
RAC_REMOTE_DIRTY_LATENCY = 250


def latencies(
    level: IntegrationLevel,
    *,
    l2_assoc: int = 1,
    l2_technology: L2Technology = L2Technology.OFF_CHIP_SRAM,
) -> LatencyTable:
    """Look up the Figure-3 latency row for a configuration.

    ``l2_assoc`` only matters for off-chip caches (associative external
    SRAM pays 5 extra cycles for set selection).  ``l2_technology``
    only matters for the on-chip-L2 level, where SRAM and embedded DRAM
    differ in hit latency.
    """
    if level is IntegrationLevel.CONSERVATIVE_BASE:
        return _FIGURE3[(level, None)]
    if level is IntegrationLevel.BASE:
        return _FIGURE3[(level, l2_assoc == 1)]
    if level is IntegrationLevel.L2:
        if l2_technology is L2Technology.OFF_CHIP_SRAM:
            l2_technology = L2Technology.ON_CHIP_SRAM
        return _FIGURE3[(level, l2_technology)]
    base = _FIGURE3[(level, None)]
    if l2_technology is L2Technology.ON_CHIP_DRAM:
        # DRAM arrays keep their slower hit time at deeper integration
        # levels too; the rest of the row is unchanged.
        return LatencyTable(
            25, base.local, base.remote_clean, base.remote_dirty,
            remote_upgrade=base.remote_upgrade,
        )
    return base


def figure3_rows():
    """All (label, LatencyTable) rows of Figure 3, in paper order."""
    return [
        ("Conservative Base", _FIGURE3[(IntegrationLevel.CONSERVATIVE_BASE, None)]),
        ("Base, 1-way L2", _FIGURE3[(IntegrationLevel.BASE, True)]),
        ("Base, n-way L2", _FIGURE3[(IntegrationLevel.BASE, False)]),
        ("L2 integrated, SRAM L2", _FIGURE3[(IntegrationLevel.L2, L2Technology.ON_CHIP_SRAM)]),
        ("L2 integrated, DRAM L2", _FIGURE3[(IntegrationLevel.L2, L2Technology.ON_CHIP_DRAM)]),
        ("L2, MC integrated", _FIGURE3[(IntegrationLevel.L2_MC, None)]),
        ("L2, MC, CC/NR integrated", _FIGURE3[(IntegrationLevel.FULL, None)]),
    ]
