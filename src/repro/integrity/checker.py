"""Runtime invariant checking for the simulator's cache/directory state.

The :class:`Checker` walks the complete memory-system state of a
running :class:`~repro.core.system.System` and verifies every
structural invariant the replay loops rely on:

* **set discipline** — per-set occupancy never exceeds associativity,
  no line appears twice in a set, and every line sits in the set its
  index maps to (a corrupted LRU move lands a line in the wrong set);
* **dirty discipline** — a cache's dirty-set only ever names resident
  lines;
* **inclusion** — every L1-resident line is also L2-resident, and the
  victim buffer never overlaps the L2;
* **directory/cache agreement** — every cached line is tracked for
  that node by the directory, every directory entry is backed by a
  real copy, owners hold what they own exclusively, and (multi-node)
  a dirty line implies ownership;
* **RAC exclusion** — a remote access cache only ever holds lines
  whose home is a *remote* node.

Conservation laws over the measured statistics (references, misses,
cycle components) live in :meth:`repro.core.results.RunResult.verify`,
which the system calls at the same checkpoints.

Cost tiers: ``off`` does nothing and costs nothing (the fast replay
loop takes no per-reference branch for it); ``end-of-run`` walks the
state once after the replay; ``per-quantum`` walks it at every
scheduling-quantum boundary, catching corruption within one quantum of
its introduction.  The walk is written set-arithmetic-first (bulk
difference/subset operations, falling back to slow per-line loops only
to localize an already-detected violation) so ``end-of-run`` stays
well under 5 % of a figure run's wall clock.
"""

from __future__ import annotations

import enum
from typing import Set, Union

from repro.integrity.errors import ConfigError, InvariantViolation
from repro.obs import current_metrics, current_tracer


class CheckLevel(enum.Enum):
    """How often (and whether) invariants are verified during a run."""

    OFF = "off"
    END_OF_RUN = "end-of-run"
    PER_QUANTUM = "per-quantum"

    @classmethod
    def coerce(cls, value: Union["CheckLevel", str]) -> "CheckLevel":
        """Accept a level, its string value, or an underscored alias."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower().replace("_", "-"))
        except ValueError:
            options = ", ".join(repr(level.value) for level in cls)
            raise ConfigError(
                f"unknown check level {value!r} (choose one of {options})"
            ) from None


class Checker:
    """Verifies simulator state invariants at a configurable cadence.

    Raises :class:`InvariantViolation` (with node/cache/set/line
    forensics) on the first violated invariant.  ``checks_run`` counts
    completed full-state walks so tests can assert the checker
    actually executed.
    """

    def __init__(self, level: Union[CheckLevel, str] = CheckLevel.OFF):
        self.level = CheckLevel.coerce(level)
        self.checks_run = 0

    @property
    def enabled(self) -> bool:
        return self.level is not CheckLevel.OFF

    @property
    def per_quantum(self) -> bool:
        return self.level is CheckLevel.PER_QUANTUM

    # -- entry point -------------------------------------------------------

    def check_system(self, system, protocol) -> None:
        """Walk all cache, victim-buffer, RAC and directory state.

        Each walk opens one ``integrity.check`` span tagged with the
        checking tier and bumps ``integrity.checks_run`` on success /
        ``integrity.violations`` on the first violated invariant
        (re-raised unchanged), so campaign metrics show how much
        verification ran and whether it ever fired.
        """
        metrics = current_metrics()
        with current_tracer().span("integrity.check", tier=self.level.value):
            nodes = system.nodes
            racs = system.racs
            try:
                for node_id, node in enumerate(nodes):
                    for cache in (*node.l1is, *node.l1ds, node.l2):
                        self._check_cache_structure(node_id, cache)
                    self._check_inclusion(node_id, node)
                    if node.victim is not None:
                        self._check_victim(node_id, node)
                    if racs is not None:
                        self._check_cache_structure(
                            node_id, racs[node_id].cache)
                        self._check_rac_exclusion(
                            node_id, racs[node_id], protocol.homemap)
                self._check_directory_agreement(system, protocol)
            except InvariantViolation:
                metrics.count("integrity.violations")
                raise
        self.checks_run += 1
        metrics.count("integrity.checks_run")

    # -- per-cache structural invariants -----------------------------------

    def _check_cache_structure(self, node_id: int, cache) -> None:
        assoc = cache.assoc
        num_sets = cache.num_sets
        for idx, (ways, dirty) in enumerate(cache.sets()):
            n = len(ways)
            if not n and not dirty:
                continue
            if n > assoc:
                raise InvariantViolation(
                    "set-occupancy",
                    f"{n} lines in a {assoc}-way set",
                    node=node_id, cache=cache.name, set_index=idx,
                )
            ways_set = set(ways)
            if len(ways_set) != n:
                dup = next(line for line in ways if ways.count(line) > 1)
                raise InvariantViolation(
                    "duplicate-line",
                    "the same line is resident twice in one set",
                    node=node_id, cache=cache.name, set_index=idx, line=dup,
                )
            for line in ways:
                if line % num_sets != idx:
                    raise InvariantViolation(
                        "set-index",
                        f"line maps to set {line % num_sets} but is resident "
                        f"in set {idx} (corrupted placement/LRU move)",
                        node=node_id, cache=cache.name, set_index=idx, line=line,
                    )
            if not dirty <= ways_set:
                orphan = next(iter(dirty - ways_set))
                raise InvariantViolation(
                    "dirty-not-resident",
                    "dirty bit set for a line that is not resident",
                    node=node_id, cache=cache.name, set_index=idx, line=orphan,
                )

    def _check_inclusion(self, node_id: int, node) -> None:
        l2_resident = set(node.l2.resident_lines())
        for l1 in (*node.l1is, *node.l1ds):
            missing = set(l1.resident_lines()) - l2_resident
            if missing:
                line = min(missing)
                raise InvariantViolation(
                    "l1-l2-inclusion",
                    f"line resident in {l1.name} but absent from the "
                    "inclusive L2",
                    node=node_id, cache=l1.name,
                    set_index=line % l1.num_sets, line=line,
                )

    def _check_victim(self, node_id: int, node) -> None:
        victim = node.victim
        lines = list(victim.lines())
        if len(lines) > victim.entries:
            raise InvariantViolation(
                "victim-occupancy",
                f"{len(lines)} lines in a {victim.entries}-entry buffer",
                node=node_id, cache="victim",
            )
        line_set = set(lines)
        if len(line_set) != len(lines):
            raise InvariantViolation(
                "duplicate-line", "duplicate line in the victim buffer",
                node=node_id, cache="victim",
            )
        overlap = line_set & set(node.l2.resident_lines())
        if overlap:
            raise InvariantViolation(
                "victim-l2-exclusion",
                "line resident in both the L2 and its victim buffer",
                node=node_id, cache="victim", line=min(overlap),
            )
        orphans = set(victim.dirty_lines()) - line_set
        if orphans:
            raise InvariantViolation(
                "dirty-not-resident",
                "victim buffer dirty bit for a line it does not hold",
                node=node_id, cache="victim", line=min(orphans),
            )

    def _check_rac_exclusion(self, node_id: int, rac, homemap) -> None:
        home_of = homemap.home_of
        for line in rac.cache.resident_lines():
            if home_of(line, node_id) == node_id:
                raise InvariantViolation(
                    "rac-exclusion",
                    "remote access cache holds a locally-homed line",
                    node=node_id, cache=rac.cache.name,
                    set_index=line % rac.cache.num_sets, line=line,
                )

    # -- cross-node directory agreement ------------------------------------

    def _check_directory_agreement(self, system, protocol) -> None:
        directory = protocol.directory
        racs = system.racs
        nodes = system.nodes
        num_nodes = len(nodes)
        multi_node = num_nodes > 1

        # What each node actually holds, from the caches themselves.
        resident: list = []
        for node_id, node in enumerate(nodes):
            held: Set[int] = set(node.l2.resident_lines())
            if node.victim is not None:
                held |= set(node.victim.lines())
            if racs is not None:
                held |= set(racs[node_id].cache.resident_lines())
            resident.append(held)

        # What the directory believes, in one pass over its entries.
        tracked = [set() for _ in range(num_nodes)]
        for line, sharers, owner in directory.entries():
            if not sharers:
                raise InvariantViolation(
                    "empty-sharer-set", "tracked line has no sharers", line=line,
                )
            if owner is not None:
                if owner not in sharers:
                    raise InvariantViolation(
                        "owner-not-sharer",
                        f"owner {owner} missing from sharer set {sorted(sharers)}",
                        node=owner, line=line,
                    )
                if len(sharers) > 1:
                    raise InvariantViolation(
                        "owner-not-exclusive",
                        f"owned line also shared by {sorted(sharers - {owner})}",
                        node=owner, line=line,
                    )
            for sharer in sharers:
                if not 0 <= sharer < num_nodes:
                    raise InvariantViolation(
                        "sharer-out-of-range",
                        f"directory names node {sharer} of {num_nodes}",
                        node=sharer, line=line,
                    )
                tracked[sharer].add(line)

        for node_id in range(num_nodes):
            untracked = resident[node_id] - tracked[node_id]
            if untracked:
                line = min(untracked)
                raise InvariantViolation(
                    "directory-missing-copy",
                    "node holds a line the directory does not track for it "
                    "(a dropped/unsent invalidation looks exactly like this)",
                    node=node_id, cache=self._locate_holder(system, node_id, line),
                    line=line,
                )
            stale = tracked[node_id] - resident[node_id]
            if stale:
                line = min(stale)
                raise InvariantViolation(
                    "directory-stale-copy",
                    "directory tracks a copy the node does not hold "
                    + ("(flipped protocol state)"
                       if directory.owner(line) == node_id
                       else "(missed eviction notice)"),
                    node=node_id, line=line,
                )

        # Multi-node: a modified line implies exclusive ownership.
        if multi_node:
            owner = directory.owner
            for node_id, node in enumerate(nodes):
                dirty_holders = [node.l2]
                if racs is not None:
                    dirty_holders.append(racs[node_id].cache)
                for cache in dirty_holders:
                    for line in cache.dirty_lines():
                        if owner(line) != node_id:
                            raise InvariantViolation(
                                "dirty-without-ownership",
                                "node holds a modified line it does not own "
                                f"(directory owner: {owner(line)})",
                                node=node_id, cache=cache.name,
                                set_index=line % cache.num_sets, line=line,
                            )
                if node.victim is not None:
                    for line in node.victim.dirty_lines():
                        if owner(line) != node_id:
                            raise InvariantViolation(
                                "dirty-without-ownership",
                                "victim buffer holds a modified line the node "
                                f"does not own (directory owner: {owner(line)})",
                                node=node_id, cache="victim", line=line,
                            )

    @staticmethod
    def _locate_holder(system, node_id: int, line: int) -> str:
        """Name the structure within ``node_id`` that holds ``line``."""
        node = system.nodes[node_id]
        if node.l2.contains(line):
            return node.l2.name
        if node.victim is not None and node.victim.holds(line):
            return "victim"
        if system.racs is not None and system.racs[node_id].holds(line):
            return system.racs[node_id].cache.name
        return "?"
