"""The ``repro-oltp selftest`` harness.

Three stages, each turning an implicit correctness assumption into a
checked, reportable fact:

1. **Clean-run invariants** — replay the Figure 5 off-chip sweep and
   the Figure 10 integration ladders (uniprocessor and 8-way, plus the
   Conservative Base) with ``end-of-run`` checking: every structural
   invariant and conservation law must hold on real OLTP traces.
2. **Loop agreement** — run the same seeded trace through the fast and
   the general replay loop with ``per-quantum`` checking: both must
   stay invariant-clean at every quantum boundary and produce
   identical statistics.
3. **Fault matrix** — inject every :class:`FaultKind` into a live run
   and require the checker to catch each one as an
   :class:`InvariantViolation` carrying forensics.  A checker that
   cannot detect known corruption proves nothing about clean runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List

from repro.core.machine import MachineConfig
from repro.core.system import System, simulate
from repro.cpu.events import encode
from repro.integrity.errors import InvariantViolation, ReproError
from repro.integrity.faults import FaultKind, FaultPlan
from repro.trace.synthetic import make_trace


@dataclass
class SelftestReport:
    """Outcome of one selftest invocation.

    Every check is kept twice: as a pre-formatted text line (the
    historical ``render`` output) and as a structured record in
    ``checks``, so ``repro-oltp selftest --json`` and the service
    health surface can consume the same run machine-readably.
    """

    lines: List[str] = field(default_factory=list)
    failures: int = 0
    checks: List[dict] = field(default_factory=list)
    _section: str = ""

    @property
    def passed(self) -> bool:
        return self.failures == 0

    def ok(self, message: str) -> None:
        self.lines.append(f"  ok    {message}")
        self.checks.append(
            {"section": self._section, "status": "ok", "message": message}
        )

    def fail(self, message: str) -> None:
        self.failures += 1
        self.lines.append(f"  FAIL  {message}")
        self.checks.append(
            {"section": self._section, "status": "fail", "message": message}
        )

    def section(self, title: str) -> None:
        self._section = title.rstrip(":")
        self.lines.append(title)

    def render(self) -> str:
        verdict = (
            "selftest PASSED" if self.passed
            else f"selftest FAILED ({self.failures} failure(s))"
        )
        return "\n".join(["repro-oltp integrity selftest", *self.lines, verdict])

    def to_dict(self) -> dict:
        """The machine-readable report (``selftest --json``, CI)."""
        from repro.version import version_info

        return {
            "passed": self.passed,
            "failures": self.failures,
            "checks": list(self.checks),
            "version": version_info(),
        }


def _synthetic_trace(ncpus: int = 4, quanta: int = 120, seed: int = 5):
    """A small multi-CPU trace with writes, kernel refs and warmup."""
    rng = random.Random(seed)
    body = []
    for _ in range(quanta):
        cpu = rng.randrange(ncpus)
        refs = []
        for _ in range(rng.randint(5, 40)):
            instr = rng.random() < 0.4
            refs.append(encode(
                rng.randrange(400),
                write=not instr and rng.random() < 0.35,
                instr=instr,
                kernel=rng.random() < 0.2,
            ))
        body.append((cpu, refs))
    return make_trace(ncpus, body, page_bytes=256, warmup_quanta=quanta // 5)


def _clean_figures(report: SelftestReport, settings) -> None:
    from repro.experiments.common import get_trace
    from repro.experiments.integration import ladder_configs
    from repro.experiments.offchip import sweep_configs

    checked = replace(settings, check="end-of-run")
    stages = []
    uni_trace = get_trace(1, checked)
    stages.append(("fig5", sweep_configs(1, checked.scale), uni_trace))
    stages.append(("fig10/uni", ladder_configs(1, checked.scale), uni_trace))
    mp_trace = get_trace(8, checked)
    stages.append((
        "fig10/mp",
        ladder_configs(8, checked.scale)
        + [("Cons", MachineConfig.conservative_base(8, scale=checked.scale))],
        mp_trace,
    ))
    for stage, configs, trace in stages:
        for label, machine in configs:
            try:
                simulate(machine, trace, check="end-of-run")
                report.ok(f"{stage}: {label}")
            except InvariantViolation as exc:
                report.fail(f"{stage}: {label}: {exc}")


def _loop_agreement(report: SelftestReport) -> None:
    machine = MachineConfig.base(4, l2_size=8192, l2_assoc=2, scale=1)
    trace_a = _synthetic_trace()
    trace_b = _synthetic_trace()
    try:
        fast = System(machine, check="per-quantum").run(trace_a)
        general = System(machine, force_general=True,
                         check="per-quantum").run(trace_b)
    except InvariantViolation as exc:
        report.fail(f"loop agreement: per-quantum check tripped: {exc}")
        return
    if (fast.breakdown.total == general.breakdown.total
            and fast.misses.as_dict() == general.misses.as_dict()
            and fast.l1.i_misses == general.l1.i_misses):
        report.ok("fast and general loops agree under per-quantum checking")
    else:
        report.fail(
            "fast and general loops disagree: "
            f"totals {fast.breakdown.total} vs {general.breakdown.total}"
        )


def _fault_matrix(report: SelftestReport) -> None:
    machine = MachineConfig.base(4, l2_size=8192, l2_assoc=2, scale=1)
    for kind in FaultKind:
        trace = _synthetic_trace()
        plan = FaultPlan(kind, at_ref=len(trace.quanta[0].refs), seed=13)
        try:
            System(machine, check="per-quantum", fault_plan=plan).run(trace)
            report.fail(f"fault {kind.value}: NOT detected")
        except InvariantViolation as exc:
            forensics = exc.forensics
            if plan.applied and forensics.get("invariant"):
                report.ok(
                    f"fault {kind.value}: caught as '{exc.invariant}' "
                    f"{ {k: v for k, v in forensics.items() if k != 'invariant'} }"
                )
            else:
                report.fail(f"fault {kind.value}: caught without forensics")
        except ReproError as exc:
            report.fail(f"fault {kind.value}: unexpected error: {exc}")


def run(settings=None) -> SelftestReport:
    """Run the full selftest; quick figure sizes unless overridden."""
    from repro.experiments.common import Settings

    settings = settings or Settings.quick()
    report = SelftestReport()
    report.section("clean figure runs (end-of-run checking):")
    _clean_figures(report, settings)
    report.section("replay-loop agreement (per-quantum checking):")
    _loop_agreement(report)
    report.section("fault-injection matrix (checker mutation test):")
    _fault_matrix(report)
    return report
