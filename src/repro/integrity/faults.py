"""Deterministic fault injection: simulator-state and worker faults.

A :class:`FaultPlan` deliberately corrupts one piece of simulator
state — directory protocol metadata, LRU placement, residency or dirty
bits — at a configured reference index.  The integrity
:class:`~repro.integrity.checker.Checker` must then report the
corruption as an :class:`~repro.integrity.errors.InvariantViolation`;
a checker that stays silent under every fault class is vacuous, and
``repro-oltp selftest`` proves ours is not.

A :class:`WorkerFaultPlan` is the same idea one layer up: it injects
*process-level* misbehaviour — crash, hang, corrupted result, transient
exception, slow worker — into campaign worker processes, so the
supervised executor (:mod:`repro.runner.supervisor`) can be
mutation-tested the way the checker is.  See the "chaos harness"
section at the bottom of this module.

Plans are seeded and deterministic: the same ``(kind, at_ref, seed)``
against the same simulator state always corrupts the same target, so
a detected (or missed!) fault is exactly reproducible.

Faults are applied at a quantum boundary (the first boundary at or
after ``at_ref`` replayed references); pair them with ``per-quantum``
checking, which runs at the same boundary, so the corruption is
examined before subsequent replay can coincidentally repair it (e.g.
an eviction popping an injected duplicate).
"""

from __future__ import annotations

import enum
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.integrity.errors import FaultInjectionError


class FaultKind(enum.Enum):
    """The classes of corruption a :class:`FaultPlan` can inject."""

    #: Rewrite directory ownership so it names a node holding nothing.
    PROTOCOL_STATE = "protocol-state"
    #: Make the directory forget a node's copy (a dropped invalidation
    #: ack / eviction hint: the node keeps data the home knows nothing of).
    DROP_INVALIDATION = "drop-invalidation"
    #: Move a line into a set its index does not map to.
    LRU_CORRUPT = "lru-corrupt"
    #: Install the same line twice in one set.
    DUPLICATE_LINE = "duplicate-line"
    #: Set a dirty bit for a line that is not resident.
    DIRTY_ORPHAN = "dirty-orphan"
    #: Fill an L1 with a line the inclusive L2 does not hold.
    INCLUSION_BREAK = "inclusion-break"


@dataclass
class FaultPlan:
    """One seeded, deterministic corruption of simulator state.

    ``at_ref`` positions the fault: it is applied at the first quantum
    boundary after at least that many references have been replayed
    (0 = after the first quantum).  ``seed`` picks among eligible
    targets.  After application, ``applied`` is True and ``target``
    records what was corrupted, for reports and debugging.
    """

    kind: Union[FaultKind, str]
    at_ref: int = 0
    seed: int = 0
    applied: bool = field(default=False, init=False)
    target: Dict[str, Any] = field(default_factory=dict, init=False)

    def __post_init__(self):
        if not isinstance(self.kind, FaultKind):
            try:
                self.kind = FaultKind(str(self.kind).lower().replace("_", "-"))
            except ValueError:
                options = ", ".join(repr(k.value) for k in FaultKind)
                raise FaultInjectionError(
                    f"unknown fault kind {self.kind!r} (choose one of {options})"
                ) from None
        if self.at_ref < 0:
            raise FaultInjectionError("at_ref must be non-negative")

    # -- application --------------------------------------------------------

    def apply(self, system, protocol) -> Dict[str, Any]:
        """Corrupt ``system``/``protocol`` state; record and return the target."""
        if self.applied:
            return self.target
        rng = random.Random(self.seed)
        applier = getattr(self, "_" + self.kind.name.lower())
        self.target = applier(rng, system, protocol)
        self.applied = True
        return self.target

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _node_holds(system, node_id: int, line: int) -> bool:
        if system.nodes[node_id].holds(line):
            return True
        return system.racs is not None and system.racs[node_id].holds(line)

    @staticmethod
    def _nonempty_l2(rng, system):
        """Pick (node_id, l2) with at least one resident line."""
        order = list(range(len(system.nodes)))
        rng.shuffle(order)
        for node_id in order:
            l2 = system.nodes[node_id].l2
            if l2.occupancy:
                return node_id, l2
        raise FaultInjectionError("no node has a resident L2 line to corrupt")

    # -- appliers (one per FaultKind) ---------------------------------------

    def _protocol_state(self, rng, system, protocol):
        directory = protocol.directory
        num_nodes = len(system.nodes)
        tracked = sorted(directory._sharers)
        if not tracked:
            raise FaultInjectionError("directory is empty; nothing to corrupt")
        if num_nodes > 1:
            for line in rng.sample(tracked, len(tracked)):
                sharers = directory._sharers[line]
                thieves = [
                    n for n in range(num_nodes)
                    if n not in sharers and not self._node_holds(system, n, line)
                ]
                if thieves:
                    thief = rng.choice(thieves)
                    directory.set_owner(line, thief)
                    return {"line": line, "owner": thief, "was": sorted(sharers)}
        # Single node (or every node holds every tracked line): claim a
        # ghost line nobody holds.  Resident lines are always tracked,
        # so anything past the maximum tracked line is free.
        ghost = max(tracked) + 1
        directory.set_owner(ghost, 0)
        return {"line": ghost, "owner": 0, "was": "untracked"}

    def _drop_invalidation(self, rng, system, protocol):
        node_id, l2 = self._nonempty_l2(rng, system)
        line = rng.choice(sorted(l2.resident_lines()))
        protocol.directory.remove_node(line, node_id)
        return {"node": node_id, "cache": l2.name, "line": line}

    def _lru_corrupt(self, rng, system, protocol):
        node_id, l2 = self._nonempty_l2(rng, system)
        if l2.num_sets < 2:
            raise FaultInjectionError(
                f"{l2.name} has a single set; no wrong set to move a line into"
            )
        idxs = [i for i, ways in enumerate(l2._sets) if ways]
        idx = rng.choice(idxs)
        line = l2._sets[idx].pop()
        l2._dirty[idx].discard(line)
        dest = (idx + 1 + rng.randrange(l2.num_sets - 1)) % l2.num_sets
        l2._sets[dest].append(line)
        return {"node": node_id, "cache": l2.name, "line": line,
                "from_set": idx, "to_set": dest}

    def _duplicate_line(self, rng, system, protocol):
        node_id, l2 = self._nonempty_l2(rng, system)
        idxs = [i for i, ways in enumerate(l2._sets) if ways]
        idx = rng.choice(idxs)
        line = l2._sets[idx][0]
        l2._sets[idx].append(line)
        return {"node": node_id, "cache": l2.name, "line": line, "set": idx}

    def _dirty_orphan(self, rng, system, protocol):
        node_id = rng.randrange(len(system.nodes))
        l2 = system.nodes[node_id].l2
        idx = rng.randrange(l2.num_sets)
        line = idx
        while line in l2._sets[idx]:
            line += l2.num_sets
        l2._dirty[idx].add(line)
        return {"node": node_id, "cache": l2.name, "line": line, "set": idx}

    def _inclusion_break(self, rng, system, protocol):
        node_id = rng.randrange(len(system.nodes))
        node = system.nodes[node_id]
        l1 = rng.choice(node.l1ds + node.l1is)
        line = 0
        while node.l2.contains(line) or l1.contains(line):
            line += 1
        l1.fill(line)
        return {"node": node_id, "cache": l1.name, "line": line}


# -- chaos harness: worker-process fault injection ----------------------------
#
# Campaign workers can fail in ways no simulator-state fault models:
# the whole process dies, wedges, or returns garbage.  A
# WorkerFaultPlan injects exactly those failures into the supervised
# executor's worker processes, deterministically, so the chaos suite
# (tests/runner/test_chaos.py) can assert the supervisor recovers from
# each class with value-identical results.
#
# Plans fire when a worker's local job counter reaches `at_job`
# (`EVERY_JOB` matches all), and total fires across the campaign are
# bounded by `times` via atomically-claimed token files in a shared
# directory — essential for the crash/hang classes, where the worker
# that fired is replaced by a fresh process that would otherwise fire
# again, forever.


class InjectedWorkerFault(RuntimeError):
    """The transient exception the chaos harness raises inside a
    worker; deliberately *not* a ReproError, so the supervisor treats
    it as retryable rather than as a deterministic simulation error."""


class WorkerFaultKind(enum.Enum):
    """The classes of worker misbehaviour a :class:`WorkerFaultPlan`
    can inject."""

    #: Kill the worker process outright (``os._exit``): models a
    #: segfault or the OOM killer.  Breaks the whole pool.
    CRASH = "crash"
    #: Sleep far past any job deadline: models a wedged worker.
    HANG = "hang"
    #: Flip a value in the result payload *after* its CRC was taken:
    #: models bit-rot in flight.  The supervisor must reject it.
    CORRUPT_RESULT = "corrupt-result"
    #: Raise a (retryable) exception: models a transient environment
    #: failure — ENOMEM, a dropped file handle, a flaky import.
    TRANSIENT_RAISE = "transient-raise"
    #: Sleep briefly, then answer correctly: models an overloaded
    #: worker that must NOT be treated as failed.
    SLOW = "slow"


#: ``at_job`` wildcard: the plan is eligible on every job.
EVERY_JOB = -1


@dataclass
class WorkerFaultPlan:
    """One seeded, bounded misbehaviour of a campaign worker.

    ``at_job`` is the worker-local job index the fault targets
    (:data:`EVERY_JOB` targets all).  ``times`` bounds total fires
    across every worker and every pool generation, enforced through
    token files when the injector has a token directory (workers
    racing for the same token claim distinct ones, so the bound holds
    under concurrency).  ``delay_s`` is the sleep for HANG/SLOW;
    ``seed`` drives the corruption-target choice for CORRUPT_RESULT.
    ``name`` must be unique within one campaign (the parser
    guarantees it); it keys the token files.
    """

    kind: Union[WorkerFaultKind, str]
    at_job: int = 0
    times: int = 1
    delay_s: Optional[float] = None
    seed: int = 0
    name: str = ""

    #: Default sleeps: a hang must outlive any sane job timeout, a
    #: slow worker must comfortably beat one.
    HANG_DELAY = 3600.0
    SLOW_DELAY = 0.25

    def __post_init__(self):
        if not isinstance(self.kind, WorkerFaultKind):
            try:
                self.kind = WorkerFaultKind(
                    str(self.kind).lower().replace("_", "-"))
            except ValueError:
                options = ", ".join(repr(k.value) for k in WorkerFaultKind)
                raise FaultInjectionError(
                    f"unknown worker fault kind {self.kind!r} "
                    f"(choose one of {options})"
                ) from None
        if self.at_job < EVERY_JOB:
            raise FaultInjectionError(
                "at_job must be a job index or EVERY_JOB")
        if self.times < 1:
            raise FaultInjectionError("times must be at least 1")
        if not self.name:
            self.name = f"{self.kind.value}@{self.at_job}"

    def matches(self, job_index: int) -> bool:
        return self.at_job in (EVERY_JOB, job_index)

    @property
    def delay(self) -> float:
        if self.delay_s is not None:
            return self.delay_s
        return (self.HANG_DELAY if self.kind is WorkerFaultKind.HANG
                else self.SLOW_DELAY)


def parse_worker_faults(spec: str) -> "list[WorkerFaultPlan]":
    """Parse a chaos spec like ``"crash@0,hang@1~120,slow@*~0.1:3"``.

    Comma-separated tokens, each ``kind@job`` with ``job`` an index or
    ``*`` (every job), optionally ``~seconds`` (delay for hang/slow)
    and ``:times`` (total fire bound, default 1).  Raises
    :class:`FaultInjectionError` on anything malformed.
    """
    plans = []
    for i, token in enumerate(t.strip() for t in spec.split(",")):
        if not token:
            continue
        work = token
        times = 1
        delay = None
        if ":" in work:
            work, _, times_text = work.rpartition(":")
            try:
                times = int(times_text)
            except ValueError:
                raise FaultInjectionError(
                    f"bad fire count in chaos token {token!r}") from None
        if "~" in work:
            work, _, delay_text = work.rpartition("~")
            try:
                delay = float(delay_text)
            except ValueError:
                raise FaultInjectionError(
                    f"bad delay in chaos token {token!r}") from None
        kind, sep, at_text = work.partition("@")
        if not sep or not kind:
            raise FaultInjectionError(
                f"chaos token {token!r} must look like kind@job")
        if at_text == "*":
            at_job = EVERY_JOB
        else:
            try:
                at_job = int(at_text)
            except ValueError:
                raise FaultInjectionError(
                    f"bad job index in chaos token {token!r}") from None
        plans.append(WorkerFaultPlan(
            kind=kind, at_job=at_job, times=times, delay_s=delay, seed=i,
            name=f"{i}-{kind}@{at_text}",
        ))
    if not plans:
        raise FaultInjectionError(f"empty chaos spec {spec!r}")
    return plans


class WorkerFaultInjector:
    """The worker-process side of the chaos harness.

    Installed by the pool initializer in every worker (and every pool
    generation).  ``on_job_start`` fires the process-level faults;
    ``corrupt_result`` is called by the worker entry point after the
    result CRC is computed, so a fired corruption is guaranteed to be
    *detectable* — the harness tests the supervisor's checksum, not
    the simulator.
    """

    def __init__(self, plans, token_dir: Optional[str] = None):
        self.plans = list(plans)
        self.token_dir = token_dir
        self._jobs_seen = 0
        self._local_fires: Dict[str, int] = {}

    # -- fire bounding -------------------------------------------------------

    def _claim(self, plan: WorkerFaultPlan) -> bool:
        """Atomically claim one of the plan's ``times`` fire slots."""
        if self.token_dir is None:
            # No shared directory: bound fires per process only.  Fine
            # for faults the process survives; crash/hang plans need
            # tokens to stay bounded across pool respawns.
            fired = self._local_fires.get(plan.name, 0)
            if fired >= plan.times:
                return False
            self._local_fires[plan.name] = fired + 1
            return True
        for slot in range(plan.times):
            token = os.path.join(self.token_dir, f"{plan.name}.{slot}")
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    # -- firing --------------------------------------------------------------

    def on_job_start(self) -> None:
        """Count a job; fire any eligible process-level fault."""
        index = self._jobs_seen
        self._jobs_seen += 1
        for plan in self.plans:
            if plan.kind is WorkerFaultKind.CORRUPT_RESULT:
                continue
            if not plan.matches(index) or not self._claim(plan):
                continue
            if plan.kind is WorkerFaultKind.CRASH:
                os._exit(13)
            elif plan.kind is WorkerFaultKind.HANG:
                time.sleep(plan.delay)
            elif plan.kind is WorkerFaultKind.TRANSIENT_RAISE:
                raise InjectedWorkerFault(
                    f"injected transient fault ({plan.name})")
            elif plan.kind is WorkerFaultKind.SLOW:
                time.sleep(plan.delay)

    def corrupt_result(self, payload: dict) -> dict:
        """Maybe corrupt a deep copy of ``payload`` (CRC already taken).

        Flips the first numeric leaf (in canonical key order) chosen
        by the plan's seed — silent bit-rot, not structural damage, so
        only the checksum can catch it.
        """
        index = self._jobs_seen - 1
        for plan in self.plans:
            if plan.kind is not WorkerFaultKind.CORRUPT_RESULT:
                continue
            if not plan.matches(index) or not self._claim(plan):
                continue
            corrupted = json.loads(json.dumps(payload))
            leaves = _numeric_leaves(corrupted)
            if leaves:
                holder, key = leaves[
                    random.Random(plan.seed).randrange(len(leaves))]
                holder[key] = holder[key] + 1
            return corrupted
        return payload


def _numeric_leaves(node, out=None):
    """All ``(container, key)`` pairs holding a number, in stable order."""
    if out is None:
        out = []
    if isinstance(node, dict):
        for key in sorted(node):
            value = node[key]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out.append((node, key))
            else:
                _numeric_leaves(value, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out.append((node, i))
            else:
                _numeric_leaves(value, out)
    return out


#: The injector installed in this process (workers only; ``None`` in
#: the campaign parent and in ordinary runs).
_WORKER_INJECTOR: Optional[WorkerFaultInjector] = None


def install_worker_faults(plans, token_dir: Optional[str] = None
                          ) -> WorkerFaultInjector:
    """Arm the chaos harness in this process (pool initializer hook)."""
    global _WORKER_INJECTOR
    _WORKER_INJECTOR = WorkerFaultInjector(plans, token_dir)
    return _WORKER_INJECTOR


def clear_worker_faults() -> None:
    """Disarm the chaos harness in this process (tests)."""
    global _WORKER_INJECTOR
    _WORKER_INJECTOR = None


def active_worker_injector() -> Optional[WorkerFaultInjector]:
    """The armed injector, or ``None`` when chaos is off."""
    return _WORKER_INJECTOR
