"""Deterministic fault injection for mutation-testing the checker.

A :class:`FaultPlan` deliberately corrupts one piece of simulator
state — directory protocol metadata, LRU placement, residency or dirty
bits — at a configured reference index.  The integrity
:class:`~repro.integrity.checker.Checker` must then report the
corruption as an :class:`~repro.integrity.errors.InvariantViolation`;
a checker that stays silent under every fault class is vacuous, and
``repro-oltp selftest`` proves ours is not.

Plans are seeded and deterministic: the same ``(kind, at_ref, seed)``
against the same simulator state always corrupts the same target, so
a detected (or missed!) fault is exactly reproducible.

Faults are applied at a quantum boundary (the first boundary at or
after ``at_ref`` replayed references); pair them with ``per-quantum``
checking, which runs at the same boundary, so the corruption is
examined before subsequent replay can coincidentally repair it (e.g.
an eviction popping an injected duplicate).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Union

from repro.integrity.errors import FaultInjectionError


class FaultKind(enum.Enum):
    """The classes of corruption a :class:`FaultPlan` can inject."""

    #: Rewrite directory ownership so it names a node holding nothing.
    PROTOCOL_STATE = "protocol-state"
    #: Make the directory forget a node's copy (a dropped invalidation
    #: ack / eviction hint: the node keeps data the home knows nothing of).
    DROP_INVALIDATION = "drop-invalidation"
    #: Move a line into a set its index does not map to.
    LRU_CORRUPT = "lru-corrupt"
    #: Install the same line twice in one set.
    DUPLICATE_LINE = "duplicate-line"
    #: Set a dirty bit for a line that is not resident.
    DIRTY_ORPHAN = "dirty-orphan"
    #: Fill an L1 with a line the inclusive L2 does not hold.
    INCLUSION_BREAK = "inclusion-break"


@dataclass
class FaultPlan:
    """One seeded, deterministic corruption of simulator state.

    ``at_ref`` positions the fault: it is applied at the first quantum
    boundary after at least that many references have been replayed
    (0 = after the first quantum).  ``seed`` picks among eligible
    targets.  After application, ``applied`` is True and ``target``
    records what was corrupted, for reports and debugging.
    """

    kind: Union[FaultKind, str]
    at_ref: int = 0
    seed: int = 0
    applied: bool = field(default=False, init=False)
    target: Dict[str, Any] = field(default_factory=dict, init=False)

    def __post_init__(self):
        if not isinstance(self.kind, FaultKind):
            try:
                self.kind = FaultKind(str(self.kind).lower().replace("_", "-"))
            except ValueError:
                options = ", ".join(repr(k.value) for k in FaultKind)
                raise FaultInjectionError(
                    f"unknown fault kind {self.kind!r} (choose one of {options})"
                ) from None
        if self.at_ref < 0:
            raise FaultInjectionError("at_ref must be non-negative")

    # -- application --------------------------------------------------------

    def apply(self, system, protocol) -> Dict[str, Any]:
        """Corrupt ``system``/``protocol`` state; record and return the target."""
        if self.applied:
            return self.target
        rng = random.Random(self.seed)
        applier = getattr(self, "_" + self.kind.name.lower())
        self.target = applier(rng, system, protocol)
        self.applied = True
        return self.target

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _node_holds(system, node_id: int, line: int) -> bool:
        if system.nodes[node_id].holds(line):
            return True
        return system.racs is not None and system.racs[node_id].holds(line)

    @staticmethod
    def _nonempty_l2(rng, system):
        """Pick (node_id, l2) with at least one resident line."""
        order = list(range(len(system.nodes)))
        rng.shuffle(order)
        for node_id in order:
            l2 = system.nodes[node_id].l2
            if l2.occupancy:
                return node_id, l2
        raise FaultInjectionError("no node has a resident L2 line to corrupt")

    # -- appliers (one per FaultKind) ---------------------------------------

    def _protocol_state(self, rng, system, protocol):
        directory = protocol.directory
        num_nodes = len(system.nodes)
        tracked = sorted(directory._sharers)
        if not tracked:
            raise FaultInjectionError("directory is empty; nothing to corrupt")
        if num_nodes > 1:
            for line in rng.sample(tracked, len(tracked)):
                sharers = directory._sharers[line]
                thieves = [
                    n for n in range(num_nodes)
                    if n not in sharers and not self._node_holds(system, n, line)
                ]
                if thieves:
                    thief = rng.choice(thieves)
                    directory.set_owner(line, thief)
                    return {"line": line, "owner": thief, "was": sorted(sharers)}
        # Single node (or every node holds every tracked line): claim a
        # ghost line nobody holds.  Resident lines are always tracked,
        # so anything past the maximum tracked line is free.
        ghost = max(tracked) + 1
        directory.set_owner(ghost, 0)
        return {"line": ghost, "owner": 0, "was": "untracked"}

    def _drop_invalidation(self, rng, system, protocol):
        node_id, l2 = self._nonempty_l2(rng, system)
        line = rng.choice(sorted(l2.resident_lines()))
        protocol.directory.remove_node(line, node_id)
        return {"node": node_id, "cache": l2.name, "line": line}

    def _lru_corrupt(self, rng, system, protocol):
        node_id, l2 = self._nonempty_l2(rng, system)
        if l2.num_sets < 2:
            raise FaultInjectionError(
                f"{l2.name} has a single set; no wrong set to move a line into"
            )
        idxs = [i for i, ways in enumerate(l2._sets) if ways]
        idx = rng.choice(idxs)
        line = l2._sets[idx].pop()
        l2._dirty[idx].discard(line)
        dest = (idx + 1 + rng.randrange(l2.num_sets - 1)) % l2.num_sets
        l2._sets[dest].append(line)
        return {"node": node_id, "cache": l2.name, "line": line,
                "from_set": idx, "to_set": dest}

    def _duplicate_line(self, rng, system, protocol):
        node_id, l2 = self._nonempty_l2(rng, system)
        idxs = [i for i, ways in enumerate(l2._sets) if ways]
        idx = rng.choice(idxs)
        line = l2._sets[idx][0]
        l2._sets[idx].append(line)
        return {"node": node_id, "cache": l2.name, "line": line, "set": idx}

    def _dirty_orphan(self, rng, system, protocol):
        node_id = rng.randrange(len(system.nodes))
        l2 = system.nodes[node_id].l2
        idx = rng.randrange(l2.num_sets)
        line = idx
        while line in l2._sets[idx]:
            line += l2.num_sets
        l2._dirty[idx].add(line)
        return {"node": node_id, "cache": l2.name, "line": line, "set": idx}

    def _inclusion_break(self, rng, system, protocol):
        node_id = rng.randrange(len(system.nodes))
        node = system.nodes[node_id]
        l1 = rng.choice(node.l1ds + node.l1is)
        line = 0
        while node.l2.contains(line) or l1.contains(line):
            line += 1
        l1.fill(line)
        return {"node": node_id, "cache": l1.name, "line": line}
