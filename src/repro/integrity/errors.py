"""Structured error taxonomy for the reproduction.

Every failure the simulator can diagnose gets a class here, rooted at
:class:`ReproError`, so callers can catch "anything this project
raises" with one except clause while the CLI turns each into an
actionable one-line message instead of a traceback.

Classes double-inherit from the builtin exception they historically
replaced (``ValueError``/``RuntimeError``) so existing callers that
catch the builtin keep working.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """A :class:`~repro.core.machine.MachineConfig` (or workload
    configuration) is internally inconsistent or physically meaningless."""


class TraceFormatError(ReproError, ValueError):
    """A stored trace archive is corrupt, truncated, incomplete, or was
    written by an incompatible format version."""


class TraceMismatchError(ReproError, ValueError):
    """A trace cannot be replayed against the requested machine
    (CPU-count mismatch, bad page size, empty or mis-bounded quanta)."""


class JournalFormatError(ReproError, ValueError):
    """A campaign journal passed to ``--resume`` is not a journal at
    all, or was written by a future format version.  (Damage *within*
    a journal — torn or corrupt lines — is healed silently instead.)"""


class CampaignJobError(ReproError, RuntimeError):
    """One or more jobs of a campaign batch failed terminally.

    Raised by the campaign runner after the supervised executor has
    driven every job of a batch to a terminal outcome, so the caller
    still gets a complete picture: ``failures`` holds one structured
    :class:`~repro.runner.supervisor.JobFailure` per dead job (label,
    hash, failure kind, message, attempt count).  All successful jobs
    of the batch were already persisted to the cache/journal before
    this was raised — a rerun only repeats the failures.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        shown = ", ".join(
            f"{f.label} [{f.kind} after {f.attempts} attempt"
            f"{'s' if f.attempts != 1 else ''}: {f.message}]"
            for f in self.failures[:3]
        )
        more = len(self.failures) - 3
        if more > 0:
            shown += f", and {more} more"
        super().__init__(
            f"{len(self.failures)} job"
            f"{'s' if len(self.failures) != 1 else ''} failed: {shown}"
        )


class ServiceError(ReproError, RuntimeError):
    """Base class for job-service submission rejections.

    These map onto HTTP statuses at the service boundary (the wire
    taxonomy): :class:`QueueFullError` and
    :class:`ServiceUnavailableError` become 503 responses a client may
    retry, while :class:`ConfigError` from a malformed job spec
    becomes a 400 it must not.
    """


class QueueFullError(ServiceError):
    """The service's bounded submission queue is at capacity."""


class ServiceUnavailableError(ServiceError):
    """The service is draining or stopped and accepts no new jobs."""


class StateError(ReproError, RuntimeError):
    """An object was driven through an illegal lifecycle transition
    (e.g. reusing a single-use :class:`~repro.core.system.System`)."""


class FaultInjectionError(ReproError, RuntimeError):
    """A :class:`~repro.integrity.faults.FaultPlan` could not find an
    eligible target in the current simulator state."""


class InvariantViolation(ReproError):
    """A runtime invariant of the simulation was violated.

    Carries a forensic payload locating the corruption: which
    invariant failed, at which node, in which cache, at which set
    index, for which line.  ``details`` holds any extra key/value
    context (counter values, expected-vs-actual, ...).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        node: Optional[int] = None,
        cache: Optional[str] = None,
        set_index: Optional[int] = None,
        line: Optional[int] = None,
        details: Optional[Dict[str, Any]] = None,
    ):
        self.invariant = invariant
        self.node = node
        self.cache = cache
        self.set_index = set_index
        self.line = line
        self.details = dict(details) if details else {}
        where = []
        if node is not None:
            where.append(f"node={node}")
        if cache is not None:
            where.append(f"cache={cache}")
        if set_index is not None:
            where.append(f"set={set_index}")
        if line is not None:
            where.append(f"line={line:#x}")
        for key, value in self.details.items():
            where.append(f"{key}={value}")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(f"invariant '{invariant}' violated: {message}{suffix}")

    @property
    def forensics(self) -> Dict[str, Any]:
        """The structured location payload as one dict (for reports)."""
        payload: Dict[str, Any] = {"invariant": self.invariant}
        if self.node is not None:
            payload["node"] = self.node
        if self.cache is not None:
            payload["cache"] = self.cache
        if self.set_index is not None:
            payload["set"] = self.set_index
        if self.line is not None:
            payload["line"] = self.line
        payload.update(self.details)
        return payload
