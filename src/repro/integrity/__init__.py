"""Simulation integrity subsystem: errors, invariants, fault injection.

The reproduction's credibility rests on the claim that the two replay
loops implement identical semantics and that the paper's shape criteria
emerge from *correct* cache and directory mechanics.  This package
turns that claim into a runtime guarantee:

* :mod:`repro.integrity.errors` — the structured error taxonomy every
  layer raises instead of bare ``ValueError``/``RuntimeError``;
* :mod:`repro.integrity.checker` — the invariant :class:`Checker` with
  toggleable cost tiers (``off`` / ``end-of-run`` / ``per-quantum``)
  that verifies inclusion, LRU/set discipline, directory/cache
  agreement and conservation laws during :meth:`System.run`;
* :mod:`repro.integrity.faults` — a seeded :class:`FaultPlan` that
  deliberately corrupts simulator state so the checker itself can be
  mutation-tested;
* :mod:`repro.integrity.selftest` — the user-invokable
  ``repro-oltp selftest`` harness tying the three together.
"""

from repro.integrity.checker import Checker, CheckLevel
from repro.integrity.errors import (
    CampaignJobError,
    ConfigError,
    FaultInjectionError,
    InvariantViolation,
    JournalFormatError,
    ReproError,
    StateError,
    TraceFormatError,
    TraceMismatchError,
)
from repro.integrity.faults import (
    FaultKind,
    FaultPlan,
    WorkerFaultKind,
    WorkerFaultPlan,
    parse_worker_faults,
)

__all__ = [
    "CampaignJobError",
    "Checker",
    "CheckLevel",
    "ConfigError",
    "FaultInjectionError",
    "FaultKind",
    "FaultPlan",
    "InvariantViolation",
    "JournalFormatError",
    "ReproError",
    "StateError",
    "TraceFormatError",
    "TraceMismatchError",
    "WorkerFaultKind",
    "WorkerFaultPlan",
    "parse_worker_faults",
]
