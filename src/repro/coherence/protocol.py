"""Directory-based invalidation protocol with the paper's miss taxonomy.

The protocol engine owns the directory and, on behalf of the coherence
controller at each home node, performs the interventions a real ccNUMA
machine would: forwarding reads to dirty owners (3-hop), invalidating
sharers on writes, and collecting replacement hints on evictions.

Every serviced L2 miss is classified exactly the way the paper's
figures break misses down:

* **local** — satisfied by the requesting node's own memory (or its
  remote-access cache, which by design responds at local-memory speed);
* **remote clean** (2-hop) — satisfied by a remote home's memory;
* **remote dirty** (3-hop) — satisfied by a dirty copy in a remote
  processor's cache (or that processor's RAC, which is slower still).

The engine mutates the per-node cache hierarchies directly when it
invalidates or downgrades copies, keeping directory state and cache
contents exactly synchronized — an invariant the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.coherence.directory import DirectoryState
from repro.coherence.homemap import HomeMap
from repro.memsys.hierarchy import NodeCaches
from repro.memsys.rac import RemoteAccessCache
from repro.params import MissKind


@dataclass
class ServiceOutcome:
    """How an L2 miss (or ownership upgrade) was serviced.

    ``kind`` drives both latency and the paper's miss accounting.
    ``via_rac`` marks local service out of the requester's RAC;
    ``from_remote_rac`` marks 3-hop data that had to come out of the
    *owner's* RAC rather than its L2 (250 ns instead of 200 ns).
    ``invalidations`` counts invalidation messages sent.
    ``upgrade`` marks ownership-only transactions (no data transfer).

    ``requester``/``home``/``dirty_owner`` record which nodes the
    transaction crossed, so a non-uniform
    :class:`~repro.scenario.topology.TopologySpec` can charge per-hop
    extras (2-hop: requester↔home; 3-hop: the
    requester→home→owner→requester triangle).  ``dirty_owner`` is -1
    except on 3-hop interventions.  Under the uniform topology the
    fields are carried but never read.
    """

    kind: MissKind
    via_rac: bool = False
    from_remote_rac: bool = False
    invalidations: int = 0
    upgrade: bool = False
    requester: int = 0
    home: int = 0
    dirty_owner: int = -1


class DirectoryProtocol:
    """Coherence engine spanning all nodes of the simulated machine."""

    def __init__(
        self,
        homemap: HomeMap,
        nodes: Sequence[NodeCaches],
        racs: Optional[Sequence[RemoteAccessCache]] = None,
    ):
        if racs is not None and len(racs) != len(nodes):
            raise ValueError("need one RAC per node when RACs are enabled")
        self.homemap = homemap
        self.nodes: List[NodeCaches] = list(nodes)
        self.racs: Optional[List[RemoteAccessCache]] = list(racs) if racs is not None else None
        self.directory = DirectoryState()
        self.upgrades = 0
        self.invalidations = 0
        self.writebacks = 0
        self.interventions = 0

    # -- internal helpers ---------------------------------------------------

    def _invalidate_node(self, line: int, node: int) -> bool:
        """Remove every copy of ``line`` at ``node``; True if dirty lost."""
        dirty = self.nodes[node].invalidate(line)
        if self.racs is not None and self.racs[node].invalidate(line):
            dirty = True
        self.directory.remove_node(line, node)
        return dirty

    def _invalidate_others(self, line: int, keeper: int) -> int:
        """Invalidate all copies except ``keeper``'s; returns message count."""
        count = 0
        for other in self.directory.sharers(line):
            if other != keeper:
                self._invalidate_node(line, other)
                count += 1
        self.invalidations += count
        return count

    def _rac_evict(self, node: int, victim: int, victim_dirty: bool) -> None:
        """Handle a line pushed out of ``node``'s RAC."""
        if self.nodes[node].l2.contains(victim):
            return  # the L2 still holds it; the node keeps its copy
        self.directory.remove_node(victim, node)
        if victim_dirty:
            self.writebacks += 1

    # -- protocol entry points ----------------------------------------------

    def service_miss(self, node: int, line: int, write: bool, is_instr: bool) -> ServiceOutcome:
        """Service an L2 miss for ``line`` at ``node``.

        The caller has already filled the line into the node's L2/L1;
        this method performs the coherence work, updates the directory,
        allocates the RAC, and classifies the miss.
        """
        directory = self.directory
        home = self.homemap.home_of(line, node)
        remote_home = home != node
        rac = self.racs[node] if (self.racs is not None and remote_home) else None
        owner = directory.owner(line)

        # The node may still hold the line in its RAC even though the L2
        # missed; in that case the data is available at local speed.
        # Every remote-homed L2 miss probes the RAC (hit or not).
        if rac is not None and rac.lookup(line, write):
            if not write or owner == node:
                return ServiceOutcome(MissKind.LOCAL, via_rac=True,
                                      requester=node, home=home)
            # Write to a shared RAC-resident line: the data is local but
            # ownership must be acquired from the home directory (2-hop).
            inv = self._invalidate_others(line, node)
            directory.set_owner(line, node)
            return ServiceOutcome(
                MissKind.REMOTE_CLEAN, via_rac=True, invalidations=inv,
                upgrade=True, requester=node, home=home,
            )

        from_remote_rac = False
        if owner is not None and owner == node:
            # Stale ownership should be impossible (evictions notify us);
            # recover defensively rather than corrupt the classification.
            directory.remove_node(line, node)
            owner = None

        if owner is not None:
            # A remote processor owns the line: intervene (3-hop if dirty).
            self.interventions += 1
            owner_caches = self.nodes[owner]
            owner_rac = self.racs[owner] if self.racs is not None else None
            dirty_in_l2 = owner_caches.holds_dirty(line)
            dirty_in_rac = owner_rac is not None and owner_rac.holds_dirty(line)
            dirty = dirty_in_l2 or dirty_in_rac
            if write:
                self._invalidate_node(line, owner)
                self.invalidations += 1
                directory.set_owner(line, node)
                inv = 1
            else:
                owner_caches.downgrade(line)
                if owner_rac is not None and owner_rac.holds(line):
                    owner_rac.cache.clean(line)
                if dirty:
                    self.writebacks += 1  # sharing writeback to home
                directory.clear_owner(line)
                directory.add_sharer(line, node)
                inv = 0
            if dirty:
                kind = MissKind.REMOTE_DIRTY
                from_remote_rac = dirty_in_rac and not dirty_in_l2
            else:
                kind = MissKind.LOCAL if not remote_home else MissKind.REMOTE_CLEAN
            outcome = ServiceOutcome(
                kind, from_remote_rac=from_remote_rac, invalidations=inv,
                requester=node, home=home,
                dirty_owner=owner if dirty else -1,
            )
        else:
            if write:
                inv = self._invalidate_others(line, node)
                directory.set_owner(line, node)
            else:
                directory.add_sharer(line, node)
                inv = 0
            kind = MissKind.LOCAL if not remote_home else MissKind.REMOTE_CLEAN
            outcome = ServiceOutcome(kind, invalidations=inv,
                                     requester=node, home=home)

        if rac is not None:
            fill = rac.allocate(line, dirty=write)
            if fill.victim is not None:
                self._rac_evict(node, fill.victim, fill.victim_dirty)
        return outcome

    def ensure_owner(self, node: int, line: int) -> Optional[ServiceOutcome]:
        """Acquire write ownership for a line the node already caches.

        Returns None when the node is already the owner (the common
        case, checked cheaply), otherwise performs the upgrade:
        invalidate all other copies via the home directory and record
        the new owner.  Upgrades do not move data, so they can never be
        3-hop; they stall for the directory round-trip (local or 2-hop).
        """
        directory = self.directory
        if directory.owner(line) == node:
            return None
        inv = self._invalidate_others(line, node)
        directory.set_owner(line, node)
        self.upgrades += 1
        home = self.homemap.home_of(line, node)
        kind = MissKind.LOCAL if home == node else MissKind.REMOTE_CLEAN
        return ServiceOutcome(kind, invalidations=inv, upgrade=True,
                              requester=node, home=home)

    def handle_eviction(self, node: int, line: int, dirty: bool) -> None:
        """Process an L2 replacement hint from ``node``.

        If the node's RAC still holds the line the node keeps its copy
        (dirty data migrates into the RAC); otherwise the directory
        drops the node and dirty data is written back to the home.
        """
        if self.racs is not None:
            rac = self.racs[node]
            if self.homemap.home_of(line, node) != node and rac.holds(line):
                if dirty:
                    rac.allocate(line, dirty=True)
                return
        self.directory.remove_node(line, node)
        if dirty:
            self.writebacks += 1

    def check_consistency(self) -> None:
        """Verify directory state matches actual cache contents (tests)."""
        self.directory.check_invariants()
        for node_id, caches in enumerate(self.nodes):
            for line in caches.l2.resident_lines():
                assert self.directory.is_cached_by(line, node_id), (
                    f"node {node_id} caches line {line:#x} unknown to directory"
                )
