"""Full-map directory state, one entry per actively cached line.

The directory is the paper's on-(or off-)chip coherence-controller
state: for every line it knows which nodes hold copies and whether one
of them owns it exclusively.  Entries are kept sparsely in dicts keyed
by line number — untouched lines are implicitly Unowned — which lets
the simulator cover an arbitrarily large physical address space.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set


class DirectoryState:
    """Presence and ownership bookkeeping for all cached lines.

    Invariants (checked by the test suite):

    * a line has at most one owner;
    * an owned line's owner is also in its sharer set;
    * sharer sets are never empty (empty sets are deleted).
    """

    __slots__ = ("_sharers", "_owner")

    def __init__(self) -> None:
        self._sharers: Dict[int, Set[int]] = {}
        self._owner: Dict[int, int] = {}

    # -- queries -----------------------------------------------------------

    def owner(self, line: int) -> Optional[int]:
        """The exclusive owner of ``line``, or None."""
        return self._owner.get(line)

    def sharers(self, line: int) -> FrozenSet[int]:
        """All nodes currently holding ``line`` (including any owner)."""
        return frozenset(self._sharers.get(line, ()))

    def is_cached(self, line: int) -> bool:
        return line in self._sharers

    def is_cached_by(self, line: int, node: int) -> bool:
        s = self._sharers.get(line)
        return s is not None and node in s

    def tracked_lines(self) -> int:
        """Number of lines with at least one cached copy (diagnostics)."""
        return len(self._sharers)

    def entries(self):
        """Iterate ``(line, sharers, owner)`` over every tracked line.

        Exposed for the integrity checker; the yielded sharer sets are
        the live internals and must not be mutated by callers.
        """
        owner_of = self._owner.get
        for line, sharers in self._sharers.items():
            yield line, sharers, owner_of(line)

    # -- transitions -------------------------------------------------------

    def add_sharer(self, line: int, node: int) -> None:
        """Record a clean copy at ``node`` (read fill)."""
        self._sharers.setdefault(line, set()).add(node)

    def set_owner(self, line: int, node: int) -> None:
        """Make ``node`` the exclusive owner (write fill or upgrade)."""
        self._sharers[line] = {node}
        self._owner[line] = node

    def clear_owner(self, line: int) -> None:
        """Demote the owner to a plain sharer (read intervention)."""
        self._owner.pop(line, None)

    def remove_node(self, line: int, node: int) -> None:
        """Drop ``node``'s copy (eviction or invalidation ack)."""
        s = self._sharers.get(line)
        if s is None:
            return
        s.discard(node)
        if not s:
            del self._sharers[line]
        if self._owner.get(line) == node:
            del self._owner[line]

    def invalidate_others(self, line: int, keeper: int) -> int:
        """Invalidate every copy except ``keeper``'s; returns count removed."""
        s = self._sharers.get(line)
        if s is None:
            return 0
        removed = len(s) - (1 if keeper in s else 0)
        self._sharers[line] = {keeper} if keeper in s else set()
        if not self._sharers[line]:
            del self._sharers[line]
        owner = self._owner.get(line)
        if owner is not None and owner != keeper:
            del self._owner[line]
        return removed

    def check_invariants(self) -> None:
        """Raise AssertionError when internal invariants are violated."""
        for line, owner in self._owner.items():
            assert line in self._sharers, f"owned line {line:#x} has no sharers"
            assert owner in self._sharers[line], (
                f"owner {owner} of line {line:#x} not in sharer set"
            )
        for line, s in self._sharers.items():
            assert s, f"line {line:#x} has an empty sharer set"
