"""Scalar coherence core: the event interface of the staged pipeline.

Phase 3 of the staged replay pipeline (census → private hierarchy →
coherence → timing).  The batched multiprocessor engine
(:mod:`repro.memsys.vectorized_mp`) replays each node's cache
hierarchy in bulk and emits a *compact* event stream — only the
references that must consult the directory protocol — which this
module services one event at a time through the unchanged
:class:`~repro.coherence.protocol.DirectoryProtocol`.

Three event codes cover every protocol interaction the scalar replay
loops perform:

* ``EV_MISS``  — an L2 miss; calls ``protocol.service_miss`` and
  yields a timing record charged through the interconnect model.
* ``EV_EVICT`` — an L2 victim; calls ``protocol.handle_eviction``
  (no timing: evictions are not charged in the scalar loops either).
* ``EV_WCHECK`` — a write hit whose line may need an ownership
  upgrade; calls ``protocol.ensure_owner`` when the directory's owner
  record disagrees with the requester.

Events are 4-tuples ``(code, pos, line, aux)``: ``pos`` is the
reference's position within its quantum (so the timing phase can
merge stalls back into program order for the out-of-order model),
``aux`` carries the reference flags for MISS/WCHECK and the victim's
dirty bit for EVICT.  Servicing appends *timing records*
``(pos, cycles, klass, dep, is_instr)`` to the caller's list; the
timing phase (:mod:`repro.cpu.timing`) charges them through the CPU
models.

The call order into the protocol is identical to ``System._run_fast``
by construction, so directory, RAC and interconnect state evolve
bit-for-bit the same — the exactness contract of the differential
harness rests on that.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.coherence.network import InterconnectModel
from repro.coherence.protocol import DirectoryProtocol
from repro.cpu.events import (
    STALL_LOCAL,
    STALL_REMOTE_CLEAN,
    STALL_REMOTE_DIRTY,
)
from repro.params import MissKind

#: Canonical MissKind -> stall-class map shared by every engine.
KIND_TO_STALL = {
    MissKind.LOCAL: STALL_LOCAL,
    MissKind.REMOTE_CLEAN: STALL_REMOTE_CLEAN,
    MissKind.REMOTE_DIRTY: STALL_REMOTE_DIRTY,
}

EV_MISS = 1
EV_EVICT = 2
EV_WCHECK = 3

Event = Tuple[int, int, int, int]
TimingRecord = Tuple[int, int, int, int, int]


class CoherenceCore:
    """Services a shared-line event stream against the directory.

    ``record_miss`` is rebound by the driver at the warmup boundary
    (the measurement window gets a fresh
    :class:`~repro.stats.breakdown.MissBreakdown`), mirroring the
    ``record_miss = self.misses.record`` rebind in ``_run_fast``.
    """

    __slots__ = ("protocol", "net", "record_miss", "_owner_get")

    def __init__(self, protocol: DirectoryProtocol, net: InterconnectModel,
                 record_miss: Callable[[MissKind, bool], None]):
        self.protocol = protocol
        self.net = net
        self.record_miss = record_miss
        self._owner_get = protocol.directory._owner.get

    def service_one(self, node: int, code: int, pos: int, line: int,
                    aux: int, timing: List[TimingRecord]) -> None:
        """Service one event for ``node``, appending timing records."""
        protocol = self.protocol
        if code == EV_MISS:
            outcome = protocol.service_miss(
                node, line, bool(aux & 1), bool(aux & 2)
            )
            timing.append((
                pos,
                self.net.service_latency(outcome),
                KIND_TO_STALL[outcome.kind],
                aux & 8,
                aux & 2,
            ))
            self.record_miss(outcome.kind, bool(aux & 2))
        elif code == EV_EVICT:
            protocol.handle_eviction(node, line, bool(aux))
        else:  # EV_WCHECK
            if self._owner_get(line) != node:
                outcome = protocol.ensure_owner(node, line)
                if outcome is not None:
                    timing.append((
                        pos,
                        self.net.service_latency(outcome),
                        KIND_TO_STALL[outcome.kind],
                        aux & 8,
                        0,
                    ))

    def service(self, node: int, events: List[Event],
                timing: List[TimingRecord]) -> None:
        """Service a quantum's event stream in emission order."""
        for code, pos, line, aux in events:
            self.service_one(node, code, pos, line, aux, timing)
