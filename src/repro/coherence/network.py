"""Interconnect latency model.

The paper folds router, link, and controller-crossing delays into the
per-class latencies of Figure 3, and we do the same: this module maps
a protocol :class:`~repro.coherence.protocol.ServiceOutcome` to the
cycles the requesting processor stalls, given the active integration
level's latency table.  It also keeps message counters so experiments
can report traffic (e.g. the paper's invalidation-rate observation in
Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coherence.protocol import ServiceOutcome
from repro.params import (
    RAC_HIT_LATENCY,
    RAC_REMOTE_DIRTY_LATENCY,
    LatencyTable,
    MissKind,
)


@dataclass
class MessageCounters:
    """Coarse interconnect traffic counters (requests, not flits)."""

    requests_2hop: int = 0
    requests_3hop: int = 0
    invalidations: int = 0
    local_requests: int = 0

    def reset(self) -> None:
        """Zero all counters (warmup/measurement boundary)."""
        self.requests_2hop = 0
        self.requests_3hop = 0
        self.invalidations = 0
        self.local_requests = 0

    def as_dict(self) -> dict:
        return {
            "local": self.local_requests,
            "2hop": self.requests_2hop,
            "3hop": self.requests_3hop,
            "invalidations": self.invalidations,
        }


@dataclass
class InterconnectModel:
    """Latency assignment for serviced misses under one configuration."""

    table: LatencyTable
    counters: MessageCounters = field(default_factory=MessageCounters)

    def service_latency(self, outcome: ServiceOutcome) -> int:
        """Stall cycles the requester pays for this serviced miss."""
        self.counters.invalidations += outcome.invalidations
        kind = outcome.kind
        if kind is MissKind.LOCAL:
            self.counters.local_requests += 1
            if outcome.via_rac:
                # RAC hits respond at local-memory speed by construction
                # (the RAC data lives in local memory; Section 6).
                return RAC_HIT_LATENCY
            return self.table.local
        if kind is MissKind.REMOTE_CLEAN:
            self.counters.requests_2hop += 1
            if outcome.upgrade:
                return self.table.remote_upgrade
            return self.table.remote_clean
        self.counters.requests_3hop += 1
        if outcome.from_remote_rac:
            # Dirty data served out of a remote node's RAC is slower
            # than out of its L2 (250 vs 200 ns; Section 6).
            extra = RAC_REMOTE_DIRTY_LATENCY - 200
            return self.table.remote_dirty + extra
        return self.table.remote_dirty
