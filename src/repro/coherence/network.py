"""Interconnect latency model.

The paper folds router, link, and controller-crossing delays into the
per-class latencies of Figure 3, and we do the same: this module maps
a protocol :class:`~repro.coherence.protocol.ServiceOutcome` to the
cycles the requesting processor stalls, given the active integration
level's latency table.  It also keeps message counters so experiments
can report traffic (e.g. the paper's invalidation-rate observation in
Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coherence.protocol import ServiceOutcome
from repro.params import (
    RAC_HIT_LATENCY,
    RAC_REMOTE_DIRTY_LATENCY,
    LatencyTable,
    MissKind,
)
from repro.scenario.topology import UNIFORM, TopologySpec


@dataclass
class MessageCounters:
    """Coarse interconnect traffic counters (requests, not flits)."""

    requests_2hop: int = 0
    requests_3hop: int = 0
    invalidations: int = 0
    local_requests: int = 0

    def reset(self) -> None:
        """Zero all counters (warmup/measurement boundary)."""
        self.requests_2hop = 0
        self.requests_3hop = 0
        self.invalidations = 0
        self.local_requests = 0

    def as_dict(self) -> dict:
        return {
            "local": self.local_requests,
            "2hop": self.requests_2hop,
            "3hop": self.requests_3hop,
            "invalidations": self.invalidations,
        }


@dataclass
class InterconnectModel:
    """Latency assignment for serviced misses under one configuration.

    The Figure-3 ``table`` carries the uniform-machine class
    latencies; a non-flat :class:`TopologySpec` layers per-hop extras
    on top using the node identities the protocol records on each
    :class:`ServiceOutcome`.  Under the flat (uniform) topology the
    extra terms are structurally zero and the arithmetic below is
    exactly the pre-topology model, so uniform results stay
    bit-identical.
    """

    table: LatencyTable
    topology: TopologySpec = UNIFORM
    counters: MessageCounters = field(default_factory=MessageCounters)

    def __post_init__(self):
        self._flat = self.topology.is_flat

    def service_latency(self, outcome: ServiceOutcome) -> int:
        """Stall cycles the requester pays for this serviced miss."""
        self.counters.invalidations += outcome.invalidations
        kind = outcome.kind
        if kind is MissKind.LOCAL:
            self.counters.local_requests += 1
            if outcome.via_rac:
                # RAC hits respond at local-memory speed by construction
                # (the RAC data lives in local memory; Section 6).
                return RAC_HIT_LATENCY
            return self.table.local
        if kind is MissKind.REMOTE_CLEAN:
            self.counters.requests_2hop += 1
            base = (self.table.remote_upgrade if outcome.upgrade
                    else self.table.remote_clean)
            if self._flat:
                return base
            # Request out, data (or acknowledgement) back.
            return base + 2 * self.topology.hop_extra(
                outcome.requester, outcome.home)
        self.counters.requests_3hop += 1
        base = self.table.remote_dirty
        if outcome.from_remote_rac:
            # Dirty data served out of a remote node's RAC is slower
            # than out of its L2 (250 vs 200 ns; Section 6).
            base += RAC_REMOTE_DIRTY_LATENCY - 200
        if self._flat:
            return base
        # 3-hop triangle: requester→home (request), home→owner
        # (intervention forward), owner→requester (data reply).
        topo = self.topology
        req, home, owner = outcome.requester, outcome.home, outcome.dirty_owner
        return (base + topo.hop_extra(req, home)
                + topo.hop_extra(home, owner)
                + topo.hop_extra(owner, req))
