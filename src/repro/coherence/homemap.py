"""Home-node assignment for physical pages.

The paper's ccNUMA machine distributes memory across the 8 nodes.  OLTP
data defies placement, so pages land round-robin and the chance of a
line being local is ~1-in-8 (Section 3).  Instruction pages can be
*replicated* by the OS at every node (Section 6), which makes every
instruction fetch local; we model replication as a per-line predicate
that overrides the home with the requesting node.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.params import LINE_SHIFT, PAGE_SIZE


class HomeMap:
    """Maps line numbers to home nodes, with optional code replication.

    Parameters
    ----------
    num_nodes:
        Number of memory nodes (1 for a uniprocessor).
    page_bytes:
        Granularity of home assignment.  Scaled runs shrink this along
        with the footprints so the round-robin distribution is kept.
    replicated:
        Optional predicate over line numbers; lines for which it returns
        True (instruction pages under OS replication) are homed at the
        requesting node.
    """

    __slots__ = ("num_nodes", "_page_lines_shift", "replicated")

    def __init__(
        self,
        num_nodes: int,
        page_bytes: int = PAGE_SIZE,
        replicated: Optional[Callable[[int], bool]] = None,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if page_bytes < (1 << LINE_SHIFT):
            raise ValueError("page must be at least one line")
        page_lines = page_bytes >> LINE_SHIFT
        if page_lines & (page_lines - 1):
            raise ValueError("page_bytes must hold a power-of-two line count")
        self.num_nodes = num_nodes
        self._page_lines_shift = page_lines.bit_length() - 1
        self.replicated = replicated

    def home_of(self, line: int, requester: int = 0) -> int:
        """Home node of ``line`` as seen from ``requester``."""
        if self.replicated is not None and self.replicated(line):
            return requester
        return (line >> self._page_lines_shift) % self.num_nodes

    def is_local(self, line: int, node: int) -> bool:
        """True when ``line``'s home (for ``node``) is ``node`` itself."""
        return self.home_of(line, node) == node
