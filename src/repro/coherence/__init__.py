"""Coherence substrate: home map, directory, protocol, interconnect."""

from repro.coherence.directory import DirectoryState
from repro.coherence.homemap import HomeMap
from repro.coherence.network import InterconnectModel, MessageCounters
from repro.coherence.protocol import DirectoryProtocol, ServiceOutcome

__all__ = [
    "DirectoryState",
    "HomeMap",
    "InterconnectModel",
    "MessageCounters",
    "DirectoryProtocol",
    "ServiceOutcome",
]
