"""Vectorized uniprocessor replay kernel.

The scalar loops in :mod:`repro.core.system` walk every packed
reference through the L1/L2 hierarchy one at a time; for the
coherence-free uniprocessor configurations that dominate Figures 5, 7,
10 and 13 this is pure Python overhead.  This module replays the same
trace with numpy doing the heavy lifting and produces statistics that
are **bit-identical** to ``System._run_fast`` — the contract the
differential harness (``tests/core/test_differential.py``) enforces —
so cached campaign results stay valid across engines.

The kernel rests on two exact structural facts:

* **Direct-mapped L2 schedule.**  With inclusion, a reference to a
  line absent from the L2 is necessarily an L1 miss, so a
  direct-mapped L2's content after *any* reference is simply the last
  line referenced in that L2 set.  Consequently the exact L2 miss
  positions, victim lines, writeback flags and final L2 state are all
  computable with array operations alone (a stable sort by L2 set plus
  segmented reductions), independent of L1 state.  Only the 2-way L1s
  are then replayed, by a lean flat-array walk that consumes the
  precomputed purge schedule.

* **MRU-run compression.**  A reference whose predecessor in its
  (stream, L1 set) group touches the same line is an MRU hit that
  changes no state — unless an inclusion purge removed the line in the
  gap.  Dropping those references shrinks the replayed stream by
  ~20 %.  Every purge is checked (vectorized) against the dropped
  positions; any conflict falls back to the uncompressed walk, so the
  optimization is exact by construction.

Associative L2s split on a cheap occupancy test: if no L2 set is ever
asked to hold more distinct lines than it has ways, the L2 can never
evict — every L2 miss is exactly a first touch, no purge can reach the
L1s, and the L2 needs no replay at all (misses, dirty bits and final
state all come from array reductions; only the flat L1 walk runs, on
the compressed stream).  Otherwise the L2 is replayed scalar, jointly
with the L1s (list-based, mirroring ``_run_fast`` operation for
operation).  Out-of-order CPUs are handled by recording the
(position, l2-hit) event list during the walk and replaying the exact
``busy``/``stall`` call sequence against the CPU model afterwards.

Multiprocessor traces are out of scope here: the staged coherence
pipeline in :mod:`repro.memsys.vectorized_mp` (the ``vectorized-mp``
engine) extends the same flat-state, exact-by-construction approach
to directory-coherent machines, and reuses this module's
``_materialize_l1`` and fallback exception.
"""

from __future__ import annotations

import weakref
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.params import INSTRS_PER_ILINE, LINE_SIZE

__all__ = ["VectorizedUnsupported", "replay_uniprocessor"]


class VectorizedUnsupported(Exception):
    """Raised when a trace/machine falls outside the kernel's contract.

    ``System._run_vectorized`` catches this and falls back to the
    scalar fast loop, so callers never observe it.  The only known
    trigger is a hand-built trace containing an instruction fetch with
    the write flag set (the OLTP generator never emits one).
    """


# ---------------------------------------------------------------------------
# Cached per-trace views
# ---------------------------------------------------------------------------

class _L1View:
    """Arrays derived from a trace for one L1 geometry (``l1_n`` sets)."""

    __slots__ = (
        "l1_n", "s1_w", "s1_m", "keep", "kept_idx", "warm_f",
        "drop_i_w", "drop_i_m", "drop_d_w", "drop_d_m",
        "_tv", "_s1", "_eff_c", "_f", "_v",
    )

    def __init__(self, tv: "_TraceView", l1_n: int):
        self.l1_n = l1_n
        self._tv = tv
        lines, flags, warm, n = tv.lines, tv.flags, tv.warm, tv.n
        s1 = lines % l1_n
        self._s1 = s1
        self.s1_w = s1[:warm].tolist()
        self.s1_m = s1[warm:].tolist()

        # MRU-run compression: group by (L1 set, stream); a reference
        # whose in-group predecessor has the same line is a state-free
        # MRU hit and can be dropped from the walk.
        stream = (flags >> 1) & 1
        key = s1 * 2 + stream
        order = np.argsort(key, kind="stable")
        ko = key[order]
        lo = lines[order]
        same = np.zeros(n, dtype=bool)
        same[1:] = (ko[1:] == ko[:-1]) & (lo[1:] == lo[:-1])
        keep_sorted = ~same
        keep = np.empty(n, dtype=bool)
        keep[order] = keep_sorted
        self.keep = keep

        # Each kept reference heading a run of data MRU hits carries
        # the OR of the run's write flags in bit 4, so a single walked
        # reference performs the run's aggregate L2 dirty marking.
        wo = flags[order] & 1
        starts = np.flatnonzero(keep_sorted)
        run_or = np.maximum.reduceat(wo, starts) if len(starts) else wo[:0]
        eff = tv.eff.copy()
        heads = order[starts]
        eff[heads] = flags[heads] | (run_or << 4)
        self._eff_c = eff

        kept_idx = np.flatnonzero(keep)
        self.kept_idx = kept_idx
        self.warm_f = int(np.searchsorted(kept_idx, warm))

        # Dropped references are all hits; credit them per phase/stream.
        drop = ~keep
        is_i = stream.astype(bool)
        self.drop_i_w = int(np.count_nonzero(drop[:warm] & is_i[:warm]))
        self.drop_i_m = int(np.count_nonzero(drop[warm:] & is_i[warm:]))
        self.drop_d_w = int(np.count_nonzero(drop[:warm] & ~is_i[:warm]))
        self.drop_d_m = int(np.count_nonzero(drop[warm:] & ~is_i[warm:]))

        self._f: Optional[tuple] = None
        self._v: Optional[tuple] = None

    def fl(self):
        """Compressed per-phase (lines, eff, s1, pos) lists, lazily.

        Only walks that actually run compressed pay for the list
        conversions; the paper's scaled-down traces typically do not.
        """
        if self._f is None:
            tv = self._tv
            kept_idx = self.kept_idx
            wf = self.warm_f
            fl = tv.lines[kept_idx]
            fe = self._eff_c[kept_idx]
            fs = self._s1[kept_idx]
            self._f = (
                fl[:wf].tolist(), fl[wf:].tolist(),
                fe[:wf].tolist(), fe[wf:].tolist(),
                fs[:wf].tolist(), fs[wf:].tolist(),
                kept_idx[:wf].tolist(), kept_idx[wf:].tolist(),
            )
        return self._f

    def violates(self, vics: np.ndarray, poss: np.ndarray) -> bool:
        """True if any purge invalidates the MRU-run compression."""
        if len(vics) == 0:
            return False
        if self._v is None:
            # Purge-violation lookup: per stream, references sorted by
            # (dense line id, position) with their keep flags.  A purge
            # of line v at position k is only compatible with
            # compression if the next reference to v in each stream is
            # kept.
            tv = self._tv
            lines, n = tv.lines, tv.n
            stream = (tv.flags >> 1) & 1
            uniq = np.unique(lines)
            dense = np.searchsorted(uniq, lines)
            mul = np.int64(1) << np.int64(max(n, 1).bit_length() + 1)
            vkeys, vkept = [], []
            pos = np.arange(n, dtype=np.int64)
            for sel in (np.flatnonzero(stream == 1),
                        np.flatnonzero(stream == 0)):
                skey = dense[sel] * mul + pos[sel]
                o2 = np.argsort(skey, kind="stable")
                vkeys.append(skey[o2])
                vkept.append(self.keep[sel][o2])
            self._v = (uniq, mul, vkeys, vkept)
        uniq, mul, vkeys, vkept = self._v
        dv = np.searchsorted(uniq, vics)
        q = dv * mul + poss + 1
        for skey, skept in zip(vkeys, vkept):
            if not len(skey):
                continue
            i = np.searchsorted(skey, q)
            ii = np.minimum(i, len(skey) - 1)
            inline = (i < len(skey)) & (skey[ii] // mul == dv)
            if np.any(inline & ~skept[ii]):
                return True
        return False


class _DmSchedule:
    """Exact L2 activity for one direct-mapped L2 geometry."""

    __slots__ = (
        "l2_n", "vic", "pos_ev", "vic_line", "wb_m", "l2m_i", "l2m_m",
        "final_set", "final_lines", "final_dirty", "final_fillw",
        "_vic_lists",
    )

    def __init__(self, tv: "_TraceView", l2_n: int):
        self.l2_n = l2_n
        lines, flags, warm, n = tv.lines, tv.flags, tv.warm, tv.n
        s2 = lines % l2_n
        order = np.argsort(s2, kind="stable")
        so_l = lines[order]
        so_s = s2[order]
        newg = np.zeros(n, dtype=bool)
        newg[0] = True
        newg[1:] = so_s[1:] != so_s[:-1]
        chg = newg.copy()
        chg[1:] |= so_l[1:] != so_l[:-1]
        starts = np.flatnonzero(chg)
        so_w = flags[order] & 1
        span_dirty = np.maximum.reduceat(so_w, starts)
        span_fillw = so_w[starts]
        span_idx = np.cumsum(chg) - 1

        ev_so = np.flatnonzero(chg & ~newg)
        self.vic_line = so_l[ev_so - 1]
        self.pos_ev = order[ev_so]
        vic_dirty = span_dirty[span_idx[ev_so] - 1] != 0

        pos_change = order[starts]
        vic = np.full(n, -1, dtype=np.int64)
        vic[pos_change] = -2
        vic[self.pos_ev] = self.vic_line
        self.vic = vic

        self.wb_m = int(np.count_nonzero(vic_dirty & (self.pos_ev >= warm)))
        mi = pos_change >= warm
        is_i = (flags[pos_change] & 2) != 0
        self.l2m_i = int(np.count_nonzero(mi & is_i))
        self.l2m_m = int(np.count_nonzero(mi & ~is_i))

        gends = np.append(np.flatnonzero(newg)[1:] - 1, n - 1)
        self.final_set = so_s[gends].tolist()
        self.final_lines = so_l[gends].tolist()
        self.final_dirty = (span_dirty[span_idx[gends]] != 0).tolist()
        self.final_fillw = (span_fillw[span_idx[gends]] != 0).tolist()
        self._vic_lists: Dict[object, tuple] = {}

    def vic_lists(self, tv: "_TraceView", lv: Optional[_L1View]):
        """Per-phase victim lists, compressed to ``lv`` if given."""
        key = None if lv is None else lv.l1_n
        cached = self._vic_lists.get(key)
        if cached is None:
            if lv is None:
                vw = self.vic[:tv.warm]
                vm = self.vic[tv.warm:]
            else:
                vf = self.vic[lv.kept_idx]
                vw = vf[:lv.warm_f]
                vm = vf[lv.warm_f:]
            cached = (vw.tolist(), vm.tolist())
            self._vic_lists[key] = cached
        return cached


class _TraceView:
    """Numpy projection of an :class:`OltpTrace`, cached per trace."""

    __slots__ = (
        "n", "warm", "lines", "flags", "eff",
        "i_refs_m", "d_refs_m", "writes_m", "kinstr_m",
        "_lists", "_l1views", "_dm", "_ooo", "_ft", "_setmax", "_noev",
        "_hyb",
    )

    def __init__(self, trace):
        chunks = [np.frombuffer(q.refs, dtype=np.int64) for q in trace.quanta]
        refs = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
        self.n = len(refs)
        self.warm = sum(len(q.refs) for q in trace.quanta[:trace.warmup_quanta])
        self.lines = refs >> 4
        self.flags = refs & 15
        if np.any((self.flags & 3) == 3):
            raise VectorizedUnsupported(
                "trace contains an instruction fetch with the write flag set"
            )
        # Uncompressed walks read the own-write flag from bit 4 too, so
        # one walk implementation serves both modes.
        self.eff = self.flags | ((self.flags & 1) << 4)

        mf = self.flags[self.warm:]
        is_i = (mf & 2) != 0
        self.i_refs_m = int(np.count_nonzero(is_i))
        self.d_refs_m = int(len(mf) - self.i_refs_m)
        self.writes_m = int(np.count_nonzero(~is_i & ((mf & 1) != 0)))
        self.kinstr_m = int(np.count_nonzero(is_i & ((mf & 4) != 0)))

        self._lists: Optional[tuple] = None
        self._l1views: Dict[int, _L1View] = {}
        self._dm: Dict[int, _DmSchedule] = {}
        self._ooo: Optional[tuple] = None
        self._ft: Optional[tuple] = None
        self._setmax: Dict[int, int] = {}
        self._noev: Dict[int, tuple] = {}
        self._hyb: Dict[Tuple[int, int], tuple] = {}

    def lists(self):
        """Uncompressed per-phase (lines, eff, positions) python lists."""
        if self._lists is None:
            w, n = self.warm, self.n
            self._lists = (
                self.lines[:w].tolist(), self.lines[w:].tolist(),
                self.eff[:w].tolist(), self.eff[w:].tolist(),
                list(range(w)), list(range(w, n)),
            )
        return self._lists

    def l1view(self, l1_n: int) -> _L1View:
        view = self._l1views.get(l1_n)
        if view is None:
            view = self._l1views[l1_n] = _L1View(self, l1_n)
        return view

    def dm(self, l2_n: int) -> _DmSchedule:
        sched = self._dm.get(l2_n)
        if sched is None:
            sched = self._dm[l2_n] = _DmSchedule(self, l2_n)
        return sched

    def first_touch(self):
        """No-eviction L2 model, valid whenever no set can overflow.

        Returns ``(uniq, vic, l2m_i, l2m_d, dirty_u, fillw_u)`` where
        ``vic`` holds -2 at each line's first reference (an L2 miss
        with no victim) and -1 elsewhere, ``l2m_*`` count measured-phase
        first touches per stream, and ``dirty_u``/``fillw_u`` give each
        unique line's any-write and fill-was-write flags.  None of it
        depends on the L2 geometry, so every no-eviction configuration
        shares this one computation.
        """
        if self._ft is None:
            uniq, first_idx = np.unique(self.lines, return_index=True)
            vic = np.full(self.n, -1, dtype=np.int64)
            vic[first_idx] = -2
            mi = first_idx >= self.warm
            is_i = (self.flags[first_idx] & 2) != 0
            l2m_i = int(np.count_nonzero(mi & is_i))
            l2m_d = int(np.count_nonzero(mi & ~is_i))
            dense = np.searchsorted(uniq, self.lines)
            wsel = dense[(self.flags & 1) != 0]
            dirty_u = np.bincount(wsel, minlength=len(uniq)) > 0
            fillw_u = (self.flags[first_idx] & 1) != 0
            self._ft = (uniq, vic, l2m_i, l2m_d, dirty_u, fillw_u)
        return self._ft

    def max_set_occupancy(self, l2_n: int) -> int:
        """Most distinct lines any single L2 set is ever asked to hold."""
        out = self._setmax.get(l2_n)
        if out is None:
            uniq = self.first_touch()[0]
            counts = np.bincount(uniq % l2_n)
            out = self._setmax[l2_n] = int(counts.max(initial=0))
        return out

    def hybrid_vic_lists(self, l2_n: int, l2_assoc: int):
        """Per-phase schedules for the hybrid associative walk.

        Each reference carries -1 (L2 hit in a set that can never
        overflow), -2 (first touch: an L2 miss with no victim) or -3
        (the set may overflow, so the walk must consult the scalar L2).
        Also returns the overflow set ids and the per-unique-line
        overflow mask used to assemble the final L2 state.
        """
        key = (l2_n, l2_assoc)
        cached = self._hyb.get(key)
        if cached is None:
            uniq, vic_ft = self.first_touch()[:2]
            setcnt = np.bincount(uniq % l2_n, minlength=l2_n)
            ovf = setcnt > l2_assoc
            ovf_u = ovf[uniq % l2_n]
            if ovf_u.all():
                # Every line lives in an overflow-capable set (typical
                # for the paper's scaled-down caches): the schedule
                # would be uniformly -3, so skip building it and let
                # the caller run the pure scalar walk.
                cached = (None, None, np.flatnonzero(ovf), ovf_u)
            else:
                vic = np.where(ovf[self.lines % l2_n], -3, vic_ft)
                if np.count_nonzero(vic == -3) >= 0.95 * len(vic):
                    # Nearly every reference would consult the scalar
                    # L2 anyway; the per-reference schedule costs more
                    # than the few known outcomes save.  Fall back to
                    # the pure scalar walk — every touched set then
                    # materializes from the scalar L2 state, so report
                    # them all as overflow sets.
                    cached = (
                        None, None, np.flatnonzero(setcnt > 0),
                        np.ones_like(ovf_u),
                    )
                else:
                    cached = (
                        vic[:self.warm].tolist(), vic[self.warm:].tolist(),
                        np.flatnonzero(ovf), ovf_u,
                    )
            self._hyb[key] = cached
        return cached

    def noev_vic_lists(self, lv: _L1View):
        """Per-phase first-touch schedules compressed to ``lv``."""
        cached = self._noev.get(lv.l1_n)
        if cached is None:
            vic = self.first_touch()[1]
            vf = vic[lv.kept_idx]
            cached = self._noev[lv.l1_n] = (
                vf[:lv.warm_f].tolist(), vf[lv.warm_f:].tolist()
            )
        return cached

    def ooo_events(self):
        """Per-phase instruction positions/kernel flags + full flag list."""
        if self._ooo is None:
            ipos = np.flatnonzero((self.flags & 2) != 0)
            ik = (self.flags[ipos] & 4).tolist()
            split = int(np.searchsorted(ipos, self.warm))
            ipos_l = ipos.tolist()
            self._ooo = (
                ipos_l[:split], ik[:split], ipos_l[split:], ik[split:],
                self.flags.tolist(),
            )
        return self._ooo


#: Most-recently-used trace views; identity-keyed with a weakref guard
#: so a recycled id never serves stale arrays.
_VIEW_CACHE: List[Tuple[int, "weakref.ref", _TraceView]] = []
_VIEW_CACHE_SIZE = 2


def _view_for(trace) -> _TraceView:
    for i, (tid, ref, view) in enumerate(_VIEW_CACHE):
        if tid == id(trace) and ref() is trace:
            if i:
                _VIEW_CACHE.insert(0, _VIEW_CACHE.pop(i))
            return view
    view = _TraceView(trace)
    try:
        ref = weakref.ref(trace)
    except TypeError:  # pragma: no cover - OltpTrace is weakref-able
        return view
    _VIEW_CACHE.insert(0, (id(trace), ref, view))
    del _VIEW_CACHE[_VIEW_CACHE_SIZE:]
    return view


# ---------------------------------------------------------------------------
# L1 walks (flat two-way arrays; -1 marks an empty way)
# ---------------------------------------------------------------------------

def _walk_dm(lines, effs, s1s, vics, l1_n, ia, ib, da, db):
    """Replay one phase against the L1s with a precomputed L2 schedule.

    Returns ``(i_hits, d_hits)`` over the walked references.
    """
    i_hit = d_hit = 0
    for line, f, s, v in zip(lines, effs, s1s, vics):
        if f & 2:
            if ia[s] == line:
                i_hit += 1
                continue
            if ib[s] == line:
                ib[s] = ia[s]
                ia[s] = line
                i_hit += 1
                continue
            if v >= 0:
                vs = v % l1_n
                if ia[vs] == v:
                    ia[vs] = ib[vs]
                    ib[vs] = -1
                elif ib[vs] == v:
                    ib[vs] = -1
                if da[vs] == v:
                    da[vs] = db[vs]
                    db[vs] = -1
                elif db[vs] == v:
                    db[vs] = -1
            ib[s] = ia[s]
            ia[s] = line
        else:
            if da[s] == line:
                d_hit += 1
                continue
            if db[s] == line:
                db[s] = da[s]
                da[s] = line
                d_hit += 1
                continue
            if v >= 0:
                vs = v % l1_n
                if ia[vs] == v:
                    ia[vs] = ib[vs]
                    ib[vs] = -1
                elif ib[vs] == v:
                    ib[vs] = -1
                if da[vs] == v:
                    da[vs] = db[vs]
                    db[vs] = -1
                elif db[vs] == v:
                    db[vs] = -1
            db[s] = da[s]
            da[s] = line
    return i_hit, d_hit


def _walk_dm_rec(lines, effs, s1s, vics, poss, l1_n, ia, ib, da, db, mrec):
    """Like :func:`_walk_dm` but records (position, l2_hit) per L1 miss."""
    i_hit = d_hit = 0
    append = mrec.append
    k = 0
    for line, f, s, v in zip(lines, effs, s1s, vics):
        if f & 2:
            if ia[s] == line:
                i_hit += 1
                k += 1
                continue
            if ib[s] == line:
                ib[s] = ia[s]
                ia[s] = line
                i_hit += 1
                k += 1
                continue
            if v >= 0:
                vs = v % l1_n
                if ia[vs] == v:
                    ia[vs] = ib[vs]
                    ib[vs] = -1
                elif ib[vs] == v:
                    ib[vs] = -1
                if da[vs] == v:
                    da[vs] = db[vs]
                    db[vs] = -1
                elif db[vs] == v:
                    db[vs] = -1
            append((poss[k], v == -1))
            ib[s] = ia[s]
            ia[s] = line
        else:
            if da[s] == line:
                d_hit += 1
                k += 1
                continue
            if db[s] == line:
                db[s] = da[s]
                da[s] = line
                d_hit += 1
                k += 1
                continue
            if v >= 0:
                vs = v % l1_n
                if ia[vs] == v:
                    ia[vs] = ib[vs]
                    ib[vs] = -1
                elif ib[vs] == v:
                    ib[vs] = -1
                if da[vs] == v:
                    da[vs] = db[vs]
                    db[vs] = -1
                elif db[vs] == v:
                    db[vs] = -1
            append((poss[k], v == -1))
            db[s] = da[s]
            da[s] = line
        k += 1
    return i_hit, d_hit


def _walk_scalar4(lines, effs, s1s, l1_n, l2_n,
                  ia, ib, da, db, sets2, dirty2, fw):
    """``_walk_scalar`` specialized for the 4-way L2, in-order CPUs.

    Four-way off-chip L2s dominate the paper's uniprocessor sweeps
    (five of Figure 5's nine geometries), so the generic per-set
    list's ``remove``/``insert``/``pop`` method calls are worth
    eliminating: the four ways unroll into flat slot lists (MRU first,
    -1 = empty) exactly like the two L1 ways, making every LRU move a
    few C-level index assignments.  State enters and leaves through
    ``sets2``/``dirty2`` so callers see the same list-of-lists
    representation the generic walk uses, and the walk stays resumable
    across the warmup/measured phases.
    """
    wa = [-1] * l2_n
    wb_ = [-1] * l2_n
    wc = [-1] * l2_n
    wd = [-1] * l2_n
    dirty = set()
    for i2, ways in enumerate(sets2):
        for way, slots in zip(ways, (wa, wb_, wc, wd)):
            slots[i2] = way
        dirty.update(dirty2[i2])
    i_hit = d_hit = l2m_i = l2m_d = wb = 0
    for line, f, s in zip(lines, effs, s1s):
        if f & 2:
            if ia[s] == line:
                i_hit += 1
                continue
            if ib[s] == line:
                ib[s] = ia[s]
                ia[s] = line
                i_hit += 1
                continue
            i2 = line % l2_n
            if wa[i2] != line:
                if wb_[i2] == line:
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                elif wc[i2] == line:
                    wc[i2] = wb_[i2]
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                elif wd[i2] == line:
                    wd[i2] = wc[i2]
                    wc[i2] = wb_[i2]
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                else:
                    victim = wd[i2]
                    wd[i2] = wc[i2]
                    wc[i2] = wb_[i2]
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                    if victim != -1:
                        if victim in dirty:
                            dirty.remove(victim)
                            wb += 1
                        vs = victim % l1_n
                        if ia[vs] == victim:
                            ia[vs] = ib[vs]
                            ib[vs] = -1
                        elif ib[vs] == victim:
                            ib[vs] = -1
                        if da[vs] == victim:
                            da[vs] = db[vs]
                            db[vs] = -1
                        elif db[vs] == victim:
                            db[vs] = -1
                        fw.pop(victim, None)
                    fw[line] = False
                    l2m_i += 1
            ib[s] = ia[s]
            ia[s] = line
        else:
            if da[s] == line:
                d_hit += 1
                if f & 16:
                    dirty.add(line)
                continue
            if db[s] == line:
                db[s] = da[s]
                da[s] = line
                d_hit += 1
                if f & 16:
                    dirty.add(line)
                continue
            i2 = line % l2_n
            if wa[i2] != line:
                if wb_[i2] == line:
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                elif wc[i2] == line:
                    wc[i2] = wb_[i2]
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                elif wd[i2] == line:
                    wd[i2] = wc[i2]
                    wc[i2] = wb_[i2]
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                else:
                    victim = wd[i2]
                    wd[i2] = wc[i2]
                    wc[i2] = wb_[i2]
                    wb_[i2] = wa[i2]
                    wa[i2] = line
                    if victim != -1:
                        if victim in dirty:
                            dirty.remove(victim)
                            wb += 1
                        vs = victim % l1_n
                        if ia[vs] == victim:
                            ia[vs] = ib[vs]
                            ib[vs] = -1
                        elif ib[vs] == victim:
                            ib[vs] = -1
                        if da[vs] == victim:
                            da[vs] = db[vs]
                            db[vs] = -1
                        elif db[vs] == victim:
                            db[vs] = -1
                        fw.pop(victim, None)
                    fw[line] = bool(f & 1)
                    l2m_d += 1
            if f & 16:
                dirty.add(line)
            db[s] = da[s]
            da[s] = line
    for i2 in range(l2_n):
        sets2[i2][:] = [
            way for way in (wa[i2], wb_[i2], wc[i2], wd[i2]) if way != -1
        ]
        dirty2[i2] = {ln for ln in sets2[i2] if ln in dirty}
    return i_hit, d_hit, l2m_i, l2m_d, wb


def _walk_scalar(lines, effs, s1s, poss, l1_n, l2_n, l2_assoc,
                 ia, ib, da, db, sets2, dirty2, fw, mrec):
    """Joint L1 + associative-L2 walk with no precomputed schedule.

    Used when every line maps to an overflow-capable L2 set, so the
    hybrid schedule would mark every reference -3 anyway; dropping the
    per-reference schedule (and, in-order, the position bookkeeping)
    keeps the loop lean.  Mirrors ``_run_fast`` operation for
    operation.  Returns ``(i_hits, d_hits, l2m_i, l2m_d, writebacks)``.
    """
    i_hit = d_hit = l2m_i = l2m_d = wb = 0
    if mrec is None:
        if l2_assoc == 4:
            return _walk_scalar4(lines, effs, s1s, l1_n, l2_n,
                                 ia, ib, da, db, sets2, dirty2, fw)
        for line, f, s in zip(lines, effs, s1s):
            if f & 2:
                if ia[s] == line:
                    i_hit += 1
                    continue
                if ib[s] == line:
                    ib[s] = ia[s]
                    ia[s] = line
                    i_hit += 1
                    continue
                i2 = line % l2_n
                ways2 = sets2[i2]
                if line in ways2:
                    if ways2[0] != line:
                        ways2.remove(line)
                        ways2.insert(0, line)
                else:
                    if len(ways2) >= l2_assoc:
                        victim = ways2.pop()
                        ds = dirty2[i2]
                        if victim in ds:
                            ds.remove(victim)
                            wb += 1
                        vs = victim % l1_n
                        if ia[vs] == victim:
                            ia[vs] = ib[vs]
                            ib[vs] = -1
                        elif ib[vs] == victim:
                            ib[vs] = -1
                        if da[vs] == victim:
                            da[vs] = db[vs]
                            db[vs] = -1
                        elif db[vs] == victim:
                            db[vs] = -1
                        fw.pop(victim, None)
                    ways2.insert(0, line)
                    fw[line] = False
                    l2m_i += 1
                ib[s] = ia[s]
                ia[s] = line
            else:
                if da[s] == line:
                    d_hit += 1
                    if f & 16:
                        dirty2[line % l2_n].add(line)
                    continue
                if db[s] == line:
                    db[s] = da[s]
                    da[s] = line
                    d_hit += 1
                    if f & 16:
                        dirty2[line % l2_n].add(line)
                    continue
                i2 = line % l2_n
                ways2 = sets2[i2]
                if line in ways2:
                    if ways2[0] != line:
                        ways2.remove(line)
                        ways2.insert(0, line)
                    if f & 16:
                        dirty2[i2].add(line)
                else:
                    if len(ways2) >= l2_assoc:
                        victim = ways2.pop()
                        ds = dirty2[i2]
                        if victim in ds:
                            ds.remove(victim)
                            wb += 1
                        vs = victim % l1_n
                        if ia[vs] == victim:
                            ia[vs] = ib[vs]
                            ib[vs] = -1
                        elif ib[vs] == victim:
                            ib[vs] = -1
                        if da[vs] == victim:
                            da[vs] = db[vs]
                            db[vs] = -1
                        elif db[vs] == victim:
                            db[vs] = -1
                        fw.pop(victim, None)
                    ways2.insert(0, line)
                    if f & 16:
                        dirty2[i2].add(line)
                    fw[line] = bool(f & 1)
                    l2m_d += 1
                db[s] = da[s]
                da[s] = line
        return i_hit, d_hit, l2m_i, l2m_d, wb

    append = mrec.append
    k = 0
    for line, f, s in zip(lines, effs, s1s):
        if f & 2:
            if ia[s] == line:
                i_hit += 1
                k += 1
                continue
            if ib[s] == line:
                ib[s] = ia[s]
                ia[s] = line
                i_hit += 1
                k += 1
                continue
            i2 = line % l2_n
            ways2 = sets2[i2]
            if line in ways2:
                if ways2[0] != line:
                    ways2.remove(line)
                    ways2.insert(0, line)
                append((poss[k], True))
            else:
                if len(ways2) >= l2_assoc:
                    victim = ways2.pop()
                    ds = dirty2[i2]
                    if victim in ds:
                        ds.remove(victim)
                        wb += 1
                    vs = victim % l1_n
                    if ia[vs] == victim:
                        ia[vs] = ib[vs]
                        ib[vs] = -1
                    elif ib[vs] == victim:
                        ib[vs] = -1
                    if da[vs] == victim:
                        da[vs] = db[vs]
                        db[vs] = -1
                    elif db[vs] == victim:
                        db[vs] = -1
                    fw.pop(victim, None)
                ways2.insert(0, line)
                fw[line] = False
                l2m_i += 1
                append((poss[k], False))
            ib[s] = ia[s]
            ia[s] = line
        else:
            if da[s] == line:
                d_hit += 1
                if f & 16:
                    dirty2[line % l2_n].add(line)
                k += 1
                continue
            if db[s] == line:
                db[s] = da[s]
                da[s] = line
                d_hit += 1
                if f & 16:
                    dirty2[line % l2_n].add(line)
                k += 1
                continue
            i2 = line % l2_n
            ways2 = sets2[i2]
            if line in ways2:
                if ways2[0] != line:
                    ways2.remove(line)
                    ways2.insert(0, line)
                if f & 16:
                    dirty2[i2].add(line)
                append((poss[k], True))
            else:
                if len(ways2) >= l2_assoc:
                    victim = ways2.pop()
                    ds = dirty2[i2]
                    if victim in ds:
                        ds.remove(victim)
                        wb += 1
                    vs = victim % l1_n
                    if ia[vs] == victim:
                        ia[vs] = ib[vs]
                        ib[vs] = -1
                    elif ib[vs] == victim:
                        ib[vs] = -1
                    if da[vs] == victim:
                        da[vs] = db[vs]
                        db[vs] = -1
                    elif db[vs] == victim:
                        db[vs] = -1
                    fw.pop(victim, None)
                ways2.insert(0, line)
                if f & 16:
                    dirty2[i2].add(line)
                fw[line] = bool(f & 1)
                l2m_d += 1
                append((poss[k], False))
            db[s] = da[s]
            da[s] = line
        k += 1
    return i_hit, d_hit, l2m_i, l2m_d, wb


def _walk_assoc4(lines, effs, s1s, vics, l1_n, l2_n,
                 ia, ib, da, db, sets2, dirty2, fw):
    """``_walk_assoc`` specialized for the 4-way L2, in-order CPUs.

    Same flat-slot unrolling as :func:`_walk_scalar4` (the overflow
    sets' four ways become index assignments instead of list method
    calls), applied only to the -3 references; -1/-2 references keep
    their precomputed outcome.  State round-trips through ``sets2`` /
    ``dirty2`` as in the generic walk.
    """
    wa = [-1] * l2_n
    wb_ = [-1] * l2_n
    wc = [-1] * l2_n
    wd = [-1] * l2_n
    dirty = set()
    for i2, ways in enumerate(sets2):
        for way, slots in zip(ways, (wa, wb_, wc, wd)):
            slots[i2] = way
        dirty.update(dirty2[i2])
    i_hit = d_hit = l2m_i = l2m_d = wb = 0
    for line, f, s, v in zip(lines, effs, s1s, vics):
        if f & 2:
            if ia[s] == line:
                i_hit += 1
                continue
            if ib[s] == line:
                ib[s] = ia[s]
                ia[s] = line
                i_hit += 1
                continue
            if v == -3:
                i2 = line % l2_n
                if wa[i2] != line:
                    if wb_[i2] == line:
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                    elif wc[i2] == line:
                        wc[i2] = wb_[i2]
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                    elif wd[i2] == line:
                        wd[i2] = wc[i2]
                        wc[i2] = wb_[i2]
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                    else:
                        victim = wd[i2]
                        wd[i2] = wc[i2]
                        wc[i2] = wb_[i2]
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                        if victim != -1:
                            if victim in dirty:
                                dirty.remove(victim)
                                wb += 1
                            vs = victim % l1_n
                            if ia[vs] == victim:
                                ia[vs] = ib[vs]
                                ib[vs] = -1
                            elif ib[vs] == victim:
                                ib[vs] = -1
                            if da[vs] == victim:
                                da[vs] = db[vs]
                                db[vs] = -1
                            elif db[vs] == victim:
                                db[vs] = -1
                            fw.pop(victim, None)
                        fw[line] = False
                        l2m_i += 1
            elif v == -2:
                l2m_i += 1
            ib[s] = ia[s]
            ia[s] = line
        else:
            if da[s] == line:
                d_hit += 1
                if f & 16 and v == -3:
                    dirty.add(line)
                continue
            if db[s] == line:
                db[s] = da[s]
                da[s] = line
                d_hit += 1
                if f & 16 and v == -3:
                    dirty.add(line)
                continue
            if v == -3:
                i2 = line % l2_n
                if wa[i2] != line:
                    if wb_[i2] == line:
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                    elif wc[i2] == line:
                        wc[i2] = wb_[i2]
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                    elif wd[i2] == line:
                        wd[i2] = wc[i2]
                        wc[i2] = wb_[i2]
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                    else:
                        victim = wd[i2]
                        wd[i2] = wc[i2]
                        wc[i2] = wb_[i2]
                        wb_[i2] = wa[i2]
                        wa[i2] = line
                        if victim != -1:
                            if victim in dirty:
                                dirty.remove(victim)
                                wb += 1
                            vs = victim % l1_n
                            if ia[vs] == victim:
                                ia[vs] = ib[vs]
                                ib[vs] = -1
                            elif ib[vs] == victim:
                                ib[vs] = -1
                            if da[vs] == victim:
                                da[vs] = db[vs]
                                db[vs] = -1
                            elif db[vs] == victim:
                                db[vs] = -1
                            fw.pop(victim, None)
                        fw[line] = bool(f & 1)
                        l2m_d += 1
                if f & 16:
                    dirty.add(line)
            elif v == -2:
                l2m_d += 1
            db[s] = da[s]
            da[s] = line
    for i2 in range(l2_n):
        sets2[i2][:] = [
            way for way in (wa[i2], wb_[i2], wc[i2], wd[i2]) if way != -1
        ]
        dirty2[i2] = {ln for ln in sets2[i2] if ln in dirty}
    return i_hit, d_hit, l2m_i, l2m_d, wb


def _walk_assoc(lines, effs, s1s, vics, poss, l1_n, l2_n, l2_assoc,
                ia, ib, da, db, sets2, dirty2, fw, mrec):
    """Hybrid L1 + associative-L2 walk, exact w.r.t. ``_run_fast``.

    ``vics`` (from :meth:`_TraceView.hybrid_vic_lists`) partitions the
    references: -3 means the line's L2 set may overflow, so the scalar
    L2 lists are consulted (mirroring ``_run_fast`` operation for
    operation, including inclusion purges); -1/-2 mean the set can
    never overflow, so the L2 outcome is already known (hit / first-
    touch miss) and its state needs no upkeep — the two set
    populations are disjoint, so skipping the probe is unobservable.
    ``mrec`` (out-of-order) collects (position, l2_hit) per L1 miss.
    Returns ``(i_hits, d_hits, l2_miss_i, l2_miss_d, writebacks)``.
    """
    if mrec is None and l2_assoc == 4:
        return _walk_assoc4(lines, effs, s1s, vics, l1_n, l2_n,
                            ia, ib, da, db, sets2, dirty2, fw)
    i_hit = d_hit = l2m_i = l2m_d = wb = 0
    k = 0
    for line, f, s, v in zip(lines, effs, s1s, vics):
        if f & 2:
            if ia[s] == line:
                i_hit += 1
                k += 1
                continue
            if ib[s] == line:
                ib[s] = ia[s]
                ia[s] = line
                i_hit += 1
                k += 1
                continue
            if v == -3:
                i2 = line % l2_n
                ways2 = sets2[i2]
                if line in ways2:
                    if ways2[0] != line:
                        ways2.remove(line)
                        ways2.insert(0, line)
                    if mrec is not None:
                        mrec.append((poss[k], True))
                else:
                    if len(ways2) >= l2_assoc:
                        victim = ways2.pop()
                        ds = dirty2[i2]
                        if victim in ds:
                            ds.remove(victim)
                            wb += 1
                        vs = victim % l1_n
                        if ia[vs] == victim:
                            ia[vs] = ib[vs]
                            ib[vs] = -1
                        elif ib[vs] == victim:
                            ib[vs] = -1
                        if da[vs] == victim:
                            da[vs] = db[vs]
                            db[vs] = -1
                        elif db[vs] == victim:
                            db[vs] = -1
                        fw.pop(victim, None)
                    ways2.insert(0, line)
                    fw[line] = False
                    l2m_i += 1
                    if mrec is not None:
                        mrec.append((poss[k], False))
            else:
                if v == -2:
                    l2m_i += 1
                if mrec is not None:
                    mrec.append((poss[k], v == -1))
            ib[s] = ia[s]
            ia[s] = line
        else:
            if da[s] == line:
                d_hit += 1
                if f & 16 and v == -3:
                    dirty2[line % l2_n].add(line)
                k += 1
                continue
            if db[s] == line:
                db[s] = da[s]
                da[s] = line
                d_hit += 1
                if f & 16 and v == -3:
                    dirty2[line % l2_n].add(line)
                k += 1
                continue
            if v == -3:
                i2 = line % l2_n
                ways2 = sets2[i2]
                if line in ways2:
                    if ways2[0] != line:
                        ways2.remove(line)
                        ways2.insert(0, line)
                    if f & 16:
                        dirty2[i2].add(line)
                    if mrec is not None:
                        mrec.append((poss[k], True))
                else:
                    if len(ways2) >= l2_assoc:
                        victim = ways2.pop()
                        ds = dirty2[i2]
                        if victim in ds:
                            ds.remove(victim)
                            wb += 1
                        vs = victim % l1_n
                        if ia[vs] == victim:
                            ia[vs] = ib[vs]
                            ib[vs] = -1
                        elif ib[vs] == victim:
                            ib[vs] = -1
                        if da[vs] == victim:
                            da[vs] = db[vs]
                            db[vs] = -1
                        elif db[vs] == victim:
                            db[vs] = -1
                        fw.pop(victim, None)
                    ways2.insert(0, line)
                    if f & 16:
                        dirty2[i2].add(line)
                    fw[line] = bool(f & 1)
                    l2m_d += 1
                    if mrec is not None:
                        mrec.append((poss[k], False))
            else:
                if v == -2:
                    l2m_d += 1
                if mrec is not None:
                    mrec.append((poss[k], v == -1))
            db[s] = da[s]
            da[s] = line
        k += 1
    return i_hit, d_hit, l2m_i, l2m_d, wb


# ---------------------------------------------------------------------------
# Out-of-order event replay
# ---------------------------------------------------------------------------

def _replay_ooo(cpu, tv: _TraceView, mrec_w, mrec_m, lat) -> None:
    """Re-issue the exact busy/stall call sequence of ``_run_fast``.

    Float accumulation in the out-of-order model is order-sensitive, so
    bit-identity requires replaying per-fetch ``busy`` calls and
    per-miss ``stall`` calls in trace order, with the statistics reset
    (but not the pipeline clock) at the warmup boundary.
    """
    ipos_w, ik_w, ipos_m, ik_m, flags_l = tv.ooo_events()
    lat_hit = lat.l2_hit
    lat_loc = lat.local
    for ipos, ik, mrec, is_warm in (
        (ipos_w, ik_w, mrec_w, True),
        (ipos_m, ik_m, mrec_m, False),
    ):
        busy = cpu.busy
        stall = cpu.stall
        n_i = len(ipos)
        ip = 0
        for pos, l2h in mrec:
            while ip < n_i and ipos[ip] <= pos:
                busy(INSTRS_PER_ILINE, ik[ip])
                ip += 1
            f = flags_l[pos]
            if l2h:
                stall(lat_hit, 0, f & 8, f & 2)
            else:
                stall(lat_loc, 1, f & 8, f & 2)
        while ip < n_i:
            busy(INSTRS_PER_ILINE, ik[ip])
            ip += 1
        if is_warm:
            cpu.reset()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _materialize_l1(cache, flat_a, flat_b) -> None:
    for s, ways in enumerate(cache._sets):
        ways.clear()
        a = flat_a[s]
        if a != -1:
            ways.append(a)
            b = flat_b[s]
            if b != -1:
                ways.append(b)


def replay_uniprocessor(system, trace, protocol, net) -> None:
    """Replay ``trace`` and populate ``system`` state and counters.

    The caller (``System._run_vectorized``) guarantees a single-node,
    single-core machine with no victim buffer, TLB, RAC or fault plan.

    A chunk-streamed trace is materialized here: the kernel's
    structural algorithms (global argsort runs, first-touch
    ``np.unique``) need the whole reference stream at once, and
    collection reconstructs the exact trace, so streamed results stay
    value-identical to materialized ones.
    """
    from repro.trace.stream import is_streaming

    if is_streaming(trace):
        trace = trace.collect()
    machine = system.machine
    node = system.nodes[0]
    l1i, l1d, l2 = node.l1i, node.l1d, node.l2
    if l1i.assoc != 2 or l1d.assoc != 2:
        raise VectorizedUnsupported("kernel assumes the paper's 2-way L1s")
    l1_n = l1i.num_sets
    l2_n = l2.num_sets
    l2_assoc = l2.assoc
    ooo = machine.cpu_model == "ooo"
    lat = machine.latencies

    # Observability: the kernel has no quantum loop (it replays out of
    # trace order), so it publishes three synthetic phase spans from
    # perf_counter checkpoints instead of live nested spans — and pays
    # nothing when tracing is disabled.
    tracer = system._tracer
    traced = tracer.enabled
    t_start = perf_counter() if traced else 0.0

    tv = _view_for(trace)
    if tv.n == 0:
        return
    lv = tv.l1view(l1_n)
    t_views = perf_counter() if traced else 0.0

    ia = [-1] * l1_n
    ib = [-1] * l1_n
    da = [-1] * l1_n
    db = [-1] * l1_n
    mrec_w: Optional[list] = [] if ooo else None
    mrec_m: Optional[list] = [] if ooo else None

    if l2_assoc == 1:
        sched = tv.dm(l2_n)
        compressed = not (
            np.any(~lv.keep[np.flatnonzero(sched.vic != -1)])
            or lv.violates(sched.vic_line, sched.pos_ev)
        )
        if compressed:
            (lines_w, lines_m, eff_w, eff_m,
             s1_w, s1_m, pos_w, pos_m) = lv.fl()
            vic_w, vic_m = sched.vic_lists(tv, lv)
            drop_i_m, drop_d_m = lv.drop_i_m, lv.drop_d_m
        else:
            lines_full = tv.lists()
            lines_w, lines_m, eff_w, eff_m, pos_w, pos_m = lines_full
            s1_w, s1_m = lv.s1_w, lv.s1_m
            vic_w, vic_m = sched.vic_lists(tv, None)
            drop_i_m = drop_d_m = 0

        if ooo:
            _walk_dm_rec(lines_w, eff_w, s1_w, vic_w, pos_w,
                         l1_n, ia, ib, da, db, mrec_w)
            i_hit, d_hit = _walk_dm_rec(lines_m, eff_m, s1_m, vic_m, pos_m,
                                        l1_n, ia, ib, da, db, mrec_m)
        else:
            _walk_dm(lines_w, eff_w, s1_w, vic_w, l1_n, ia, ib, da, db)
            i_hit, d_hit = _walk_dm(lines_m, eff_m, s1_m, vic_m,
                                    l1_n, ia, ib, da, db)
        i_hit += drop_i_m
        d_hit += drop_d_m
        l2m_i, l2m_d, wb_m = sched.l2m_i, sched.l2m_m, sched.wb_m

        # Final L2 + directory state straight from the schedule.
        sets2 = l2._sets
        dirty2 = l2._dirty
        sharers = protocol.directory._sharers
        owner = protocol.directory._owner
        for s, line, dirty, fillw in zip(sched.final_set, sched.final_lines,
                                         sched.final_dirty, sched.final_fillw):
            sets2[s].append(line)
            if dirty:
                dirty2[s].add(line)
            sharers[line] = {0}
            if fillw:
                owner[line] = 0
    elif tv.max_set_occupancy(l2_n) <= l2_assoc:
        # No L2 set is ever asked to hold more distinct lines than it
        # has ways, so the L2 never evicts: every L2 miss is exactly a
        # first touch and no inclusion purge can reach the L1s.  The L2
        # side then needs no replay at all — misses, dirty bits and
        # final state come from array reductions shared by every
        # no-eviction geometry — and MRU-run compression is trivially
        # exact, so only the compressed L1 walk runs.
        uniq, _, l2m_i, l2m_d, dirty_u, fillw_u = tv.first_touch()
        vic_w, vic_m = tv.noev_vic_lists(lv)
        (fl_w, fl_m, fe_w, fe_m, fs_w, fs_m, fp_w, fp_m) = lv.fl()
        if ooo:
            _walk_dm_rec(fl_w, fe_w, fs_w, vic_w, fp_w,
                         l1_n, ia, ib, da, db, mrec_w)
            i_hit, d_hit = _walk_dm_rec(fl_m, fe_m, fs_m, vic_m, fp_m,
                                        l1_n, ia, ib, da, db, mrec_m)
        else:
            _walk_dm(fl_w, fe_w, fs_w, vic_w, l1_n, ia, ib, da, db)
            i_hit, d_hit = _walk_dm(fl_m, fe_m, fs_m, vic_m,
                                    l1_n, ia, ib, da, db)
        i_hit += lv.drop_i_m
        d_hit += lv.drop_d_m
        wb_m = 0
        sets2 = l2._sets
        dirty2 = l2._dirty
        sharers = protocol.directory._sharers
        owner = protocol.directory._owner
        # Lines land in ascending order rather than _run_fast's recency
        # order; per-set LRU order is unobservable once the run is over
        # (results carry no cache state and the checker tests membership
        # and set mapping only).
        for line, dirty, fillw in zip(uniq.tolist(), dirty_u.tolist(),
                                      fillw_u.tolist()):
            s = line % l2_n
            sets2[s].append(line)
            if dirty:
                dirty2[s].add(line)
            sharers[line] = {0}
            if fillw:
                owner[line] = 0
    else:
        # Some set may overflow, so those sets (usually a handful) are
        # replayed scalar, jointly with the L1s — inclusion purges
        # couple the levels — while the never-overflowing majority
        # follows the precomputed first-touch schedule.  The walk runs
        # uncompressed: purges land inside MRU runs on essentially any
        # trace that overflows a set, so a compressed attempt would be
        # wasted work.
        vic_w, vic_m, ovf_sets, ovf_u = tv.hybrid_vic_lists(l2_n, l2_assoc)
        sets2 = l2._sets
        dirty2 = l2._dirty
        fw: Dict[int, bool] = {}
        lw, lm, ew, em, pw, pm = tv.lists()
        if vic_w is None:
            _walk_scalar(lw, ew, lv.s1_w, pw, l1_n, l2_n, l2_assoc,
                         ia, ib, da, db, sets2, dirty2, fw, mrec_w)
            i_hit, d_hit, l2m_i, l2m_d, wb_m = _walk_scalar(
                lm, em, lv.s1_m, pm, l1_n, l2_n, l2_assoc,
                ia, ib, da, db, sets2, dirty2, fw, mrec_m)
        else:
            _walk_assoc(lw, ew, lv.s1_w, vic_w, pw, l1_n, l2_n, l2_assoc,
                        ia, ib, da, db, sets2, dirty2, fw, mrec_w)
            i_hit, d_hit, l2m_i, l2m_d, wb_m = _walk_assoc(
                lm, em, lv.s1_m, vic_m, pm, l1_n, l2_n, l2_assoc,
                ia, ib, da, db, sets2, dirty2, fw, mrec_m)

        uniq, _, _, _, dirty_u, fillw_u = tv.first_touch()
        sharers = protocol.directory._sharers
        owner = protocol.directory._owner
        nov = ~ovf_u
        # Never-overflowing sets: every touched line is still resident;
        # lines land in ascending order rather than _run_fast's recency
        # order, which is unobservable once the run is over (results
        # carry no cache state and the checker tests membership only).
        for line, dirty, fillw in zip(uniq[nov].tolist(),
                                      dirty_u[nov].tolist(),
                                      fillw_u[nov].tolist()):
            s = line % l2_n
            sets2[s].append(line)
            if dirty:
                dirty2[s].add(line)
            sharers[line] = {0}
            if fillw:
                owner[line] = 0
        for sid in ovf_sets.tolist():
            for line in sets2[sid]:
                sharers[line] = {0}
        for line, w in fw.items():
            if w:
                owner[line] = 0

    t_walk = perf_counter() if traced else 0.0

    _materialize_l1(l1i, ia, ib)
    _materialize_l1(l1d, da, db)

    # -- measured statistics, assembled to match _run_fast bit-for-bit --
    i_refs = tv.i_refs_m
    d_refs = tv.d_refs_m
    i_miss = i_refs - i_hit
    d_miss = d_refs - d_hit
    l2_misses = l2m_i + l2m_d
    l2_hits = (i_miss + d_miss) - l2_misses

    system.l1.i_refs += i_refs
    system.l1.i_misses += i_miss
    system.l1.d_refs += d_refs
    system.l1.d_misses += d_miss
    system.l2_hits += l2_hits
    system.writes += tv.writes_m
    system.misses.i_local += l2m_i
    system.misses.d_local += l2m_d
    protocol.writebacks += wb_m
    net.counters.local_requests += l2_misses

    cpu = system.cpus[0]
    if ooo:
        _replay_ooo(cpu, tv, mrec_w, mrec_m, lat)
    else:
        cpu.busy_cycles = i_refs * INSTRS_PER_ILINE
        cpu.kernel_busy_cycles = tv.kinstr_m * INSTRS_PER_ILINE
        cpu.stall_cycles[0] = l2_hits * lat.l2_hit
        cpu.stall_cycles[1] = l2_misses * lat.local

    if traced:
        t_end = perf_counter()
        tracer.add_span("uni.views", t_start, t_views - t_start)
        tracer.add_span("uni.walk", t_views, t_walk - t_views)
        tracer.add_span("uni.finalize", t_walk, t_end - t_walk)
