"""Cache substrate: set-associative caches, per-node hierarchies, RAC."""

from repro.memsys.cache import AccessResult, CacheGeometryError, SetAssocCache
from repro.memsys.hierarchy import HierarchyLevel, HierarchyResult, NodeCaches
from repro.memsys.rac import RacLookup, RemoteAccessCache

__all__ = [
    "AccessResult",
    "CacheGeometryError",
    "SetAssocCache",
    "HierarchyLevel",
    "HierarchyResult",
    "NodeCaches",
    "RacLookup",
    "RemoteAccessCache",
]
