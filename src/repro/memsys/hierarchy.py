"""Per-node cache hierarchy: split L1s over a shared, inclusive L2.

A *node* is one coherence endpoint: the unit the directory tracks.
In the paper's baseline every node has one core; the chip-multiprocessor
extension (Section 8 names CMP as the next step) puts several cores —
each with private L1s — over one shared L2.  An optional victim buffer
(the 21364's "L2 Victim Buffers", Figure 1) catches L2 evictions.

The hierarchy enforces inclusion (an L2 eviction or external
invalidation removes the line from every core's L1s), keeps dirty
status at the L2 (write-back L1s propagate only the status bit), and
for multi-core nodes write-invalidates the other cores' L1 copies.

All methods speak line numbers, not byte addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.memsys.cache import SetAssocCache
from repro.memsys.victim import VictimBuffer
from repro.params import L1_ASSOC, L1_SIZE, LINE_SIZE


class HierarchyLevel(enum.Enum):
    """Where in the local hierarchy an access was satisfied."""

    L1 = "l1"
    L2 = "l2"
    VICTIM = "victim"
    MISS = "miss"


@dataclass
class HierarchyResult:
    """Result of a local cache-hierarchy access.

    ``level`` says where the access hit.  On an L2 miss (or a victim-
    buffer overflow), ``victim``/``victim_dirty`` describe the line
    that left the node entirely, so the coherence layer can update the
    directory and write data back to the home node.
    """

    level: HierarchyLevel
    victim: Optional[int] = None
    victim_dirty: bool = False


class NodeCaches:
    """The caches of one coherence node (1+ cores over a shared L2).

    Parameters
    ----------
    l2_size, l2_assoc:
        Geometry of the (possibly scaled) second-level cache.
    l1_size, l1_assoc:
        Geometry of each core's L1 caches; defaults follow Figure 2.
    num_cores:
        Cores sharing this node's L2 (1 = the paper's baseline).
    victim_entries:
        Size of the L2 victim buffer; 0 disables it.
    node_id:
        Diagnostic label only.
    """

    __slots__ = ("node_id", "num_cores", "l1is", "l1ds", "l2", "victim")

    def __init__(
        self,
        l2_size: int,
        l2_assoc: int,
        *,
        l1_size: int = L1_SIZE,
        l1_assoc: int = L1_ASSOC,
        line_size: int = LINE_SIZE,
        num_cores: int = 1,
        victim_entries: int = 0,
        node_id: int = 0,
    ):
        if num_cores <= 0:
            raise ValueError("a node needs at least one core")
        self.node_id = node_id
        self.num_cores = num_cores
        self.l1is = [
            SetAssocCache(l1_size, l1_assoc, line_size, name=f"n{node_id}c{c}.l1i")
            for c in range(num_cores)
        ]
        self.l1ds = [
            SetAssocCache(l1_size, l1_assoc, line_size, name=f"n{node_id}c{c}.l1d")
            for c in range(num_cores)
        ]
        self.l2 = SetAssocCache(l2_size, l2_assoc, line_size, name=f"n{node_id}.l2")
        self.victim = VictimBuffer(victim_entries) if victim_entries else None

    # -- compatibility accessors (single-core common case) -------------------

    @property
    def l1i(self) -> SetAssocCache:
        return self.l1is[0]

    @property
    def l1d(self) -> SetAssocCache:
        return self.l1ds[0]

    # -- internal helpers ------------------------------------------------------

    def _purge_l1s(self, line: int, except_core: int = -1) -> bool:
        """Drop ``line`` from every core's L1s; True if any copy existed
        in a data cache (instruction copies are always clean)."""
        found = False
        for core in range(self.num_cores):
            if core == except_core:
                continue
            self.l1is[core].invalidate(line)
            if self.l1ds[core].invalidate(line):
                found = True
        return found

    # -- the access path ----------------------------------------------------------

    def access(self, line: int, write: bool, is_instr: bool,
               core: int = 0) -> HierarchyResult:
        """Perform a demand access from ``core``.

        On an L2 miss the line is filled into both the L2 and the
        core's L1; inclusion is maintained by purging L1 copies of any
        L2 victim.  A write invalidates the *other* cores' L1 copies
        (intra-node write-invalidate coherence).
        """
        l1 = self.l1is[core] if is_instr else self.l1ds[core]
        if l1.probe(line, write):
            if write:
                # Keep the L2's dirty bit in sync so evictions write
                # back; an L1 hit does not generate an L2 access, so
                # the L2's LRU order is left untouched.
                self.l2.mark_dirty(line)
                if self.num_cores > 1:
                    self._purge_l1s(line, except_core=core)
            return HierarchyResult(HierarchyLevel.L1)

        # The L1 fills *last*, after any L2-victim inclusion purge: the
        # fill data only arrives once the miss is serviced, so the
        # purge must not find (and the fill must not race) a
        # just-installed line.  Filling first would evict an extra L1
        # line whenever the L2 victim sits in the same full L1 set as
        # the incoming line — a state the scalar replay loops never
        # enter.
        r2 = self.l2.access(line, write)
        if write and self.num_cores > 1:
            self._purge_l1s(line, except_core=core)
        if r2.hit:
            l1.fill(line, dirty=bool(write))
            return HierarchyResult(HierarchyLevel.L2)

        # L2 miss: handle the eviction, then try the victim buffer.
        result = None
        if r2.victim is not None:
            if self._purge_l1s(r2.victim):
                r2.victim_dirty = True
            if self.victim is None:
                result = HierarchyResult(HierarchyLevel.MISS, r2.victim, r2.victim_dirty)
            else:
                displaced = self.victim.insert(r2.victim, r2.victim_dirty)
                if displaced is not None:
                    result = HierarchyResult(HierarchyLevel.MISS, *displaced)

        if self.victim is not None:
            was_dirty = self.victim.extract(line)
            if was_dirty is not None:
                # Swap-back: the line never left the node (the earlier
                # l2.access already reinstalled it).
                if was_dirty:
                    self.l2.mark_dirty(line)
                l1.fill(line, dirty=bool(write))
                if result is not None:
                    # Rare: the swap-back displaced another buffer entry.
                    return HierarchyResult(
                        HierarchyLevel.VICTIM, result.victim, result.victim_dirty
                    )
                return HierarchyResult(HierarchyLevel.VICTIM)

        l1.fill(line, dirty=bool(write))
        return result if result is not None else HierarchyResult(HierarchyLevel.MISS)

    # -- external (coherence) operations --------------------------------------------

    def invalidate(self, line: int) -> bool:
        """Externally invalidate ``line`` everywhere; True if dirty data lost."""
        dirty = self.l2.invalidate(line)
        if self._purge_l1s(line):
            dirty = True
        if self.victim is not None and self.victim.invalidate(line):
            dirty = True
        return dirty

    def downgrade(self, line: int) -> bool:
        """Demote ``line`` to shared/clean (3-hop read intervention).

        Returns True when the line was dirty (data must be forwarded).
        """
        dirty = self.l2.clean(line)
        for l1d in self.l1ds:
            if l1d.clean(line):
                dirty = True
        if self.victim is not None and self.victim.clean(line):
            dirty = True
        return dirty

    def holds(self, line: int) -> bool:
        """True when the node has the line anywhere in its hierarchy."""
        if self.l2.contains(line):
            return True
        return self.victim is not None and self.victim.holds(line)

    def holds_dirty(self, line: int) -> bool:
        """True when the node holds a modified copy of the line."""
        if self.l2.is_dirty(line):
            return True
        return self.victim is not None and self.victim.is_dirty(line)

    def reset_stats(self) -> None:
        for cache in self.l1is + self.l1ds:
            cache.reset_stats()
        self.l2.reset_stats()
        if self.victim is not None:
            self.victim.hits = 0
            self.victim.probes = 0
            self.victim.inserts = 0
