"""L2 victim buffer (the "L2 Victim Buffers" box in the paper's
Figure 1 block diagram of the Alpha 21364).

A small fully-associative buffer that catches lines evicted from the
L2.  A subsequent miss that hits the buffer swaps the line back into
the L2 at near-hit latency instead of paying a memory access — which
makes the buffer a targeted remedy for exactly the conflict misses
this paper shows direct-mapped caches suffering from.  The paper
itself does not evaluate the buffer; we provide it as the natural
ablation (see ``repro.experiments.ablations``).
"""

from __future__ import annotations

from typing import Optional, Tuple


class VictimBuffer:
    """Fully associative FIFO/LRU buffer of recent L2 victims."""

    __slots__ = ("entries", "_lines", "_dirty", "hits", "probes", "inserts")

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("victim buffer needs at least one entry")
        self.entries = entries
        self._lines = []          # MRU first
        self._dirty = set()
        self.hits = 0
        self.probes = 0
        self.inserts = 0

    def __len__(self) -> int:
        return len(self._lines)

    def holds(self, line: int) -> bool:
        return line in self._lines

    def is_dirty(self, line: int) -> bool:
        return line in self._dirty

    def lines(self) -> Tuple[int, ...]:
        """All buffered lines, MRU first (diagnostics)."""
        return tuple(self._lines)

    def dirty_lines(self) -> Tuple[int, ...]:
        """All buffered lines whose data is modified (diagnostics)."""
        return tuple(self._dirty)

    def insert(self, line: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        """Add an L2 victim; returns a displaced (line, dirty) or None."""
        self.inserts += 1
        if line in self._lines:
            self._lines.remove(line)
        self._lines.insert(0, line)
        if dirty:
            self._dirty.add(line)
        if len(self._lines) > self.entries:
            old = self._lines.pop()
            old_dirty = old in self._dirty
            self._dirty.discard(old)
            return old, old_dirty
        return None

    def extract(self, line: int) -> Optional[bool]:
        """Remove ``line`` on a swap-back hit; returns its dirtiness.

        Returns None when the line is not present (a miss); every call
        counts as a probe.
        """
        self.probes += 1
        if line not in self._lines:
            return None
        self.hits += 1
        self._lines.remove(line)
        dirty = line in self._dirty
        self._dirty.discard(line)
        return dirty

    def invalidate(self, line: int) -> bool:
        """External invalidation; True when dirty data was dropped."""
        if line not in self._lines:
            return False
        self._lines.remove(line)
        dirty = line in self._dirty
        self._dirty.discard(line)
        return dirty

    def clean(self, line: int) -> bool:
        """Downgrade to clean; True when the line was dirty."""
        if line in self._dirty:
            self._dirty.discard(line)
            return True
        return False

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0
