"""Staged multiprocessor replay: the ``vectorized-mp`` engine.

This module is phases 2–4 of the staged replay pipeline; phase 1 is
:func:`repro.trace.census.sharing_census`.  The pipeline replaces the
reference-interleaved scalar loop of ``System._run_fast`` for
multiprocessor machines while remaining **value-identical** by
construction (the differential and golden suites enforce it):

1. **Census** — classify every line as provably private to one node
   or potentially shared, and pre-compute per-reference effective
   flags (write/instr/kernel/dependent + private + local-home bits).
2. **Private hierarchy** — replay each scheduling quantum's
   references through flat per-node cache state.  Private lines never
   interact with the directory: their misses and upgrades are
   aggregated into four counters per quantum and charged in bulk.
3. **Coherence** — shared-line misses, evictions and write-upgrades
   are serviced as they occur.  Batch mode inlines a flat
   transcription of the no-RAC
   :class:`~repro.coherence.protocol.DirectoryProtocol` paths onto
   plain dicts (sharer sets and owners keyed by line) directly in the
   walks, accumulating aggregate counters instead of per-event
   outcome objects; the real directory is materialized from the flat
   entries when the run ends.  Stream mode emits compact events
   (``EV_MISS``/``EV_EVICT``/``EV_WCHECK``) serviced through
   :class:`repro.coherence.core.CoherenceCore` against the unchanged
   protocol object.
4. **Timing** — deferred timing records are charged through the CPU
   models by :mod:`repro.cpu.timing` once per quantum.

Batching the coherence work to the quantum boundary is exact because
of two structural facts: only the scheduled node issues requests
within a quantum, and (without RACs) the protocol never reads or
mutates the *requester's* caches — it only touches other, idle,
nodes.  Private lines are exact by the census guarantee: no second
node ever touches them, so the directory would only ever record this
node's own fills and evictions, which the engine reconstructs at the
end of the run.

Two execution modes cover the machine space:

* **batch mode** — in-order CPUs without RACs (the paper's Figures
  6 and 8 sweeps).  Per-node cache state lives in flat lists; the
  directory sees only shared lines, via lightweight node facades.
* **stream mode** — OOO CPUs (order-sensitive timing) or RAC
  configurations (the protocol probes and fills the requester's RAC
  mid-quantum).  The walk runs on the real cache objects and services
  events inline, deferring only the timing phase.

Anything the engine cannot replay raises
:class:`~repro.memsys.vectorized.VectorizedUnsupported` *before
mutating any state*, and ``System`` falls back to the scalar loop.
"""

from __future__ import annotations

from time import perf_counter
from typing import List

import numpy as np

from repro.coherence.core import EV_EVICT, EV_MISS, EV_WCHECK, CoherenceCore
from repro.cpu.timing import charge_quantum_inorder, charge_quantum_ooo
from repro.memsys.vectorized import VectorizedUnsupported, _materialize_l1
from repro.trace.census import sharing_census

__all__ = ["replay_multiprocessor"]

# Effective-flag bits layered on top of the trace's four flag bits.
EFF_PRIVATE = 16  # line provably touched by a single node
EFF_LOCAL = 32    # line's home is the requesting node (or replicated)

MODE_DM = 0     # direct-mapped: flat occupant-per-set array
MODE_SET = 1    # footprint fits: residency set, provably no evictions
MODE_ASSOC = 2  # general LRU: list-of-lists, mirrors SetAssocCache


class _NodeState:
    """Flat per-node cache state with coherence entry points.

    ``invalidate``/``downgrade``/``holds``/``holds_dirty`` mirror
    :class:`~repro.memsys.hierarchy.NodeCaches` semantics exactly;
    the batch walks drive them when another node's miss or upgrade
    must strip this node's copy of a *shared* line.
    """

    __slots__ = (
        "mode", "ia", "ib", "da", "db", "dmset", "resident", "sets2",
        "dirty", "owned", "l1_n", "l2_n", "l2_assoc",
    )

    def __init__(self, mode: int, l1_n: int, l2_n: int, l2_assoc: int):
        self.mode = mode
        self.l1_n = l1_n
        self.l2_n = l2_n
        self.l2_assoc = l2_assoc
        self.ia = [-1] * l1_n
        self.ib = [-1] * l1_n
        self.da = [-1] * l1_n
        self.db = [-1] * l1_n
        self.dmset = [-1] * l2_n if mode == MODE_DM else None
        # ASSOC mode keeps a flat membership set alongside the per-set
        # LRU lists so hit/miss probes hash instead of scanning ways.
        self.resident = set() if mode != MODE_DM else None
        self.sets2 = (
            [[] for _ in range(l2_n)] if mode == MODE_ASSOC else None
        )
        self.dirty = set()
        self.owned = set()

    # -- coherence entry points (mirror NodeCaches semantics exactly) ---

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` everywhere; True when dirty data was lost.

        L1 lines are never dirty in the fast representation (write
        hits mark the L2 copy), so dirtiness is L2-level only —
        exactly like ``NodeCaches.invalidate`` on scalar-engine state.
        """
        mode = self.mode
        if mode == MODE_SET:
            self.resident.discard(line)
        elif mode == MODE_DM:
            s2 = line % self.l2_n
            if self.dmset[s2] == line:
                self.dmset[s2] = -1
        else:
            r = self.resident
            if line in r:
                r.remove(line)
                self.sets2[line % self.l2_n].remove(line)
        s = line % self.l1_n
        ia, ib = self.ia, self.ib
        if ia[s] == line:
            ia[s] = ib[s]
            ib[s] = -1
        elif ib[s] == line:
            ib[s] = -1
        da, db = self.da, self.db
        if da[s] == line:
            da[s] = db[s]
            db[s] = -1
        elif db[s] == line:
            db[s] = -1
        self.owned.discard(line)
        dirty = self.dirty
        if line in dirty:
            dirty.remove(line)
            return True
        return False

    def downgrade(self, line: int) -> bool:
        """Demote to shared/clean; True when the line was dirty."""
        dirty = self.dirty
        if line in dirty:
            dirty.remove(line)
            return True
        return False

    def holds(self, line: int) -> bool:
        mode = self.mode
        if mode == MODE_DM:
            return self.dmset[line % self.l2_n] == line
        return line in self.resident

    def holds_dirty(self, line: int) -> bool:
        return line in self.dirty


# ---------------------------------------------------------------------------
# Batch-mode walks.  One specialized inner loop per L2 mode; all three
# share the same structure, mirroring ``_run_fast`` reference for
# reference.
#
# Shared-line coherence is serviced *inline*, transcribing the no-RAC
# ``DirectoryProtocol`` paths (``service_miss`` / ``ensure_owner`` /
# ``handle_eviction``) onto plain dicts: ``dsh`` maps line -> sharer
# set, ``down`` maps line -> owning node — the exact payload of
# ``DirectoryState``, materialized into the real directory when the
# run ends.  Inlining is sound because a node's own service actions
# never touch its own cache state, and the walk never reads the
# directory on its fast paths, so inline-at-the-reference equals the
# scalar engine's service-in-trace-order exactly.  Aggregate counts
# replace per-event ``ServiceOutcome`` objects; in-order stall
# accounting is commutative, so sums per latency class lose nothing.
#
# Each walk returns ``(i_l1m, d_l1m, l2h, c_li, c_ri, c_ld, c_rd,
# u_l, u_r, ml_i, ml_d, mc_i, mc_d, md_i, md_d, upg_l, upg_rc,
# inv_msgs, intervs, wbacks)``: L1I/L1D *misses* (hits are the
# quantum's ref counts minus these, so the hot hit path carries no
# counter), L2 hits, private miss counts and ownership upgrades
# (instr/data x local/remote-clean; local/remote), then the
# shared-line aggregates — misses by kind (local / remote-clean /
# remote-dirty, instruction vs data), ownership upgrades (local /
# 2-hop), invalidation messages, interventions and writebacks —
# everything the protocol, network and miss-breakdown counters need.
# ---------------------------------------------------------------------------


def _walk_set(L, E, S1, nid, states, dsh, down):
    st = states[nid]
    ia, ib, da, db = st.ia, st.ib, st.da, st.db
    resident = st.resident
    dirty = st.dirty
    owned = st.owned
    dsh_get = dsh.get
    down_get = down.get
    i_l1m = d_l1m = l2h = 0
    c_li = c_ri = c_ld = c_rd = u_l = u_r = 0
    ml_i = ml_d = mc_i = mc_d = md_i = md_d = 0
    upg_l = upg_rc = inv_msgs = intervs = wbacks = 0
    for line, f, s1 in zip(L, E, S1):
        if f & 2:
            a = ia[s1]
            if a == line or ib[s1] == line:
                if a != line:
                    ib[s1] = a
                    ia[s1] = line
                continue
        else:
            a = da[s1]
            if a == line or db[s1] == line:
                if a != line:
                    db[s1] = a
                    da[s1] = line
                if f & 1:
                    dirty.add(line)
                    if f & 16:
                        if line not in owned:
                            owned.add(line)
                            if f & 32:
                                u_l += 1
                            else:
                                u_r += 1
                    elif down_get(line) != nid:
                        s = dsh_get(line)
                        if s:
                            for other in tuple(s):
                                if other != nid:
                                    states[other].invalidate(line)
                                    inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                        if f & 32:
                            upg_l += 1
                        else:
                            upg_rc += 1
                continue
        # ---- L1 miss: probe the L2 (no evictions in SET mode) ----
        if line in resident:
            l2h += 1
            if f & 1:
                dirty.add(line)
                if f & 16:
                    if line not in owned:
                        owned.add(line)
                        if f & 32:
                            u_l += 1
                        else:
                            u_r += 1
                elif down_get(line) != nid:
                    s = dsh_get(line)
                    if s:
                        for other in tuple(s):
                            if other != nid:
                                states[other].invalidate(line)
                                inv_msgs += 1
                    dsh[line] = {nid}
                    down[line] = nid
                    if f & 32:
                        upg_l += 1
                    else:
                        upg_rc += 1
        else:
            resident.add(line)
            if f & 1:
                dirty.add(line)
            if f & 16:
                if f & 2:
                    if f & 32:
                        c_li += 1
                    else:
                        c_ri += 1
                elif f & 32:
                    c_ld += 1
                else:
                    c_rd += 1
                if f & 1:
                    owned.add(line)
            else:
                o = down_get(line)
                if o == nid:
                    # Stale ownership (should be unreachable —
                    # evictions notify the directory); recover like
                    # the protocol.
                    s = dsh_get(line)
                    if s is not None:
                        s.discard(nid)
                        if not s:
                            del dsh[line]
                        if down_get(line) == nid:
                            del down[line]
                    o = None
                if o is not None:
                    # A remote node owns the line: intervene.
                    intervs += 1
                    ost = states[o]
                    odirty = line in ost.dirty
                    if f & 1:
                        ost.invalidate(line)
                        inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                    else:
                        if odirty:
                            ost.dirty.remove(line)  # downgrade
                            wbacks += 1  # sharing writeback to home
                        del down[line]
                        s = dsh_get(line)
                        if s is None:
                            dsh[line] = {nid}
                        else:
                            s.add(nid)
                    if odirty:
                        if f & 2:
                            md_i += 1
                        else:
                            md_d += 1
                    elif f & 32:
                        if f & 2:
                            ml_i += 1
                        else:
                            ml_d += 1
                    elif f & 2:
                        mc_i += 1
                    else:
                        mc_d += 1
                else:
                    if f & 1:
                        s = dsh_get(line)
                        if s:
                            for other in tuple(s):
                                if other != nid:
                                    states[other].invalidate(line)
                                    inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                    else:
                        s = dsh_get(line)
                        if s is None:
                            dsh[line] = {nid}
                        else:
                            s.add(nid)
                    if f & 32:
                        if f & 2:
                            ml_i += 1
                        else:
                            ml_d += 1
                    elif f & 2:
                        mc_i += 1
                    else:
                        mc_d += 1
        if f & 2:
            i_l1m += 1
            ib[s1] = ia[s1]
            ia[s1] = line
        else:
            d_l1m += 1
            db[s1] = da[s1]
            da[s1] = line
    return (i_l1m, d_l1m, l2h, c_li, c_ri, c_ld, c_rd, u_l, u_r,
            ml_i, ml_d, mc_i, mc_d, md_i, md_d,
            upg_l, upg_rc, inv_msgs, intervs, wbacks)


def _walk_dm(L, E, S1, S2, nid, states, dsh, down):
    st = states[nid]
    ia, ib, da, db = st.ia, st.ib, st.da, st.db
    dmset = st.dmset
    dirty = st.dirty
    owned = st.owned
    l1_n = st.l1_n
    dsh_get = dsh.get
    down_get = down.get
    i_l1m = d_l1m = l2h = 0
    c_li = c_ri = c_ld = c_rd = u_l = u_r = 0
    ml_i = ml_d = mc_i = mc_d = md_i = md_d = 0
    upg_l = upg_rc = inv_msgs = intervs = wbacks = 0
    for line, f, s1, s2 in zip(L, E, S1, S2):
        if f & 2:
            a = ia[s1]
            if a == line or ib[s1] == line:
                if a != line:
                    ib[s1] = a
                    ia[s1] = line
                continue
        else:
            a = da[s1]
            if a == line or db[s1] == line:
                if a != line:
                    db[s1] = a
                    da[s1] = line
                if f & 1:
                    dirty.add(line)
                    if f & 16:
                        if line not in owned:
                            owned.add(line)
                            if f & 32:
                                u_l += 1
                            else:
                                u_r += 1
                    elif down_get(line) != nid:
                        s = dsh_get(line)
                        if s:
                            for other in tuple(s):
                                if other != nid:
                                    states[other].invalidate(line)
                                    inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                        if f & 32:
                            upg_l += 1
                        else:
                            upg_rc += 1
                continue
        occ = dmset[s2]
        if occ == line:
            l2h += 1
            if f & 1:
                dirty.add(line)
                if f & 16:
                    if line not in owned:
                        owned.add(line)
                        if f & 32:
                            u_l += 1
                        else:
                            u_r += 1
                elif down_get(line) != nid:
                    s = dsh_get(line)
                    if s:
                        for other in tuple(s):
                            if other != nid:
                                states[other].invalidate(line)
                                inv_msgs += 1
                    dsh[line] = {nid}
                    down[line] = nid
                    if f & 32:
                        upg_l += 1
                    else:
                        upg_rc += 1
        else:
            if occ != -1:
                if occ in dirty:
                    dirty.remove(occ)
                    wbacks += 1
                vs = occ % l1_n
                if ia[vs] == occ:
                    ia[vs] = ib[vs]
                    ib[vs] = -1
                elif ib[vs] == occ:
                    ib[vs] = -1
                if da[vs] == occ:
                    da[vs] = db[vs]
                    db[vs] = -1
                elif db[vs] == occ:
                    db[vs] = -1
                owned.discard(occ)
                s = dsh_get(occ)
                if s is not None:
                    s.discard(nid)
                    if not s:
                        del dsh[occ]
                    if down_get(occ) == nid:
                        del down[occ]
            dmset[s2] = line
            if f & 1:
                dirty.add(line)
            if f & 16:
                if f & 2:
                    if f & 32:
                        c_li += 1
                    else:
                        c_ri += 1
                elif f & 32:
                    c_ld += 1
                else:
                    c_rd += 1
                if f & 1:
                    owned.add(line)
            else:
                o = down_get(line)
                if o == nid:
                    # Stale ownership (should be unreachable —
                    # evictions notify the directory); recover like
                    # the protocol.
                    s = dsh_get(line)
                    if s is not None:
                        s.discard(nid)
                        if not s:
                            del dsh[line]
                        if down_get(line) == nid:
                            del down[line]
                    o = None
                if o is not None:
                    # A remote node owns the line: intervene.
                    intervs += 1
                    ost = states[o]
                    odirty = line in ost.dirty
                    if f & 1:
                        ost.invalidate(line)
                        inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                    else:
                        if odirty:
                            ost.dirty.remove(line)  # downgrade
                            wbacks += 1  # sharing writeback to home
                        del down[line]
                        s = dsh_get(line)
                        if s is None:
                            dsh[line] = {nid}
                        else:
                            s.add(nid)
                    if odirty:
                        if f & 2:
                            md_i += 1
                        else:
                            md_d += 1
                    elif f & 32:
                        if f & 2:
                            ml_i += 1
                        else:
                            ml_d += 1
                    elif f & 2:
                        mc_i += 1
                    else:
                        mc_d += 1
                else:
                    if f & 1:
                        s = dsh_get(line)
                        if s:
                            for other in tuple(s):
                                if other != nid:
                                    states[other].invalidate(line)
                                    inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                    else:
                        s = dsh_get(line)
                        if s is None:
                            dsh[line] = {nid}
                        else:
                            s.add(nid)
                    if f & 32:
                        if f & 2:
                            ml_i += 1
                        else:
                            ml_d += 1
                    elif f & 2:
                        mc_i += 1
                    else:
                        mc_d += 1
        if f & 2:
            i_l1m += 1
            ib[s1] = ia[s1]
            ia[s1] = line
        else:
            d_l1m += 1
            db[s1] = da[s1]
            da[s1] = line
    return (i_l1m, d_l1m, l2h, c_li, c_ri, c_ld, c_rd, u_l, u_r,
            ml_i, ml_d, mc_i, mc_d, md_i, md_d,
            upg_l, upg_rc, inv_msgs, intervs, wbacks)


def _walk_assoc(L, E, S1, S2, nid, states, dsh, down):
    st = states[nid]
    ia, ib, da, db = st.ia, st.ib, st.da, st.db
    sets2 = st.sets2
    resident = st.resident
    dirty = st.dirty
    owned = st.owned
    l1_n = st.l1_n
    l2_assoc = st.l2_assoc
    dsh_get = dsh.get
    down_get = down.get
    i_l1m = d_l1m = l2h = 0
    c_li = c_ri = c_ld = c_rd = u_l = u_r = 0
    ml_i = ml_d = mc_i = mc_d = md_i = md_d = 0
    upg_l = upg_rc = inv_msgs = intervs = wbacks = 0
    for line, f, s1, s2 in zip(L, E, S1, S2):
        if f & 2:
            a = ia[s1]
            if a == line or ib[s1] == line:
                if a != line:
                    ib[s1] = a
                    ia[s1] = line
                continue
        else:
            a = da[s1]
            if a == line or db[s1] == line:
                if a != line:
                    db[s1] = a
                    da[s1] = line
                if f & 1:
                    dirty.add(line)
                    if f & 16:
                        if line not in owned:
                            owned.add(line)
                            if f & 32:
                                u_l += 1
                            else:
                                u_r += 1
                    elif down_get(line) != nid:
                        s = dsh_get(line)
                        if s:
                            for other in tuple(s):
                                if other != nid:
                                    states[other].invalidate(line)
                                    inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                        if f & 32:
                            upg_l += 1
                        else:
                            upg_rc += 1
                continue
        ways2 = sets2[s2]
        if ways2 and ways2[0] == line:
            # MRU slot — the common L2 hit — without a way scan.
            l2h += 1
            if f & 1:
                dirty.add(line)
                if f & 16:
                    if line not in owned:
                        owned.add(line)
                        if f & 32:
                            u_l += 1
                        else:
                            u_r += 1
                elif down_get(line) != nid:
                    s = dsh_get(line)
                    if s:
                        for other in tuple(s):
                            if other != nid:
                                states[other].invalidate(line)
                                inv_msgs += 1
                    dsh[line] = {nid}
                    down[line] = nid
                    if f & 32:
                        upg_l += 1
                    else:
                        upg_rc += 1
        elif line in resident:
            l2h += 1
            ways2.remove(line)
            ways2.insert(0, line)
            if f & 1:
                dirty.add(line)
                if f & 16:
                    if line not in owned:
                        owned.add(line)
                        if f & 32:
                            u_l += 1
                        else:
                            u_r += 1
                elif down_get(line) != nid:
                    s = dsh_get(line)
                    if s:
                        for other in tuple(s):
                            if other != nid:
                                states[other].invalidate(line)
                                inv_msgs += 1
                    dsh[line] = {nid}
                    down[line] = nid
                    if f & 32:
                        upg_l += 1
                    else:
                        upg_rc += 1
        else:
            if len(ways2) >= l2_assoc:
                victim = ways2.pop()
                resident.remove(victim)
                if victim in dirty:
                    dirty.remove(victim)
                    wbacks += 1
                vs = victim % l1_n
                if ia[vs] == victim:
                    ia[vs] = ib[vs]
                    ib[vs] = -1
                elif ib[vs] == victim:
                    ib[vs] = -1
                if da[vs] == victim:
                    da[vs] = db[vs]
                    db[vs] = -1
                elif db[vs] == victim:
                    db[vs] = -1
                owned.discard(victim)
                s = dsh_get(victim)
                if s is not None:
                    s.discard(nid)
                    if not s:
                        del dsh[victim]
                    if down_get(victim) == nid:
                        del down[victim]
            ways2.insert(0, line)
            resident.add(line)
            if f & 1:
                dirty.add(line)
            if f & 16:
                if f & 2:
                    if f & 32:
                        c_li += 1
                    else:
                        c_ri += 1
                elif f & 32:
                    c_ld += 1
                else:
                    c_rd += 1
                if f & 1:
                    owned.add(line)
            else:
                o = down_get(line)
                if o == nid:
                    # Stale ownership (should be unreachable —
                    # evictions notify the directory); recover like
                    # the protocol.
                    s = dsh_get(line)
                    if s is not None:
                        s.discard(nid)
                        if not s:
                            del dsh[line]
                        if down_get(line) == nid:
                            del down[line]
                    o = None
                if o is not None:
                    # A remote node owns the line: intervene.
                    intervs += 1
                    ost = states[o]
                    odirty = line in ost.dirty
                    if f & 1:
                        ost.invalidate(line)
                        inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                    else:
                        if odirty:
                            ost.dirty.remove(line)  # downgrade
                            wbacks += 1  # sharing writeback to home
                        del down[line]
                        s = dsh_get(line)
                        if s is None:
                            dsh[line] = {nid}
                        else:
                            s.add(nid)
                    if odirty:
                        if f & 2:
                            md_i += 1
                        else:
                            md_d += 1
                    elif f & 32:
                        if f & 2:
                            ml_i += 1
                        else:
                            ml_d += 1
                    elif f & 2:
                        mc_i += 1
                    else:
                        mc_d += 1
                else:
                    if f & 1:
                        s = dsh_get(line)
                        if s:
                            for other in tuple(s):
                                if other != nid:
                                    states[other].invalidate(line)
                                    inv_msgs += 1
                        dsh[line] = {nid}
                        down[line] = nid
                    else:
                        s = dsh_get(line)
                        if s is None:
                            dsh[line] = {nid}
                        else:
                            s.add(nid)
                    if f & 32:
                        if f & 2:
                            ml_i += 1
                        else:
                            ml_d += 1
                    elif f & 2:
                        mc_i += 1
                    else:
                        mc_d += 1
        if f & 2:
            i_l1m += 1
            ib[s1] = ia[s1]
            ia[s1] = line
        else:
            d_l1m += 1
            db[s1] = da[s1]
            da[s1] = line
    return (i_l1m, d_l1m, l2h, c_li, c_ri, c_ld, c_rd, u_l, u_r,
            ml_i, ml_d, mc_i, mc_d, md_i, md_d,
            upg_l, upg_rc, inv_msgs, intervs, wbacks)


# ---------------------------------------------------------------------------
# Stream-mode walk: real cache objects, events serviced inline (the
# protocol may probe/fill the requester's RAC mid-quantum), timing
# still deferred to the per-quantum charge functions.
# ---------------------------------------------------------------------------


def _walk_stream(L, F, node, node_id, core, timing, ooo, lat_l2hit,
                 l2_assoc):
    l1i, l1d, l2 = node.l1i, node.l1d, node.l2
    l1i_sets = l1i._sets
    l1i_n = l1i.num_sets
    l1d_sets = l1d._sets
    l1d_n = l1d.num_sets
    l2_sets = l2._sets
    l2_n = l2.num_sets
    l2_dirty = l2._dirty
    service_one = core.service_one
    i_l1m = d_l1m = l2h = 0
    for pos in range(len(L)):
        line = L[pos]
        f = F[pos]
        if f & 2:
            ways = l1i_sets[line % l1i_n]
            if line in ways:
                if ways[0] != line:
                    ways.remove(line)
                    ways.insert(0, line)
                continue
            i_l1m += 1
            l1_assoc_here = l1i.assoc
        else:
            ways = l1d_sets[line % l1d_n]
            if line in ways:
                if ways[0] != line:
                    ways.remove(line)
                    ways.insert(0, line)
                if f & 1:
                    l2_dirty[line % l2_n].add(line)
                    service_one(node_id, EV_WCHECK, pos, line, f, timing)
                continue
            d_l1m += 1
            l1_assoc_here = l1d.assoc

        idx2 = line % l2_n
        ways2 = l2_sets[idx2]
        if line in ways2:
            l2h += 1
            if ways2[0] != line:
                ways2.remove(line)
                ways2.insert(0, line)
            if f & 1:
                l2_dirty[idx2].add(line)
                service_one(node_id, EV_WCHECK, pos, line, f, timing)
            if ooo:
                timing.append((pos, lat_l2hit, 0, f & 8, f & 2))
        else:
            if len(ways2) >= l2_assoc:
                victim = ways2.pop()
                vdirty_set = l2_dirty[idx2]
                if victim in vdirty_set:
                    vdirty_set.remove(victim)
                    vd = 1
                else:
                    vd = 0
                vways = l1i_sets[victim % l1i_n]
                if victim in vways:
                    vways.remove(victim)
                vways = l1d_sets[victim % l1d_n]
                if victim in vways:
                    vways.remove(victim)
                service_one(node_id, EV_EVICT, pos, victim, vd, timing)
            ways2.insert(0, line)
            if f & 1:
                l2_dirty[idx2].add(line)
            service_one(node_id, EV_MISS, pos, line, f, timing)

        if len(ways) >= l1_assoc_here:
            ways.pop()
        ways.insert(0, line)
    return i_l1m, d_l1m, l2h


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def _per_quantum_counts(mask: np.ndarray, q_off: np.ndarray) -> List[int]:
    """Per-quantum sums of a boolean mask via cumulative differences."""
    c = np.concatenate(([0], np.cumsum(mask)))
    return (c[q_off[1:]] - c[q_off[:-1]]).tolist()


def _derived(sc, key, build, cap=4):
    """Fetch/build an entry in the census' derived-projection cache.

    Entries are keyed ``(family, *params)``; at most ``cap`` entries
    per family are kept (the large per-L2-geometry lists would
    otherwise accumulate across a config sweep).
    """
    d = sc.derived
    v = d.get(key)
    if v is None:
        kin = [k for k in d if k[0] == key[0]]
        if len(kin) >= cap:
            for k in kin:
                del d[k]
        v = d[key] = build()
    return v


def _select_l2_modes(sc, nnodes: int, l2_n: int, l2_assoc: int) -> List[int]:
    """Choose the flat-L2 representation per node.

    A node whose busiest L2 set never sees more than ``l2_assoc``
    distinct lines over the whole trace can never evict (invalidations
    only *remove* lines), so a plain residency set is exact — and far
    faster than LRU bookkeeping.
    """
    if l2_assoc == 1:
        return [MODE_DM] * nnodes
    keys = _derived(
        sc, ("pairs", nnodes),
        lambda: np.unique(sc.lines * nnodes + sc.nodes),
    )
    knodes = keys % nnodes
    ksets = (keys // nnodes) % l2_n
    per = np.bincount(
        knodes * l2_n + ksets, minlength=nnodes * l2_n
    ).reshape(nnodes, l2_n)
    worst = per.max(axis=1)
    return [
        MODE_SET if worst[n] <= l2_assoc else MODE_ASSOC
        for n in range(nnodes)
    ]


def replay_multiprocessor(system, trace, protocol, net) -> None:
    """Replay ``trace`` on a multiprocessor machine, staged and exact.

    The caller (``System._run_vectorized_mp``) guarantees a
    one-core-per-node machine with no victim buffer, TLB or fault
    plan; RACs and OOO CPUs route to stream mode internally.

    A chunk-streamed trace is materialized here: the census pre-pass
    and the staged walks traverse the trace multiple times, and
    collection reconstructs the exact trace, so streamed results stay
    value-identical to materialized ones.
    """
    from repro.trace.stream import is_streaming

    if is_streaming(trace):
        trace = trace.collect()
    machine = system.machine
    nodes = system.nodes
    node0 = nodes[0]
    if node0.l1i.assoc != 2 or node0.l1d.assoc != 2:
        raise VectorizedUnsupported(
            "the multiprocessor kernel models 2-way L1s only"
        )

    nnodes = machine.num_nodes
    ooo = machine.cpu_model == "ooo"
    # Stream mode services every miss through CoherenceCore →
    # protocol → InterconnectModel, so it is per-hop exact; the batch
    # walks below charge class-aggregate latencies and are only valid
    # when every remote hop costs the same.  Non-flat topologies
    # therefore route to stream mode alongside RACs and OOO.
    stream = (ooo or system.racs is not None
              or not machine.topology.is_flat)
    lat = machine.latencies
    lat_l2hit = lat.l2_hit
    lat_loc = lat.local
    lat_rc = lat.remote_clean
    lat_upg = lat.remote_upgrade
    l2_assoc = machine.l2_assoc
    l1_n = node0.l1i.num_sets
    l2_n = node0.l2.num_sets
    warmup_end = trace.warmup_quanta
    cpus = system.cpus

    # Observability: spans and the per-quantum sampler are bound by
    # System.run; both default to inert objects, so the hot loops pay
    # one flag test per phase segment (tracing) and one None test per
    # quantum (metrics) when disabled.
    tracer = system._tracer
    traced = tracer.enabled
    sampler = system._sampler

    with tracer.span("mp.census", refs=trace.total_refs):
        sc = sharing_census(trace, machine.cores_per_node)
        q_off = sc.q_offsets
        flags = sc.flags
        lines = sc.lines

        def _build_base():
            return (
                sc.q_nodes.tolist(),
                _per_quantum_counts((flags & 2) != 0, q_off),
                _per_quantum_counts((flags & 6) == 6, q_off),
                _per_quantum_counts((flags & 3) == 1, q_off),
                (q_off[1:] - q_off[:-1]).tolist(),
                q_off[:-1].tolist(),
                lines.tolist(),
            )

        (q_nodes, n_i_q, n_ki_q, n_w_q,
         q_len, q_start, L_all) = _derived(sc, ("base",), _build_base)
        S1_all = _derived(
            sc, ("s1", l1_n), lambda: (lines % l1_n).tolist(), cap=2
        )

    i_refs = i_miss = d_refs = d_miss = l2hits = writes = 0

    if stream:
        core = CoherenceCore(protocol, net, system.misses.record)
        timing: list = []
        with tracer.span("mp.census", phase="projections"):
            F_all = _derived(sc, ("flags",), flags.tolist)
        racs = system.racs
        dir_sharers = protocol.directory._sharers
        t_walk = t_charge = 0.0
        loop_start = perf_counter() if traced else 0.0
        for qi in range(len(q_len)):
            if qi == warmup_end:
                core.record_miss = system._measurement_boundary(
                    protocol, net, i_refs, i_miss, d_refs, d_miss,
                    l2hits, writes,
                )
                i_refs = i_miss = d_refs = d_miss = l2hits = writes = 0
            start = q_start[qi]
            end = start + q_len[qi]
            nid = q_nodes[qi]
            F = F_all[start:end]
            if traced:
                t0 = perf_counter()
            i_l1m, d_l1m, l2h = _walk_stream(
                L_all[start:end], F, nodes[nid], nid, core, timing,
                ooo, lat_l2hit, l2_assoc,
            )
            if traced:
                t1 = perf_counter()
                t_walk += t1 - t0
            cpu = cpus[nid]
            n_i = n_i_q[qi]
            if ooo:
                fl = flags[start:end]
                ip = np.flatnonzero(fl & 2)
                charge_quantum_ooo(
                    cpu, timing, ip.tolist(),
                    ((fl[ip] & 4) != 0).tolist(),
                )
            else:
                charge_quantum_inorder(
                    cpu, timing, l2h, lat_l2hit, n_i, n_ki_q[qi],
                )
            if traced:
                t_charge += perf_counter() - t1
            timing.clear()
            n = q_len[qi]
            i_refs += n_i
            d_refs += n - n_i
            i_miss += i_l1m
            d_miss += d_l1m
            l2hits += l2h
            writes += n_w_q[qi]
            if sampler is not None and qi >= warmup_end:
                if racs is not None:
                    rp = sum(r.probes for r in racs)
                    rh = sum(r.hits for r in racs)
                else:
                    rp = rh = 0
                sampler.sample(qi, system.misses, i_refs,
                               len(dir_sharers), rp, rh)
        if traced:
            # Stream mode services coherence events inside the walk,
            # so walk time includes the coherence phase; the two
            # aggregate phase spans tile the loop's real window.
            tracer.add_span("mp.walks", loop_start, t_walk,
                            mode="stream", coherence="inline")
            tracer.add_span("mp.timing", loop_start + t_walk, t_charge,
                            mode="stream")
        system._flush_counters(i_refs, i_miss, d_refs, d_miss, l2hits, writes)
        return

    # ---- batch mode -----------------------------------------------------
    def _build_eff():
        shift = (trace.page_bytes // 64).bit_length() - 1
        home = (lines >> shift) % nnodes
        local = home == sc.nodes
        if machine.replicate_code and trace.text_pages:
            tp = np.fromiter(
                trace.text_pages, dtype=np.int64,
                count=len(trace.text_pages),
            )
            local = local | np.isin(lines >> shift, tp)
        eff = (
            flags
            | (sc.private.astype(np.int64) << 4)
            | (local.astype(np.int64) << 5)
        )
        return eff.tolist()

    with tracer.span("mp.census", phase="projections"):
        E_all = _derived(
            sc, ("eff", nnodes, machine.replicate_code), _build_eff, cap=2
        )
        modes = _derived(
            sc, ("modes", nnodes, l2_n, l2_assoc),
            lambda: _select_l2_modes(sc, nnodes, l2_n, l2_assoc), cap=8,
        )
        states = [
            _NodeState(modes[n], l1_n, l2_n, l2_assoc) for n in range(nnodes)
        ]
        need_s2 = any(m != MODE_SET for m in modes)
        S2_all = (
            _derived(sc, ("s2", l2_n), lambda: (lines % l2_n).tolist(), cap=2)
            if need_s2 else None
        )
    lat_rd = lat.remote_dirty
    dsh: dict = {}   # line -> sharer set (DirectoryState._sharers)
    down: dict = {}  # line -> owning node (DirectoryState._owner)

    t_walk = t_coh = t_charge = 0.0
    loop_start = perf_counter() if traced else 0.0
    for qi in range(len(q_len)):
        if qi == warmup_end:
            system._measurement_boundary(
                protocol, net, i_refs, i_miss, d_refs, d_miss,
                l2hits, writes,
            )
            i_refs = i_miss = d_refs = d_miss = l2hits = writes = 0
        start = q_start[qi]
        end = start + q_len[qi]
        nid = q_nodes[qi]
        mode = states[nid].mode
        L = L_all[start:end]
        E = E_all[start:end]
        S1 = S1_all[start:end]
        if traced:
            t0 = perf_counter()
        if mode == MODE_SET:
            res = _walk_set(L, E, S1, nid, states, dsh, down)
        elif mode == MODE_DM:
            res = _walk_dm(L, E, S1, S2_all[start:end], nid, states,
                           dsh, down)
        else:
            res = _walk_assoc(L, E, S1, S2_all[start:end], nid, states,
                              dsh, down)
        if traced:
            t1 = perf_counter()
            t_walk += t1 - t0
        (i_l1m, d_l1m, l2h,
         c_li, c_ri, c_ld, c_rd, u_l, u_r,
         ml_i, ml_d, mc_i, mc_d, md_i, md_d,
         upg_l, upg_rc, inv_msgs, intervs, wbacks) = res
        # Apply the quantum's aggregates — shared-line service first,
        # then the private fast path — exactly as service_miss /
        # ensure_owner / service_latency would have, in bulk.  Read
        # the stats objects fresh: the boundary above swaps them out.
        cpu = cpus[nid]
        if ml_i or ml_d or mc_i or mc_d or md_i or md_d or inv_msgs \
                or upg_l or upg_rc or intervs or wbacks:
            m = system.misses
            m.i_local += ml_i
            m.i_remote += mc_i + md_i
            m.d_local += ml_d
            m.d_remote_clean += mc_d
            m.d_remote_dirty += md_d
            protocol.upgrades += upg_l + upg_rc
            protocol.invalidations += inv_msgs
            protocol.interventions += intervs
            protocol.writebacks += wbacks
            counters = net.counters
            counters.local_requests += ml_i + ml_d + upg_l
            counters.requests_2hop += mc_i + mc_d + upg_rc
            counters.requests_3hop += md_i + md_d
            counters.invalidations += inv_msgs
            stall = cpu.stall_cycles
            stall[1] += (ml_i + ml_d + upg_l) * lat_loc
            stall[2] += (mc_i + mc_d) * lat_rc + upg_rc * lat_upg
            stall[3] += (md_i + md_d) * lat_rd
        if c_li or c_ri or c_ld or c_rd or u_l or u_r:
            m = system.misses
            m.i_local += c_li
            m.i_remote += c_ri
            m.d_local += c_ld
            m.d_remote_clean += c_rd
            protocol.upgrades += u_l + u_r
            counters = net.counters
            counters.local_requests += c_li + c_ld + u_l
            counters.requests_2hop += c_ri + c_rd + u_r
            stall = cpu.stall_cycles
            stall[1] += (c_li + c_ld + u_l) * lat_loc
            stall[2] += (c_ri + c_rd) * lat_rc + u_r * lat_upg
        if traced:
            t2 = perf_counter()
            t_coh += t2 - t1
        n_i = n_i_q[qi]
        charge_quantum_inorder(
            cpu, (), l2h, lat_l2hit, n_i, n_ki_q[qi],
        )
        if traced:
            t_charge += perf_counter() - t2
        n = q_len[qi]
        i_refs += n_i
        d_refs += n - n_i
        i_miss += i_l1m
        d_miss += d_l1m
        l2hits += l2h
        writes += n_w_q[qi]
        if sampler is not None and qi >= warmup_end:
            sampler.sample(qi, system.misses, i_refs, len(dsh))

    if traced:
        # Aggregate phase spans reconstructed from accumulated segment
        # timings; laid out sequentially from the loop start so they
        # nest inside the live engine span (their sum <= elapsed).
        tracer.add_span("mp.walks", loop_start, t_walk, mode="batch")
        tracer.add_span("mp.coherence", loop_start + t_walk, t_coh,
                        mode="batch")
        tracer.add_span("mp.timing", loop_start + t_walk + t_coh,
                        t_charge, mode="batch")

    # ---- materialize flat state back into the real objects --------------
    with tracer.span("mp.materialize"):
        priv = set(sc.uniq[sc.uniq_private].tolist())
        directory = protocol.directory
        # The run began with an empty directory and only this engine
        # wrote to it, so the flat shared-line entries transplant
        # wholesale.
        directory._sharers.update(dsh)
        directory._owner.update(down)
        for nid, (node, st) in enumerate(zip(nodes, states)):
            _materialize_l1(node.l1i, st.ia, st.ib)
            _materialize_l1(node.l1d, st.da, st.db)
            l2_sets = node.l2._sets
            if st.mode == MODE_DM:
                for s2, occ in enumerate(st.dmset):
                    l2_sets[s2][:] = () if occ == -1 else (occ,)
            elif st.mode == MODE_SET:
                for ways in l2_sets:
                    ways.clear()
                for ln in sorted(st.resident):
                    l2_sets[ln % l2_n].append(ln)
            else:
                for s2, ways in enumerate(st.sets2):
                    l2_sets[s2][:] = ways
            l2_dirty = node.l2._dirty
            for dset in l2_dirty:
                dset.clear()
            for ln in st.dirty:
                l2_dirty[ln % l2_n].add(ln)
            # Private lines never consulted the directory during the
            # run; reconstruct the entries _run_fast would have left
            # behind.
            owned = st.owned
            if st.mode == MODE_DM:
                resident_iter = (occ for occ in st.dmset if occ != -1)
            elif st.mode == MODE_SET:
                resident_iter = iter(st.resident)
            else:
                resident_iter = (ln for ways in st.sets2 for ln in ways)
            for ln in resident_iter:
                if ln in priv:
                    if ln in owned:
                        directory.set_owner(ln, nid)
                    else:
                        directory.add_sharer(ln, nid)

    system._flush_counters(i_refs, i_miss, d_refs, d_miss, l2hits, writes)
