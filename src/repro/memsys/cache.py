"""Set-associative write-back caches with true-LRU replacement.

These caches operate on *line numbers* (byte address >> LINE_SHIFT),
not byte addresses, because every client in the simulator has already
collapsed accesses to line granularity.  Each set is kept as a small
list ordered most-recently-used first, which is both simple and fast
for the associativities the paper studies (1 to 8 ways).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.params import LINE_SIZE


class CacheGeometryError(ValueError):
    """Raised when a cache cannot be built from the requested geometry."""


@dataclass
class AccessResult:
    """Outcome of a cache access.

    ``hit`` is True when the line was present.  On a miss the line is
    filled and ``victim``/``victim_dirty`` describe the evicted line,
    if any.  ``writeback`` is True when the eviction must write data
    back to the next level.
    """

    hit: bool
    victim: Optional[int] = None
    victim_dirty: bool = False

    @property
    def writeback(self) -> bool:
        return self.victim is not None and self.victim_dirty


class SetAssocCache:
    """A set-associative, write-back, write-allocate cache.

    Parameters
    ----------
    size:
        Capacity in bytes.  Must be a multiple of ``assoc * line_size``.
    assoc:
        Number of ways.  ``assoc=1`` models a direct-mapped cache.
    line_size:
        Line size in bytes (defaults to the paper's 64 B).
    name:
        Diagnostic label used in error messages and reports.
    """

    __slots__ = (
        "name",
        "size",
        "assoc",
        "line_size",
        "num_sets",
        "_sets",
        "_dirty",
        "hits",
        "misses",
        "evictions",
        "writebacks",
    )

    def __init__(self, size: int, assoc: int, line_size: int = LINE_SIZE, name: str = "cache"):
        if size <= 0 or assoc <= 0 or line_size <= 0:
            raise CacheGeometryError(f"{name}: size, assoc and line_size must be positive")
        if size % (assoc * line_size):
            raise CacheGeometryError(
                f"{name}: size {size} is not a multiple of assoc*line_size "
                f"({assoc}*{line_size})"
            )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        self._sets = [[] for _ in range(self.num_sets)]
        self._dirty = [set() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- state inspection -------------------------------------------------

    def contains(self, line: int) -> bool:
        """True when ``line`` is resident (does not update LRU order)."""
        return line in self._sets[line % self.num_sets]

    def is_dirty(self, line: int) -> bool:
        """True when ``line`` is resident and has been written."""
        return line in self._dirty[line % self.num_sets]

    def resident_lines(self):
        """Iterate over all resident line numbers (diagnostics/tests)."""
        for ways in self._sets:
            yield from ways

    def dirty_lines(self):
        """Iterate over all dirty resident line numbers (diagnostics)."""
        for dirty in self._dirty:
            yield from dirty

    def sets(self):
        """Iterate ``(ways, dirty)`` per set, MRU-first, in index order.

        Exposed for the integrity checker; the returned structures are
        the live internals and must not be mutated by callers.
        """
        return zip(self._sets, self._dirty)

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(ways) for ways in self._sets)

    # -- mutation ----------------------------------------------------------

    def access(self, line: int, write: bool) -> AccessResult:
        """Reference ``line``; fill on miss; return hit/victim info."""
        idx = line % self.num_sets
        ways = self._sets[idx]
        if line in ways:
            self.hits += 1
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            if write:
                self._dirty[idx].add(line)
            return AccessResult(True)

        self.misses += 1
        victim = None
        victim_dirty = False
        if len(ways) >= self.assoc:
            victim = ways.pop()
            self.evictions += 1
            dirty = self._dirty[idx]
            if victim in dirty:
                dirty.remove(victim)
                victim_dirty = True
                self.writebacks += 1
        ways.insert(0, line)
        if write:
            self._dirty[idx].add(line)
        return AccessResult(False, victim, victim_dirty)

    def probe(self, line: int, write: bool) -> bool:
        """Like :meth:`access` but never fills on a miss.

        Used for no-allocate lookups (e.g. RAC probes for local data).
        Returns True on a hit, updating LRU order and dirtiness.
        """
        idx = line % self.num_sets
        ways = self._sets[idx]
        if line not in ways:
            self.misses += 1
            return False
        self.hits += 1
        if ways[0] != line:
            ways.remove(line)
            ways.insert(0, line)
        if write:
            self._dirty[idx].add(line)
        return True

    def fill(self, line: int, dirty: bool = False) -> AccessResult:
        """Install ``line`` without counting a demand access.

        Used for fills triggered by the protocol rather than the CPU
        (e.g. RAC allocation on remote fetch).  Returns eviction info.
        """
        idx = line % self.num_sets
        ways = self._sets[idx]
        if line in ways:
            if dirty:
                self._dirty[idx].add(line)
            return AccessResult(True)
        victim = None
        victim_dirty = False
        if len(ways) >= self.assoc:
            victim = ways.pop()
            self.evictions += 1
            dset = self._dirty[idx]
            if victim in dset:
                dset.remove(victim)
                victim_dirty = True
                self.writebacks += 1
        ways.insert(0, line)
        if dirty:
            self._dirty[idx].add(line)
        return AccessResult(False, victim, victim_dirty)

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line without touching LRU.

        Models dirty-status propagation from an upper-level cache (an
        L1 write hit does not generate an L2 access in a write-back
        hierarchy).  Returns True when the line was resident.
        """
        idx = line % self.num_sets
        if line in self._sets[idx]:
            self._dirty[idx].add(line)
            return True
        return False

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present; returns True when it was dirty."""
        idx = line % self.num_sets
        ways = self._sets[idx]
        if line not in ways:
            return False
        ways.remove(line)
        dirty = self._dirty[idx]
        if line in dirty:
            dirty.remove(line)
            return True
        return False

    def clean(self, line: int) -> bool:
        """Clear the dirty bit of ``line`` (downgrade); True if it was dirty."""
        idx = line % self.num_sets
        dirty = self._dirty[idx]
        if line in dirty:
            dirty.remove(line)
            return True
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"SetAssocCache({self.name!r}, size={self.size}, assoc={self.assoc}, "
            f"sets={self.num_sets})"
        )
