"""Remote Access Cache (RAC) — Section 6 of the paper.

A per-node cache that holds *only lines whose home is a remote node*.
The paper's design keeps the RAC data in a slice of local main memory
(leveraging the integrated memory controller's fast path) while its
tags live on-chip, so a RAC hit costs the same as a local memory access
(75 cycles) rather than a remote fetch (150+).

The RAC sits logically below the L2: it is probed only on L2 misses to
remote addresses, and allocated on remote fetches.  Because it is much
larger than the L2 it retains lines longer, which — as the paper shows
— converts some 2-hop misses into extra 3-hop misses elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memsys.cache import SetAssocCache
from repro.params import LINE_SIZE, MB


@dataclass
class RacLookup:
    """Outcome of probing the RAC on an L2 miss to a remote line."""

    hit: bool
    victim: Optional[int] = None
    victim_dirty: bool = False


class RemoteAccessCache:
    """An 8 MB 8-way remote access cache (paper default, scalable).

    The RAC is strictly for remote data; callers are responsible for
    never inserting lines whose home is the local node.
    """

    __slots__ = ("cache", "node_id", "hits", "probes")

    DEFAULT_SIZE = 8 * MB
    DEFAULT_ASSOC = 8

    def __init__(
        self,
        size: int = DEFAULT_SIZE,
        assoc: int = DEFAULT_ASSOC,
        line_size: int = LINE_SIZE,
        node_id: int = 0,
    ):
        self.cache = SetAssocCache(size, assoc, line_size, name=f"n{node_id}.rac")
        self.node_id = node_id
        self.hits = 0
        self.probes = 0

    def lookup(self, line: int, write: bool) -> bool:
        """Probe for a remote line on an L2 miss.

        Every L2 miss to a remote-homed line probes the RAC, so this
        is where the paper's RAC hit rate (42 %/30 %/<10 %) comes
        from.  A write hit marks the RAC copy dirty; the protocol
        layer performs the associated ownership/invalidation traffic.
        """
        self.probes += 1
        if self.cache.probe(line, write):
            self.hits += 1
            return True
        return False

    def allocate(self, line: int, dirty: bool = False) -> RacLookup:
        """Install a remotely fetched line; returns eviction info."""
        result = self.cache.fill(line, dirty)
        return RacLookup(result.hit, result.victim, result.victim_dirty)

    def invalidate(self, line: int) -> bool:
        """Externally invalidate a line; True when dirty data was lost."""
        return self.cache.invalidate(line)

    def reset_stats(self) -> None:
        """Zero the probe/hit counters (warmup/measurement boundary)."""
        self.hits = 0
        self.probes = 0

    def holds(self, line: int) -> bool:
        return self.cache.contains(line)

    def holds_dirty(self, line: int) -> bool:
        return self.cache.is_dirty(line)

    @property
    def hit_rate(self) -> float:
        """Fraction of probes that hit (the paper reports 42 %/30 %/<10 %)."""
        return self.hits / self.probes if self.probes else 0.0
