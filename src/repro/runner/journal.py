"""Campaign checkpoint journal: append-only, fsynced, CRC-checked.

A :class:`CampaignJournal` makes a campaign resumable across SIGINT,
SIGKILL, and power loss.  Every completed simulation appends one line —
the job's content hash plus its full serialized
:class:`~repro.core.results.RunResult`, guarded by a CRC-32 over the
result's canonical JSON (the same convention :class:`ResultCache` and
the trace archives use) — and the line is flushed and ``fsync``\\ ed
before the campaign moves on.  ``repro-oltp campaign --resume <path>``
then serves every journaled job without re-simulating it, and because
the journal stores the exact cache-format payload, the resumed
campaign's final output is bit-identical to an uninterrupted run.

Recovery is write-ahead-log shaped: on open, the journal replays its
lines, keeps every entry whose CRC verifies, counts and discards any
corrupt or torn line (a kill mid-``write`` can leave at most one), and
truncates the file back to the last good byte before appending again —
so a torn tail can never poison entries written after resume.

Only a *wrong* journal raises: a file that is not a campaign journal
at all, or one written by a future format version, is a user error
(:class:`~repro.integrity.errors.JournalFormatError`), not damage to
heal silently.

Service mode adds a second record kind: an **accept** line — the full
wire form of a job the server promised a client it would run — written
before dispatch, so a SIGKILLed server re-queues every unfinished
accepted job on restart (:meth:`CampaignJournal.pending_jobs`).
Campaign ``--resume`` readers skip accept lines transparently; the
line format version is unchanged because every reader of version 1
handles both kinds.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.results import RunResult
from repro.integrity.errors import JournalFormatError
from repro.runner.jobs import SimJob, canonical_json

#: Journal line-format version; bump on any layout change.
JOURNAL_FORMAT_VERSION = 1

#: Header magic distinguishing a journal from arbitrary JSON-lines.
JOURNAL_KIND = "repro-oltp-campaign-journal"


@dataclass
class JournalStats:
    """What the journal held at open, and what happened since."""

    entries_loaded: int = 0
    corrupt_skipped: int = 0
    appended: int = 0
    #: Accepted-job records recovered at open (service mode).
    accepts_loaded: int = 0
    #: Accepted-job records written since open.
    accepts_appended: int = 0

    def to_dict(self) -> dict:
        return {
            "entries_loaded": self.entries_loaded,
            "corrupt_skipped": self.corrupt_skipped,
            "appended": self.appended,
            "accepts_loaded": self.accepts_loaded,
            "accepts_appended": self.accepts_appended,
        }


class CampaignJournal:
    """Durable record of completed jobs, keyed by content hash."""

    def __init__(self, path: str):
        self.path = path
        self.stats = JournalStats()
        self._results: Dict[str, RunResult] = {}
        #: Accepted-but-not-necessarily-finished jobs, in accept order
        #: (service mode writes these so a killed server can re-queue
        #: unfinished work on restart).
        self._accepted: Dict[str, SimJob] = {}
        self._fh = None
        self._good_end = 0  # byte offset after the last valid line
        self._load()

    # -- recovery --------------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise JournalFormatError(
                f"cannot read journal {self.path!r}: {exc}") from None
        offset = 0
        first = True
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # Torn tail: a write died mid-line.  Discard it; the
                # file is truncated back to _good_end before appending.
                self.stats.corrupt_skipped += 1
                break
            line = raw[offset:newline]
            offset = newline + 1
            if first:
                self._check_header(line)
                first = False
                self._good_end = offset
                continue
            if self._absorb_line(line):
                self._good_end = offset
            else:
                self.stats.corrupt_skipped += 1

    def _check_header(self, line: bytes) -> None:
        try:
            header = json.loads(line)
            kind = header.get("kind")
            version = header.get("format")
        except (ValueError, AttributeError):
            kind = version = None
        if kind != JOURNAL_KIND:
            raise JournalFormatError(
                f"{self.path!r} is not a campaign journal"
            )
        if not isinstance(version, int) or version > JOURNAL_FORMAT_VERSION:
            raise JournalFormatError(
                f"journal {self.path!r} uses format {version!r}; this build "
                f"reads up to format {JOURNAL_FORMAT_VERSION}"
            )

    def _absorb_line(self, line: bytes) -> bool:
        """Validate one entry line; keep it if sound, else reject."""
        try:
            entry = json.loads(line)
            if "accept" in entry:
                return self._absorb_accept(entry)
            job_hash = entry["job"]
            payload = entry["result"]
            if entry["crc32"] != zlib.crc32(
                    canonical_json(payload).encode()):
                return False
            result = RunResult.from_dict(payload)
        except Exception:
            # Bad JSON, missing keys, type errors, a payload the
            # current RunResult cannot read — all mean "not a usable
            # checkpoint", never an exception.
            return False
        self._results[job_hash] = result
        self.stats.entries_loaded += 1
        return True

    def _absorb_accept(self, entry: dict) -> bool:
        """One accepted-job record: the spec of work promised but not
        yet finished when this line was written."""
        try:
            job_hash = entry["job"]
            payload = entry["accept"]
            if entry["crc32"] != zlib.crc32(
                    canonical_json(payload).encode()):
                return False
            job = SimJob.from_dict(payload)
        except Exception:
            return False
        if job.content_hash() != job_hash:
            # The spec no longer hashes to what was promised (edited
            # file, version drift): not a usable acceptance.
            return False
        self._accepted.setdefault(job_hash, job)
        self.stats.accepts_loaded += 1
        return True

    # -- reads -----------------------------------------------------------------

    def lookup(self, job: SimJob) -> Optional[RunResult]:
        """The journaled result for ``job``, or ``None``."""
        return self._results.get(job.content_hash())

    def lookup_hash(self, job_hash: str) -> Optional[RunResult]:
        """The journaled result for a content hash, or ``None``."""
        return self._results.get(job_hash)

    def accepted_jobs(self) -> List[SimJob]:
        """Every accepted job, in accept order (finished or not).

        A restarted service materializes its job table from this:
        hashes with a journaled result are born done, the rest
        re-queue, so clients polling an id across the restart keep
        getting answers instead of 404s.
        """
        return list(self._accepted.values())

    def pending_jobs(self) -> List[SimJob]:
        """Accepted jobs with no journaled result, in accept order.

        This is the service's restart contract: everything promised to
        a client (an ``accept`` record was fsynced) but unfinished when
        the process died must be re-queued on the next start.
        """
        return [job for job_hash, job in self._accepted.items()
                if job_hash not in self._results]

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, job: SimJob) -> bool:
        return job.content_hash() in self._results

    # -- writes ----------------------------------------------------------------

    def _ensure_open(self):
        if self._fh is not None:
            return self._fh
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            # Drop any torn tail before appending after it.
            self._fh = open(self.path, "r+b")
            self._fh.truncate(self._good_end)
            self._fh.seek(self._good_end)
        else:
            self._fh = open(self.path, "wb")
            header = canonical_json(
                {"format": JOURNAL_FORMAT_VERSION, "kind": JOURNAL_KIND}
            )
            self._fh.write(header.encode() + b"\n")
        return self._fh

    def accept(self, job: SimJob) -> None:
        """Durably record that ``job`` was accepted for execution.

        Idempotent by hash; a job that already has a journaled result
        needs no acceptance.  Once this returns, a crash at any later
        instant leaves a record from which the job can be re-queued.
        """
        job_hash = job.content_hash()
        if job_hash in self._accepted or job_hash in self._results:
            return
        payload = job.to_dict()
        entry = {
            "accept": payload,
            "job": job_hash,
            "label": job.label,
            "crc32": zlib.crc32(canonical_json(payload).encode()),
        }
        fh = self._ensure_open()
        fh.write(canonical_json(entry).encode() + b"\n")
        fh.flush()
        os.fsync(fh.fileno())
        self._accepted[job_hash] = job
        self.stats.accepts_appended += 1

    def append(self, job: SimJob, result: RunResult) -> None:
        """Durably record ``result`` for ``job`` (idempotent by hash).

        The line is flushed and fsynced before returning: once the
        runner moves on, no kill can un-finish this job.
        """
        job_hash = job.content_hash()
        if job_hash in self._results:
            return
        payload = result.to_dict()
        entry = {
            "job": job_hash,
            "label": job.label,
            "crc32": zlib.crc32(canonical_json(payload).encode()),
            "result": payload,
        }
        fh = self._ensure_open()
        fh.write(canonical_json(entry).encode() + b"\n")
        fh.flush()
        os.fsync(fh.fileno())
        self._results[job_hash] = result
        self.stats.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            fh, self._fh = self._fh, None
            try:
                fh.close()
            except OSError:
                pass

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
