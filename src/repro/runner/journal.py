"""Campaign checkpoint journal: append-only, fsynced, CRC-checked.

A :class:`CampaignJournal` makes a campaign resumable across SIGINT,
SIGKILL, and power loss.  Every completed simulation appends one line —
the job's content hash plus its full serialized
:class:`~repro.core.results.RunResult`, guarded by a CRC-32 over the
result's canonical JSON (the same convention :class:`ResultCache` and
the trace archives use) — and the line is flushed and ``fsync``\\ ed
before the campaign moves on.  ``repro-oltp campaign --resume <path>``
then serves every journaled job without re-simulating it, and because
the journal stores the exact cache-format payload, the resumed
campaign's final output is bit-identical to an uninterrupted run.

Recovery is write-ahead-log shaped: on open, the journal replays its
lines, keeps every entry whose CRC verifies, counts and discards any
corrupt or torn line (a kill mid-``write`` can leave at most one), and
truncates the file back to the last good byte before appending again —
so a torn tail can never poison entries written after resume.

Only a *wrong* journal raises: a file that is not a campaign journal
at all, or one written by a future format version, is a user error
(:class:`~repro.integrity.errors.JournalFormatError`), not damage to
heal silently.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.results import RunResult
from repro.integrity.errors import JournalFormatError
from repro.runner.jobs import SimJob, canonical_json

#: Journal line-format version; bump on any layout change.
JOURNAL_FORMAT_VERSION = 1

#: Header magic distinguishing a journal from arbitrary JSON-lines.
JOURNAL_KIND = "repro-oltp-campaign-journal"


@dataclass
class JournalStats:
    """What the journal held at open, and what happened since."""

    entries_loaded: int = 0
    corrupt_skipped: int = 0
    appended: int = 0

    def to_dict(self) -> dict:
        return {
            "entries_loaded": self.entries_loaded,
            "corrupt_skipped": self.corrupt_skipped,
            "appended": self.appended,
        }


class CampaignJournal:
    """Durable record of completed jobs, keyed by content hash."""

    def __init__(self, path: str):
        self.path = path
        self.stats = JournalStats()
        self._results: Dict[str, RunResult] = {}
        self._fh = None
        self._good_end = 0  # byte offset after the last valid line
        self._load()

    # -- recovery --------------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise JournalFormatError(
                f"cannot read journal {self.path!r}: {exc}") from None
        offset = 0
        first = True
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # Torn tail: a write died mid-line.  Discard it; the
                # file is truncated back to _good_end before appending.
                self.stats.corrupt_skipped += 1
                break
            line = raw[offset:newline]
            offset = newline + 1
            if first:
                self._check_header(line)
                first = False
                self._good_end = offset
                continue
            if self._absorb_line(line):
                self._good_end = offset
            else:
                self.stats.corrupt_skipped += 1

    def _check_header(self, line: bytes) -> None:
        try:
            header = json.loads(line)
            kind = header.get("kind")
            version = header.get("format")
        except (ValueError, AttributeError):
            kind = version = None
        if kind != JOURNAL_KIND:
            raise JournalFormatError(
                f"{self.path!r} is not a campaign journal"
            )
        if not isinstance(version, int) or version > JOURNAL_FORMAT_VERSION:
            raise JournalFormatError(
                f"journal {self.path!r} uses format {version!r}; this build "
                f"reads up to format {JOURNAL_FORMAT_VERSION}"
            )

    def _absorb_line(self, line: bytes) -> bool:
        """Validate one entry line; keep it if sound, else reject."""
        try:
            entry = json.loads(line)
            job_hash = entry["job"]
            payload = entry["result"]
            if entry["crc32"] != zlib.crc32(
                    canonical_json(payload).encode()):
                return False
            result = RunResult.from_dict(payload)
        except Exception:
            # Bad JSON, missing keys, type errors, a payload the
            # current RunResult cannot read — all mean "not a usable
            # checkpoint", never an exception.
            return False
        self._results[job_hash] = result
        self.stats.entries_loaded += 1
        return True

    # -- reads -----------------------------------------------------------------

    def lookup(self, job: SimJob) -> Optional[RunResult]:
        """The journaled result for ``job``, or ``None``."""
        return self._results.get(job.content_hash())

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, job: SimJob) -> bool:
        return job.content_hash() in self._results

    # -- writes ----------------------------------------------------------------

    def _ensure_open(self):
        if self._fh is not None:
            return self._fh
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            # Drop any torn tail before appending after it.
            self._fh = open(self.path, "r+b")
            self._fh.truncate(self._good_end)
            self._fh.seek(self._good_end)
        else:
            self._fh = open(self.path, "wb")
            header = canonical_json(
                {"format": JOURNAL_FORMAT_VERSION, "kind": JOURNAL_KIND}
            )
            self._fh.write(header.encode() + b"\n")
        return self._fh

    def append(self, job: SimJob, result: RunResult) -> None:
        """Durably record ``result`` for ``job`` (idempotent by hash).

        The line is flushed and fsynced before returning: once the
        runner moves on, no kill can un-finish this job.
        """
        job_hash = job.content_hash()
        if job_hash in self._results:
            return
        payload = result.to_dict()
        entry = {
            "job": job_hash,
            "label": job.label,
            "crc32": zlib.crc32(canonical_json(payload).encode()),
            "result": payload,
        }
        fh = self._ensure_open()
        fh.write(canonical_json(entry).encode() + b"\n")
        fh.flush()
        os.fsync(fh.fileno())
        self._results[job_hash] = result
        self.stats.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            fh, self._fh = self._fh, None
            try:
                fh.close()
            except OSError:
                pass

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
