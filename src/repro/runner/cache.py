"""On-disk result cache: JSON ``RunResult`` entries keyed by job hash.

Each entry is one file, ``<job-hash>.json``, holding the cache format
version, the job hash it answers for, and the serialized result guarded
by a CRC-32 over its canonical JSON encoding — the same
version-plus-checksum convention the trace archives use
(:mod:`repro.trace.storage`).

Loading is **fail-soft by design**: any unreadable, corrupt, truncated,
stale-format, or wrong-hash entry makes :meth:`ResultCache.load` return
``None`` (and counts it in :class:`CacheStats`), so the runner simply
re-simulates the point and overwrites the bad entry.  A damaged cache
can cost wall-clock time, never correctness — and never an exception.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.core.results import RunResult
from repro.obs import current_metrics
from repro.runner.jobs import SimJob, canonical_json

#: Entry format version; bump on any layout change.
CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Outcome counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    #: Entries rejected as unreadable / checksum-failed / stale-format;
    #: every rejection is also counted as a miss.
    rejected: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of simulation results under ``root``."""

    def __init__(self, root: str):
        self.root = root
        self.stats = CacheStats()

    def path_for(self, job: SimJob) -> str:
        return os.path.join(self.root, f"{job.content_hash()}.json")

    # -- read ------------------------------------------------------------------

    def load(self, job: SimJob) -> Optional[RunResult]:
        """The cached result for ``job``, or ``None`` on any miss.

        Never raises for a bad entry: deserialization problems of every
        kind are demoted to a miss so the caller re-simulates.
        """
        result = self._load_checked(job)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def _load_checked(self, job: SimJob) -> Optional[RunResult]:
        path = self.path_for(job)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._reject()
            return None
        try:
            if entry.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("stale cache format")
            if entry.get("job") != job.content_hash():
                raise ValueError("job hash mismatch")
            payload = entry["result"]
            crc = zlib.crc32(canonical_json(payload).encode())
            if entry.get("crc32") != crc:
                raise ValueError("checksum mismatch")
            return RunResult.from_dict(payload)
        except Exception:
            # Anything wrong with the entry — taxonomy above plus
            # missing keys, type errors, ConfigError from a tampered
            # machine payload — means "not cached".
            self._reject()
            return None

    def _reject(self) -> None:
        self.stats.rejected += 1
        current_metrics().count("cache.corrupt_skipped")

    # -- write -----------------------------------------------------------------

    def store(self, job: SimJob, result: RunResult) -> str:
        """Persist ``result`` for ``job`` atomically; return the path.

        Crash-safe: the entry is written to a temp file, fsynced, and
        renamed over the target, so a kill at any instant leaves either
        the old entry or the new one — never a torn file.
        """
        os.makedirs(self.root, exist_ok=True)
        payload = result.to_dict()
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "job": job.content_hash(),
            "label": job.label,
            "crc32": zlib.crc32(canonical_json(payload).encode()),
            "result": payload,
        }
        path = self.path_for(job)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path
