"""Campaign telemetry: per-job timing, cache accounting, progress/ETA.

The runner records one :class:`JobRecord` per job (wall-clock seconds,
whether the result came from the cache or a simulation, which batch —
usually a figure — it belonged to).  :class:`CampaignTelemetry`
aggregates them into the per-figure table and the one-line
machine-greppable summary the CLI prints::

    campaign summary: jobs=42 simulated=0 cache_hits=42 hit_rate=100% workers=4 wall=1.3s

CI greps ``simulated=0`` on a warm cache; the benchmark harness dumps
:meth:`CampaignTelemetry.to_dict` into ``BENCH_campaign.json``.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import IO, List, Optional

SOURCE_CACHE = "cache"
SOURCE_SIMULATED = "simulated"
SOURCE_JOURNAL = "journal"

# -- terminal capability ------------------------------------------------------

#: Environment override: any non-empty value disables ANSI everywhere,
#: even on a TTY (service logs, CI steps that allocate a pty, ...).
NO_ANSI_ENV = "REPRO_NO_ANSI"

_RESET = "\x1b[0m"
_DIM = "\x1b[2m"
_GREEN = "\x1b[32m"
_CYAN = "\x1b[36m"
_BOLD = "\x1b[1m"


def ansi_enabled(stream) -> bool:
    """Whether ``stream`` should receive ANSI styling.

    True only for a real TTY with :data:`NO_ANSI_ENV` unset — pipes,
    files, service logs, and ``REPRO_NO_ANSI=1`` all get plain text,
    so redirected output never carries escape codes or carriage
    returns.
    """
    if os.environ.get(NO_ANSI_ENV):
        return False
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty and isatty())
    except (ValueError, OSError):  # closed or detached stream
        return False


def _style(text: str, code: str, enabled: bool) -> str:
    return f"{code}{text}{_RESET}" if enabled else text


@dataclass
class ResilienceStats:
    """Supervision counters for one campaign: what went wrong, and how
    the executor absorbed it.  Shared between the runner's telemetry
    and the :class:`~repro.runner.supervisor.SupervisedExecutor`; the
    same counts are mirrored into the ``obs`` metrics registry under
    ``campaign.*`` names."""

    #: Job re-executions scheduled after a transient failure.
    retries: int = 0
    #: Jobs that blew their wall-clock deadline.
    timeouts: int = 0
    #: Worker-pool breakages observed (dead worker processes).
    crashes: int = 0
    #: Pool rebuilds (after a crash or a deadline kill).
    respawns: int = 0
    #: In-flight bystander jobs re-queued, uncharged, by a respawn.
    requeued: int = 0
    #: Worker results rejected by the envelope checksum.
    corrupt_results: int = 0
    #: Jobs that exhausted every retry and failed terminally.
    failures: int = 0

    @property
    def eventful(self) -> bool:
        """True when any supervision event fired (worth a summary)."""
        return any((self.retries, self.timeouts, self.crashes,
                    self.respawns, self.requeued, self.corrupt_results,
                    self.failures))

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "requeued": self.requeued,
            "corrupt_results": self.corrupt_results,
            "failures": self.failures,
        }


@dataclass
class JobRecord:
    """One completed job: identity, provenance, and cost."""

    label: str
    batch: str
    job_hash: str
    seconds: float
    source: str  # SOURCE_CACHE or SOURCE_SIMULATED
    #: Replay engine the job's configuration resolves to ("fast",
    #: "general", "vectorized" or "vectorized-mp").  Provenance only:
    #: the engine is not part of the job's content hash, because all
    #: engines are value-identical and cached results stay valid
    #: across them.
    engine: str = ""

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "batch": self.batch,
            "job_hash": self.job_hash,
            "seconds": round(self.seconds, 6),
            "source": self.source,
            "engine": self.engine,
        }


@dataclass
class BatchRecord:
    """One named batch (normally a figure): its jobs' wall-clock."""

    name: str
    seconds: float = 0.0


@dataclass
class CampaignTelemetry:
    """Aggregated accounting for one campaign run."""

    workers: int = 1
    records: List[JobRecord] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    started_at: float = field(default_factory=time.perf_counter)
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    # -- recording -------------------------------------------------------------

    def record(self, label: str, batch: str, job_hash: str, seconds: float,
               source: str, engine: str = "") -> JobRecord:
        rec = JobRecord(label, batch, job_hash, seconds, source, engine)
        self.records.append(rec)
        return rec

    def end_batch(self, name: str, seconds: float) -> None:
        self.batches.append(BatchRecord(name, seconds))

    # -- aggregates ------------------------------------------------------------

    @property
    def total_jobs(self) -> int:
        return len(self.records)

    @property
    def simulated(self) -> int:
        return sum(1 for r in self.records if r.source == SOURCE_SIMULATED)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.source == SOURCE_CACHE)

    @property
    def journal_hits(self) -> int:
        """Jobs served from the resume journal instead of simulating."""
        return sum(1 for r in self.records if r.source == SOURCE_JOURNAL)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0

    @property
    def simulated_seconds(self) -> float:
        """Summed worker-side simulation time (> wall when parallel)."""
        return sum(r.seconds for r in self.records
                   if r.source == SOURCE_SIMULATED)

    @property
    def wall_seconds(self) -> float:
        return time.perf_counter() - self.started_at

    def mean_sim_seconds(self) -> float:
        n = self.simulated
        return self.simulated_seconds / n if n else 0.0

    # -- rendering -------------------------------------------------------------

    def summary_line(self) -> str:
        line = (
            f"campaign summary: jobs={self.total_jobs} "
            f"simulated={self.simulated} cache_hits={self.cache_hits} "
            f"hit_rate={100 * self.hit_rate:.0f}% workers={self.workers} "
            f"wall={self.wall_seconds:.1f}s"
        )
        if self.journal_hits:
            line += f" journal_hits={self.journal_hits}"
        if self.resilience.eventful:
            r = self.resilience
            line += (
                f" retries={r.retries} timeouts={r.timeouts} "
                f"respawns={r.respawns} failures={r.failures}"
            )
        return line

    def render(self, color: bool = False) -> str:
        """Per-batch table plus the summary line.

        Records are grouped by batch in one pass (the table used to
        rescan every record per batch row, O(batches × records)); the
        ``served`` column counts jobs answered without simulating
        (result cache, resume journal, or hash-duplicates); the
        ``engine`` column shows each batch's dominant replay engine
        (ties break alphabetically, ``-`` when no record names one).

        ``color`` opts into ANSI styling of the header and summary; it
        defaults to off and callers should gate it on
        :func:`ansi_enabled` so logs and pipes stay escape-free.
        """
        grouped: dict = {}
        for r in self.records:
            agg = grouped.get(r.batch)
            if agg is None:
                agg = grouped[r.batch] = {"jobs": 0, "sim": 0, "engines": {}}
            agg["jobs"] += 1
            if r.source == SOURCE_SIMULATED:
                agg["sim"] += 1
            if r.engine:
                engines = agg["engines"]
                engines[r.engine] = engines.get(r.engine, 0) + 1
        lines = [
            _style("campaign telemetry", _BOLD, color),
            _style(
                f"  {'batch':12s} {'jobs':>5s} {'sim':>5s} {'served':>6s} "
                f"{'wall':>8s} {'engine':>13s}",
                _DIM, color,
            ),
        ]
        for batch in self.batches:
            agg = grouped.get(batch.name, {"jobs": 0, "sim": 0, "engines": {}})
            engines = agg["engines"]
            dominant = (
                sorted(engines.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]
                if engines else "-"
            )
            lines.append(
                f"  {batch.name:12s} {agg['jobs']:5d} {agg['sim']:5d} "
                f"{agg['jobs'] - agg['sim']:6d} {batch.seconds:7.1f}s "
                f"{dominant:>13s}"
            )
        lines.append(_style(self.summary_line(), _BOLD, color))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "jobs": self.total_jobs,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "resilience": self.resilience.to_dict(),
            "hit_rate": round(self.hit_rate, 4),
            "simulated_seconds": round(self.simulated_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "batches": [
                {"name": b.name, "seconds": round(b.seconds, 3)}
                for b in self.batches
            ],
            "records": [r.to_dict() for r in self.records],
        }


class ProgressPrinter:
    """Streams one line per finished job, with a running ETA.

    The ETA extrapolates the mean simulated-job cost over the jobs
    still expected to *simulate* in the current batch, divided by the
    worker count.  The runner resolves its cache pass before the batch
    starts and passes ``expected_sim``, so jobs it already knows will
    be served from the cache (or deduplicated by hash) never inflate
    the estimate — a warm-cache batch shows no phantom ETA.
    """

    def __init__(self, telemetry: CampaignTelemetry,
                 stream: Optional[IO[str]] = None,
                 ansi: Optional[bool] = None):
        self.telemetry = telemetry
        self.stream = stream if stream is not None else sys.stderr
        #: ANSI styling: auto-detected from the stream (TTY only, see
        #: :func:`ansi_enabled`) unless forced by the caller.  Plain
        #: newline-terminated lines either way — non-TTY consumers
        #: (service logs, CI) never see escape codes.
        self.ansi = ansi_enabled(self.stream) if ansi is None else bool(ansi)
        self._batch = ""
        self._total = 0
        self._done = 0
        self._expected_sim = 0
        self._sim_done = 0

    def start_batch(self, name: str, total_jobs: int,
                    expected_sim: Optional[int] = None) -> None:
        self._batch = name
        self._total = total_jobs
        self._done = 0
        self._expected_sim = (
            total_jobs if expected_sim is None else expected_sim
        )
        self._sim_done = 0

    def job_done(self, record: JobRecord) -> None:
        self._done += 1
        if record.source == SOURCE_SIMULATED:
            self._sim_done += 1
        remaining = max(0, self._total - self._done)
        remaining_sim = min(
            max(0, self._expected_sim - self._sim_done), remaining
        )
        eta = (remaining_sim * self.telemetry.mean_sim_seconds()
               / max(1, self.telemetry.workers))
        suffix = (
            _style(f" | eta {eta:.1f}s", _DIM, self.ansi)
            if remaining_sim and eta else ""
        )
        source = _style(
            record.source,
            _CYAN if record.source == SOURCE_SIMULATED else _GREEN,
            self.ansi,
        )
        counter = _style(
            f"[{self._batch} {self._done}/{self._total}]", _DIM, self.ansi
        )
        print(
            f"  {counter} "
            f"{record.label}: {record.seconds:.2f}s ({source}){suffix}",
            file=self.stream,
        )


class NullProgress:
    """Progress sink that discards everything (quiet mode, tests)."""

    def start_batch(self, name: str, total_jobs: int,
                    expected_sim: Optional[int] = None) -> None:
        pass

    def job_done(self, record: JobRecord) -> None:
        pass
