"""The campaign executor: cache-first, supervised, order-preserving.

:class:`CampaignRunner` turns a list of :class:`~repro.runner.jobs.SimJob`
into a list of :class:`~repro.core.results.RunResult` with four
guarantees:

* **Determinism** — results come back in job order regardless of
  worker completion order, and a result that travelled through a
  worker (or the cache, or the journal) is value-identical to one
  simulated inline: the JSON round trip is exact, so parallel output
  is bit-identical to serial.
* **Cache first** — with a :class:`~repro.runner.cache.ResultCache`
  attached, unchanged points are never re-simulated; corrupt entries
  silently demote to misses.  With a
  :class:`~repro.runner.journal.CampaignJournal` attached, completed
  jobs survive SIGINT/SIGKILL and are served on resume.
* **Trace sharing** — before forking, every distinct
  :class:`~repro.runner.tracestore.TraceSpec` is spilled to the trace
  archive once; workers reload it through the same
  :class:`~repro.runner.tracestore.TraceStore` code path the drivers
  use, instead of pickling multi-megabyte traces per job.
* **Fault tolerance** — parallel batches run through a
  :class:`~repro.runner.supervisor.SupervisedExecutor`: crashed or
  hung workers are respawned and their in-flight jobs re-queued,
  transient errors retry with backoff, and a job that fails terminally
  surfaces as a structured
  :class:`~repro.integrity.errors.CampaignJobError` *after* every
  successful result of the batch has been persisted.

The experiment drivers do not talk to a runner directly: they call
:func:`run_simulations`, which routes through the runner installed by
:func:`use_runner` (the ``campaign`` CLI verb) or falls back to inline
serial simulation — the historical behaviour — when none is active.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import IO, List, Optional, Sequence

from repro.core.results import RunResult
from repro.core.system import System, simulate
from repro.integrity.errors import CampaignJobError
from repro.obs import current_metrics, current_tracer
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob
from repro.runner.journal import CampaignJournal
from repro.runner.supervisor import (
    JobFailed,
    RetryPolicy,
    SupervisedExecutor,
)
from repro.runner.telemetry import (
    SOURCE_CACHE,
    SOURCE_JOURNAL,
    SOURCE_SIMULATED,
    CampaignTelemetry,
    NullProgress,
    ProgressPrinter,
)
from repro.runner.tracestore import TraceStore, default_trace_store

__all__ = [
    "CampaignRunner",
    "JobFailed",
    "active_runner",
    "run_simulations",
    "simulate_spec",
    "use_runner",
]


class CampaignRunner:
    """Executes job batches against a supervised pool and a result cache.

    ``jobs`` is the worker count (1 = in-process serial, still
    cache-aware).  ``cache`` is optional; without it every job
    simulates.  ``journal`` is an optional
    :class:`~repro.runner.journal.CampaignJournal`: completed jobs are
    checkpointed into it and served from it first, making campaigns
    resumable.  ``trace_store`` defaults to the process-wide store.
    ``progress`` streams per-job lines to ``stream`` (stderr).

    Supervision knobs (parallel batches): ``job_timeout`` is the
    per-job wall-clock deadline in seconds (``None`` = unbounded),
    ``retry`` the :class:`~repro.runner.supervisor.RetryPolicy`
    (``max_retries`` is a shorthand overriding just its retry count),
    and ``chaos`` an optional ``(fault_plans, token_dir)`` pair arming
    the chaos harness in every worker.

    ``shared_memory`` (default on) publishes each distinct workload
    into a :class:`~repro.runner.shm.SharedTraceArena` segment before
    a parallel batch, so all workers replay one mapping instead of N
    per-worker archive loads; a failed publish falls back to the
    archive path for that workload, never the whole batch.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 trace_store: Optional[TraceStore] = None,
                 progress: bool = False, stream: Optional[IO[str]] = None,
                 journal: Optional[CampaignJournal] = None,
                 job_timeout: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 max_respawns: int = 3,
                 chaos=None,
                 shared_memory: bool = True):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.journal = journal
        self.trace_store = trace_store or default_trace_store()
        self.telemetry = CampaignTelemetry(workers=self.jobs)
        if retry is None:
            retry = RetryPolicy() if max_retries is None else RetryPolicy(
                max_retries=max_retries)
        elif max_retries is not None:
            raise ValueError("pass either retry or max_retries, not both")
        self.retry = retry
        self.job_timeout = job_timeout
        self.max_respawns = max_respawns
        self.chaos = chaos
        self._progress = (
            ProgressPrinter(self.telemetry, stream) if progress
            else NullProgress()
        )
        self._batch = ""
        self._supervisor: Optional[SupervisedExecutor] = None
        self.shared_memory = shared_memory
        self._arena = None

    # -- lifecycle -------------------------------------------------------------

    def begin_batch(self, name: str) -> None:
        """Tag subsequent jobs with ``name`` (normally a figure id)."""
        self._batch = name

    def _ensure_supervisor(self) -> SupervisedExecutor:
        if self._supervisor is None:
            self._supervisor = SupervisedExecutor(
                self.jobs, self.trace_store,
                job_timeout=self.job_timeout,
                retry=self.retry,
                max_respawns=self.max_respawns,
                chaos=self.chaos,
                stats=self.telemetry.resilience,
            )
        return self._supervisor

    def close(self) -> None:
        """Shut the worker pool down and unlink any shared segments
        (idempotent)."""
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None
        if self._arena is not None:
            # After the pool is gone, so no worker loses its mapping
            # mid-replay.
            self._arena.cleanup()
            self._arena = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -------------------------------------------------------------

    def run_jobs(self, jobs: Sequence[SimJob]) -> List[RunResult]:
        """Run every job; results are returned in submission order.

        Raises :class:`~repro.integrity.errors.CampaignJobError` if any
        job fails terminally — after every *successful* job of the
        batch has been recorded, cached, and journaled, so a retry of
        the batch repeats only the failures.
        """
        jobs = list(jobs)
        tracer = current_tracer()
        results: List[Optional[RunResult]] = [None] * len(jobs)

        # Journal and cache pass first: serve every already-known
        # point, so the progress ETA can be told how many simulations
        # actually remain before any job line prints.
        served: List[tuple] = []  # (index, source)
        pending: List[int] = []
        for i, job in enumerate(jobs):
            t0 = time.perf_counter()
            known = None
            source = SOURCE_JOURNAL
            if self.journal is not None:
                known = self.journal.lookup(job)
            if known is None and self.cache is not None:
                known = self.cache.load(job)
                source = SOURCE_CACHE
            if known is None:
                pending.append(i)
                continue
            results[i] = known
            if source == SOURCE_JOURNAL:
                current_metrics().count("campaign.journal_hits")
            if tracer.enabled:
                tracer.add_span(
                    "campaign.job", t0, time.perf_counter() - t0,
                    job=job.label, hash=job.content_hash(),
                    engine=System.select_engine(job.machine, check=job.check),
                    source=source,
                )
            served.append((i, source))

        # Duplicate pending points simulate once, so the expected
        # simulation count is the number of distinct hashes.
        expected_sim = len({jobs[i].content_hash() for i in pending})
        self._progress.start_batch(self._batch, len(jobs), expected_sim)
        for i, source in served:
            self._record(jobs[i], 0.0, source)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._run_parallel(jobs, pending, results)
            else:
                self._run_serial(jobs, pending, results)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _record(self, job: SimJob, seconds: float, source: str) -> None:
        # Engine provenance: which replay path this configuration
        # resolves to.  Depends only on the machine and run options, so
        # it is equally meaningful for cached and simulated results.
        engine = System.select_engine(job.machine, check=job.check)
        rec = self.telemetry.record(
            job.label, self._batch, job.content_hash(), seconds, source,
            engine,
        )
        self._progress.job_done(rec)

    def _persist(self, job: SimJob, result: RunResult) -> None:
        """Checkpoint a fresh simulation into the cache and journal."""
        if self.cache is not None:
            self.cache.store(job, result)
        if self.journal is not None:
            self.journal.append(job, result)

    def _run_serial(self, jobs: Sequence[SimJob], pending: List[int],
                    results: List[Optional[RunResult]]) -> None:
        tracer = current_tracer()
        for i in pending:
            job = jobs[i]
            trace = self.trace_store.get(job.spec)
            start = time.perf_counter()
            if tracer.enabled:
                with tracer.span("campaign.job", job=job.label,
                                 hash=job.content_hash(),
                                 engine=System.select_engine(
                                     job.machine, check=job.check),
                                 source=SOURCE_SIMULATED):
                    result = simulate(job.machine, trace, check=job.check)
            else:
                result = simulate(job.machine, trace, check=job.check)
            seconds = time.perf_counter() - start
            results[i] = result
            self._persist(job, result)
            self._record(job, seconds, SOURCE_SIMULATED)

    def _publish_shared(self, specs) -> Optional[dict]:
        """Map each spec to a shared-memory handle (best effort).

        A spec whose publish fails (e.g. ``/dev/shm`` exhausted) is
        simply absent from the map: its jobs take the per-worker
        archive path instead.
        """
        if not self.shared_memory:
            return None
        if self._arena is None:
            from repro.runner.shm import SharedTraceArena

            self._arena = SharedTraceArena()
        handles = {}
        for spec in specs:
            try:
                handles[spec] = self._arena.publish(spec, self.trace_store)
            except Exception:
                current_metrics().count("campaign.shm_fallbacks")
        return handles or None

    def _run_parallel(self, jobs: Sequence[SimJob], pending: List[int],
                      results: List[Optional[RunResult]]) -> None:
        # Materialize each distinct workload into the shared archive
        # once, so no worker pays for trace generation.  The archive
        # stays the durable fallback even when the same workloads are
        # also published to shared memory below.
        distinct_specs = {jobs[i].spec for i in pending}
        if self.trace_store.spill_dir:
            for spec in distinct_specs:
                self.trace_store.ensure_archived(spec)
        shm_handles = self._publish_shared(distinct_specs)

        tracer = current_tracer()
        metrics = current_metrics()
        with_obs = tracer.enabled or metrics.enabled

        # Duplicate jobs (the same point appearing twice in a batch)
        # simulate once and fan out by hash.
        by_hash: dict = {}
        for i in pending:
            by_hash.setdefault(jobs[i].content_hash(), []).append(i)
        distinct = [jobs[indices[0]] for indices in by_hash.values()]

        def on_result(job: SimJob, result: RunResult, seconds: float,
                      obs) -> None:
            # Fires the moment a job completes: persist before anything
            # else, so a kill after this instant cannot lose the work.
            if obs is not None:
                tracer.absorb(obs["spans"])
                metrics.absorb(obs["metrics"])
            self._persist(job, result)
            self._record(job, seconds, SOURCE_SIMULATED)

        outcomes = self._ensure_supervisor().run(
            distinct, with_obs=with_obs, on_result=on_result,
            shm_handles=shm_handles)

        failures = []
        for outcome in outcomes:
            indices = by_hash[outcome.job.content_hash()]
            if outcome.failure is not None:
                failures.append(outcome.failure)
                continue
            for j, i in enumerate(indices):
                if j:  # hash-level duplicates are free, like cache hits
                    self._record(jobs[i], 0.0, SOURCE_CACHE)
                results[i] = outcome.result
        if failures:
            raise CampaignJobError(failures)


# -- the active runner (driver-facing indirection) -----------------------------

_ACTIVE: Optional[CampaignRunner] = None


def active_runner() -> Optional[CampaignRunner]:
    """The runner installed by :func:`use_runner`, if any."""
    return _ACTIVE


@contextmanager
def use_runner(runner: CampaignRunner):
    """Route :func:`run_simulations` through ``runner`` for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = runner
    try:
        yield runner
    finally:
        _ACTIVE = previous


def run_simulations(jobs: Sequence[SimJob]) -> List[RunResult]:
    """Run a batch of jobs through the active runner.

    With no active runner this is the historical serial path: each
    trace materializes through the process-wide store and simulates
    inline, with no caching and no extra processes.
    """
    runner = _ACTIVE
    if runner is not None:
        return runner.run_jobs(jobs)
    store = default_trace_store()
    return [
        simulate(job.machine, store.get(job.spec), check=job.check)
        for job in jobs
    ]


def simulate_spec(job: SimJob) -> RunResult:
    """Convenience wrapper: one job through the active runner."""
    return run_simulations([job])[0]
