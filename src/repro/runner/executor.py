"""The campaign executor: cache-first, multiprocess, order-preserving.

:class:`CampaignRunner` turns a list of :class:`~repro.runner.jobs.SimJob`
into a list of :class:`~repro.core.results.RunResult` with three
guarantees:

* **Determinism** — results come back in job order regardless of
  worker completion order, and a result that travelled through a
  worker (or the cache) is value-identical to one simulated inline:
  the JSON round trip is exact, so parallel output is bit-identical
  to serial.
* **Cache first** — with a :class:`~repro.runner.cache.ResultCache`
  attached, unchanged points are never re-simulated; corrupt entries
  silently demote to misses.
* **Trace sharing** — before forking, every distinct
  :class:`~repro.runner.tracestore.TraceSpec` is spilled to the trace
  archive once; workers reload it through the same
  :class:`~repro.runner.tracestore.TraceStore` code path the drivers
  use, instead of pickling multi-megabyte traces per job.

The experiment drivers do not talk to a runner directly: they call
:func:`run_simulations`, which routes through the runner installed by
:func:`use_runner` (the ``campaign`` CLI verb) or falls back to inline
serial simulation — the historical behaviour — when none is active.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import IO, Dict, List, Optional, Sequence

from repro.core.results import RunResult
from repro.core.system import System, simulate
from repro.obs import current_metrics, current_tracer
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob
from repro.runner.telemetry import (
    SOURCE_CACHE,
    SOURCE_SIMULATED,
    CampaignTelemetry,
    NullProgress,
    ProgressPrinter,
)
from repro.runner.tracestore import (
    DEFAULT_CAPACITY,
    TraceStore,
    default_trace_store,
)


class JobFailed(RuntimeError):
    """A worker-side simulation failure, flattened to a picklable string.

    Raised in place of the original error because several
    :mod:`repro.integrity` exception types carry structured payloads
    that do not survive the pickle round trip out of a worker process.
    """


# -- worker-process entry points (module level: must be picklable) -------------

def _worker_init(spill_dir: Optional[str], capacity: int) -> None:
    """Configure the worker's process-wide trace store at pool start."""
    store = default_trace_store()
    store.spill_dir = spill_dir
    store.capacity = max(capacity, store.capacity)


def _worker_run(job: SimJob, with_obs: bool = False):
    """Simulate one job; return ``(seconds, result_dict, obs_payload)``.

    Results cross the process boundary as :meth:`RunResult.to_dict`
    payloads — the exact representation the cache stores — so the
    parent reconstructs identical values either way.

    When the parent has observability enabled (``with_obs``), the
    worker traces and meters the run locally and ships the serialized
    records back (``{"spans": [...], "metrics": {...}}``) for the
    parent to absorb; the worker's real ``pid`` rides along in each
    span, so stitched campaign traces show one process track per
    worker.  Otherwise the payload slot is ``None`` and the worker
    runs at zero observability cost.
    """
    from repro.integrity.errors import ReproError

    trace = default_trace_store().get(job.spec)
    if not with_obs:
        start = time.perf_counter()
        try:
            result = simulate(job.machine, trace, check=job.check)
        except ReproError as exc:
            raise JobFailed(
                f"{job.label}: {type(exc).__name__}: {exc}"
            ) from None
        return time.perf_counter() - start, result.to_dict(), None

    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

    engine = System.select_engine(job.machine, check=job.check)
    tracer = Tracer(tid="worker")
    registry = MetricsRegistry()
    start = time.perf_counter()
    try:
        with use_tracer(tracer), use_metrics(registry):
            with tracer.span("campaign.job", job=job.label,
                             hash=job.content_hash(), engine=engine,
                             source=SOURCE_SIMULATED):
                result = simulate(job.machine, trace, check=job.check)
    except ReproError as exc:
        raise JobFailed(f"{job.label}: {type(exc).__name__}: {exc}") from None
    obs = {"spans": tracer.to_dicts(), "metrics": registry.to_dict()}
    return time.perf_counter() - start, result.to_dict(), obs


class CampaignRunner:
    """Executes job batches against a worker pool and a result cache.

    ``jobs`` is the worker count (1 = in-process serial, still
    cache-aware).  ``cache`` is optional; without it every job
    simulates.  ``trace_store`` defaults to the process-wide store.
    ``progress`` streams per-job lines to ``stream`` (stderr).
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 trace_store: Optional[TraceStore] = None,
                 progress: bool = False, stream: Optional[IO[str]] = None):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.trace_store = trace_store or default_trace_store()
        self.telemetry = CampaignTelemetry(workers=self.jobs)
        self._progress = (
            ProgressPrinter(self.telemetry, stream) if progress
            else NullProgress()
        )
        self._batch = ""
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------------

    def begin_batch(self, name: str) -> None:
        """Tag subsequent jobs with ``name`` (normally a figure id)."""
        self._batch = name

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self.trace_store.spill_dir,
                          max(DEFAULT_CAPACITY, self.trace_store.capacity)),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -------------------------------------------------------------

    def run_jobs(self, jobs: Sequence[SimJob]) -> List[RunResult]:
        """Run every job; results are returned in submission order."""
        jobs = list(jobs)
        tracer = current_tracer()
        results: List[Optional[RunResult]] = [None] * len(jobs)

        # Cache pass first: serve every already-known point, so the
        # progress ETA can be told how many simulations actually
        # remain before any job line prints.
        cached_idx: List[int] = []
        pending: List[int] = []
        for i, job in enumerate(jobs):
            if self.cache is not None:
                t0 = time.perf_counter()
                cached = self.cache.load(job)
                if cached is not None:
                    results[i] = cached
                    if tracer.enabled:
                        tracer.add_span(
                            "campaign.job", t0, time.perf_counter() - t0,
                            job=job.label, hash=job.content_hash(),
                            engine=System.select_engine(
                                job.machine, check=job.check),
                            source=SOURCE_CACHE,
                        )
                    cached_idx.append(i)
                    continue
            pending.append(i)

        # Duplicate pending points simulate once, so the expected
        # simulation count is the number of distinct hashes.
        expected_sim = len({jobs[i].content_hash() for i in pending})
        self._progress.start_batch(self._batch, len(jobs), expected_sim)
        for i in cached_idx:
            self._record(jobs[i], 0.0, SOURCE_CACHE)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._run_parallel(jobs, pending, results)
            else:
                self._run_serial(jobs, pending, results)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _record(self, job: SimJob, seconds: float, source: str) -> None:
        # Engine provenance: which replay path this configuration
        # resolves to.  Depends only on the machine and run options, so
        # it is equally meaningful for cached and simulated results.
        engine = System.select_engine(job.machine, check=job.check)
        rec = self.telemetry.record(
            job.label, self._batch, job.content_hash(), seconds, source,
            engine,
        )
        self._progress.job_done(rec)

    def _store(self, job: SimJob, result: RunResult) -> None:
        if self.cache is not None:
            self.cache.store(job, result)

    def _run_serial(self, jobs: Sequence[SimJob], pending: List[int],
                    results: List[Optional[RunResult]]) -> None:
        tracer = current_tracer()
        for i in pending:
            job = jobs[i]
            trace = self.trace_store.get(job.spec)
            start = time.perf_counter()
            if tracer.enabled:
                with tracer.span("campaign.job", job=job.label,
                                 hash=job.content_hash(),
                                 engine=System.select_engine(
                                     job.machine, check=job.check),
                                 source=SOURCE_SIMULATED):
                    result = simulate(job.machine, trace, check=job.check)
            else:
                result = simulate(job.machine, trace, check=job.check)
            seconds = time.perf_counter() - start
            results[i] = result
            self._store(job, result)
            self._record(job, seconds, SOURCE_SIMULATED)

    def _run_parallel(self, jobs: Sequence[SimJob], pending: List[int],
                      results: List[Optional[RunResult]]) -> None:
        # Materialize each distinct workload into the shared archive
        # once, so no worker pays for trace generation.
        if self.trace_store.spill_dir:
            for spec in {jobs[i].spec for i in pending}:
                self.trace_store.ensure_archived(spec)
        pool = self._ensure_pool()

        # Duplicate jobs (the same point appearing twice in a batch)
        # simulate once and fan out by hash.
        tracer = current_tracer()
        metrics = current_metrics()
        with_obs = tracer.enabled or metrics.enabled
        futures: Dict[str, "object"] = {}
        order = []
        for i in pending:
            key = jobs[i].content_hash()
            if key not in futures:
                futures[key] = pool.submit(_worker_run, jobs[i], with_obs)
            order.append((i, key))
        # Collect in submission order: deterministic output, whatever
        # order the workers finish in.
        done: Dict[str, RunResult] = {}
        for i, key in order:
            job = jobs[i]
            if key not in done:
                seconds, payload, obs = futures[key].result()
                if obs is not None:
                    tracer.absorb(obs["spans"])
                    metrics.absorb(obs["metrics"])
                result = RunResult.from_dict(payload)
                done[key] = result
                self._store(job, result)
                self._record(job, seconds, SOURCE_SIMULATED)
            else:
                self._record(job, 0.0, SOURCE_CACHE)
            results[i] = done[key]


# -- the active runner (driver-facing indirection) -----------------------------

_ACTIVE: Optional[CampaignRunner] = None


def active_runner() -> Optional[CampaignRunner]:
    """The runner installed by :func:`use_runner`, if any."""
    return _ACTIVE


@contextmanager
def use_runner(runner: CampaignRunner):
    """Route :func:`run_simulations` through ``runner`` for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = runner
    try:
        yield runner
    finally:
        _ACTIVE = previous


def run_simulations(jobs: Sequence[SimJob]) -> List[RunResult]:
    """Run a batch of jobs through the active runner.

    With no active runner this is the historical serial path: each
    trace materializes through the process-wide store and simulates
    inline, with no caching and no extra processes.
    """
    runner = _ACTIVE
    if runner is not None:
        return runner.run_jobs(jobs)
    store = default_trace_store()
    return [
        simulate(job.machine, store.get(job.spec), check=job.check)
        for job in jobs
    ]


def simulate_spec(job: SimJob) -> RunResult:
    """Convenience wrapper: one job through the active runner."""
    return run_simulations([job])[0]
