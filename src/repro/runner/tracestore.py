"""Trace materialization: a bounded in-memory cache over on-disk archives.

Every simulation job names its workload by a :class:`TraceSpec` — the
exact arguments of :func:`repro.trace.generator.build_trace` — instead
of carrying the multi-megabyte trace object itself.  A
:class:`TraceStore` turns specs into traces through a single code path
shared by the experiment drivers, the campaign runner's worker
processes, and the tests:

1. a bounded LRU of in-memory :class:`~repro.trace.generator.OltpTrace`
   objects (the successor of the old unbounded module cache in
   ``repro.experiments.common``),
2. an optional spill directory of versioned, checksummed ``.npz``
   archives (:mod:`repro.trace.storage`), so a trace generated once —
   by any process — is never rebuilt, and
3. :func:`~repro.trace.generator.build_trace` as the miss path.

Archives that fail their checksum or carry an unreadable format are
silently rebuilt; corruption can cost time, never correctness.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.scenario.workload import BASELINE_WORKLOAD, WorkloadSpec
from repro.trace.generator import OltpTrace, build_trace, stream_trace
from repro.trace.storage import (
    FORMAT_VERSION,
    STREAM_FORMAT_VERSION,
    ChunkedTraceWriter,
    load_trace,
    open_stream_archive,
    save_trace_atomic,
)
from repro.trace.stream import StreamedTrace

#: Default number of in-memory traces a store keeps (a full campaign
#: alternates between the uniprocessor and 8-CPU workloads, plus a few
#: ablation-specific ones).
DEFAULT_CAPACITY = 6


@dataclass(frozen=True)
class TraceSpec:
    """The generator arguments that determine one workload trace.

    ``build_trace`` is deterministic in these fields, so a spec is both
    a cache key and a recipe: any process holding the spec can
    materialize the identical trace.  ``warmup_txns=None`` selects the
    generator's steady-state default.
    """

    ncpus: int
    scale: int
    txns: int
    seed: int
    warmup_txns: Optional[int] = None
    workload: WorkloadSpec = BASELINE_WORKLOAD

    @property
    def key(self) -> str:
        """Stable human-readable identity, used in archive filenames.

        The baseline workload contributes nothing to the key (its
        ``tag`` is empty), so archives spilled before the scenario
        subsystem keep hitting; non-baseline workloads append their
        content-derived tag.
        """
        base = f"n{self.ncpus}_s{self.scale}_t{self.txns}_seed{self.seed}"
        if self.warmup_txns is not None:
            base += f"_w{self.warmup_txns}"
        tag = self.workload.tag
        if tag:
            base += f"_wl{tag}"
        return base

    @property
    def archive_name(self) -> str:
        """Spill filename; includes the archive format version so a
        format bump naturally invalidates old spills."""
        return f"trace_{self.key}_fmt{FORMAT_VERSION}.npz"

    @property
    def stream_archive_name(self) -> str:
        """Chunked-archive spill filename (streaming store)."""
        return f"strace_{self.key}_sfmt{STREAM_FORMAT_VERSION}.npz"

    def to_dict(self) -> dict:
        return {
            "ncpus": self.ncpus,
            "scale": self.scale,
            "txns": self.txns,
            "seed": self.seed,
            "warmup_txns": self.warmup_txns,
            "workload": self.workload.to_dict(),
        }

    def build(self) -> OltpTrace:
        """Run the OLTP engine and generate this trace from scratch."""
        return build_trace(
            ncpus=self.ncpus,
            scale=self.scale,
            txns=self.txns,
            warmup_txns=self.warmup_txns,
            seed=self.seed,
            workload=self.workload,
        )


@dataclass
class TraceStoreStats:
    """Where the store's traces came from (telemetry, tests)."""

    memory_hits: int = 0
    archive_loads: int = 0
    builds: int = 0

    def reset(self) -> None:
        self.memory_hits = 0
        self.archive_loads = 0
        self.builds = 0


class TraceStore:
    """Bounded LRU trace cache with optional archive spill.

    ``capacity`` bounds the number of in-memory traces; the least
    recently used trace is dropped first (it remains reloadable from
    its archive when a spill directory is configured).  ``spill_dir``
    is created lazily on first write.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 spill_dir: Optional[str] = None):
        if capacity < 1:
            raise ValueError("TraceStore capacity must be at least 1")
        self.capacity = capacity
        self.spill_dir = spill_dir
        self.stats = TraceStoreStats()
        self._lru: "OrderedDict[TraceSpec, OltpTrace]" = OrderedDict()

    # -- internals -------------------------------------------------------------

    def _archive_path(self, spec: TraceSpec) -> Optional[str]:
        if not self.spill_dir:
            return None
        return os.path.join(self.spill_dir, spec.archive_name)

    def _spill(self, spec: TraceSpec, trace: OltpTrace) -> Optional[str]:
        path = self._archive_path(spec)
        if path is None:
            return None
        os.makedirs(self.spill_dir, exist_ok=True)
        save_trace_atomic(trace, path)
        return path

    def _load_archived(self, spec: TraceSpec) -> Optional[OltpTrace]:
        path = self._archive_path(spec)
        if path is None or not os.path.exists(path):
            return None
        from repro.integrity.errors import TraceFormatError

        try:
            return load_trace(path)
        except (TraceFormatError, OSError):
            # Corrupt or stale spill: drop it and fall through to a
            # rebuild.  Never let a bad cache file fail a run.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _remember(self, spec: TraceSpec, trace: OltpTrace) -> None:
        self._lru[spec] = trace
        self._lru.move_to_end(spec)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    # -- public API ------------------------------------------------------------

    def get(self, spec: TraceSpec) -> OltpTrace:
        """Materialize the trace for ``spec`` (memory, archive, or build)."""
        trace = self._lru.get(spec)
        if trace is not None:
            self._lru.move_to_end(spec)
            self.stats.memory_hits += 1
            return trace
        trace = self._load_archived(spec)
        if trace is not None:
            self.stats.archive_loads += 1
        else:
            trace = spec.build()
            self.stats.builds += 1
            if self.spill_dir:
                self._spill(spec, trace)
        self._remember(spec, trace)
        return trace

    def ensure_archived(self, spec: TraceSpec) -> str:
        """Guarantee an on-disk archive for ``spec``; return its path.

        Used by the campaign runner before forking workers, so every
        worker loads the shared archive instead of re-running the
        workload generator.  Requires a configured ``spill_dir``.
        """
        if not self.spill_dir:
            raise ValueError("ensure_archived requires a spill_dir")
        path = self._archive_path(spec)
        assert path is not None
        if not os.path.exists(path):
            trace = self._lru.get(spec)
            if trace is None:
                trace = self.get(spec)  # builds and spills
            else:
                self._spill(spec, trace)
        return path

    def clear(self) -> None:
        """Drop every in-memory trace (archives are kept)."""
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, spec: TraceSpec) -> bool:
        return spec in self._lru


@dataclass
class StreamingStoreStats:
    """Where the streaming store's chunk streams came from.

    Counted once per :meth:`StreamingTraceStore.stream` call, never
    per chunk — so the numbers are invariant to the consumer's chunk
    size (a property the test suite pins down).
    """

    archive_streams: int = 0
    builds: int = 0
    spills: int = 0

    def reset(self) -> None:
        self.archive_streams = 0
        self.builds = 0
        self.spills = 0


class StreamingTraceStore:
    """Bounded-memory counterpart of :class:`TraceStore`.

    Where ``TraceStore.get`` materializes a whole
    :class:`~repro.trace.generator.OltpTrace`, :meth:`stream` returns
    a :class:`~repro.trace.stream.StreamedTrace` whose peak memory is
    one chunk, regardless of workload length:

    1. an existing *chunked* archive (``strace_*.npz``) streams back
       chunk-by-chunk — ``np.load`` decompresses one zip member at a
       time;
    2. on a miss the live generator streams, and when a ``spill_dir``
       is configured every chunk is teed into a
       :class:`~repro.trace.storage.ChunkedTraceWriter` on its way to
       the consumer, so the archive appears as a side effect of the
       first replay — no second pass, no full materialization, and an
       interrupted run leaves no partial archive (atomic rename).

    ``chunk_txns`` sets the generation batch; ``chunk_quanta`` (per
    call) re-slices whatever the producer emits, letting consumers
    pick their replay granularity independently of how the archive was
    written.
    """

    def __init__(self, spill_dir: Optional[str] = None,
                 chunk_txns: Optional[int] = None):
        self.spill_dir = spill_dir
        self.chunk_txns = chunk_txns
        self.stats = StreamingStoreStats()

    def _archive_path(self, spec: TraceSpec) -> Optional[str]:
        if not self.spill_dir:
            return None
        return os.path.join(self.spill_dir, spec.stream_archive_name)

    def stream(self, spec: TraceSpec,
               chunk_quanta: Optional[int] = None) -> StreamedTrace:
        """A fresh chunk stream for ``spec`` (archive or live build)."""
        from repro.integrity.errors import TraceFormatError
        from repro.obs import current_metrics

        path = self._archive_path(spec)
        if path is not None and os.path.exists(path):
            try:
                streamed = open_stream_archive(path)
            except (TraceFormatError, OSError):
                # Corrupt or stale spill: drop it and rebuild, the
                # same fail-soft contract as TraceStore.
                try:
                    os.unlink(path)
                except OSError:
                    pass
            else:
                self.stats.archive_streams += 1
                current_metrics().count("stream.archive_streams")
                if chunk_quanta:
                    streamed.rechunk(chunk_quanta)
                return streamed

        streamed = stream_trace(
            ncpus=spec.ncpus,
            scale=spec.scale,
            txns=spec.txns,
            warmup_txns=spec.warmup_txns,
            seed=spec.seed,
            chunk_txns=self.chunk_txns,
            workload=spec.workload,
        )
        self.stats.builds += 1
        current_metrics().count("stream.builds")
        if path is not None:
            writer = ChunkedTraceWriter(path)
            self.stats.spills += 1

            def finish(stream):
                writer.finish(stream)
                current_metrics().count("stream.spills")

            streamed.tee(writer.add_chunk, finish=finish, abort=writer.abort)
        if chunk_quanta:
            streamed.rechunk(chunk_quanta)
        return streamed

    def ensure_archived(self, spec: TraceSpec) -> str:
        """Guarantee a chunked archive for ``spec``; return its path.

        Consumes (and discards) a full stream on a miss — still at
        bounded memory — and verifies an existing archive's header.
        """
        if not self.spill_dir:
            raise ValueError("ensure_archived requires a spill_dir")
        path = self._archive_path(spec)
        assert path is not None
        if not os.path.exists(path):
            for _ in self.stream(spec).chunks():
                pass
        return path


#: Process-wide default store.  The experiment drivers' ``get_trace``
#: resolves through it; campaign worker processes configure its spill
#: directory at pool start so both sides share one code path.
_DEFAULT_STORE = TraceStore()


def default_trace_store() -> TraceStore:
    """The process-wide :class:`TraceStore`."""
    return _DEFAULT_STORE
