"""The campaign job model: one simulation point, content-addressed.

Every bar of every figure is the simulation of one
``(TraceSpec, MachineConfig, check-level)`` triple.  A :class:`SimJob`
captures that triple and derives a **content hash** over its canonical
JSON payload plus two version numbers:

* :data:`CODE_VERSION` — bump whenever simulator semantics change in a
  way that alters results, invalidating every cached result at once;
* :data:`~repro.trace.storage.FORMAT_VERSION` — the trace archive
  format, so regenerated workloads invalidate their dependent results.

The hash is the job's identity everywhere: result-cache filenames,
telemetry records, and cross-process deduplication.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.machine import MachineConfig
from repro.integrity.errors import ConfigError
from repro.runner.tracestore import TraceSpec
from repro.scenario.workload import BASELINE_WORKLOAD, WorkloadSpec
from repro.trace.storage import FORMAT_VERSION

#: Simulation-semantics version baked into every job hash.  Bump on any
#: change that makes previously cached results wrong (latency tables,
#: protocol behaviour, replay-loop fixes, ...).  2: scenario subsystem
#: (workload specs in trace payloads, topology in machine payloads).
CODE_VERSION = 2

#: Integrity-check tiers a job may request (mirrors
#: :class:`~repro.integrity.checker.CheckLevel` spellings).
CHECK_LEVELS = ("off", "end-of-run", "per-quantum")


def canonical_json(payload) -> str:
    """Deterministic JSON encoding used for hashing and checksums."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SimJob:
    """One independent simulation: a machine replaying a workload."""

    spec: TraceSpec
    machine: MachineConfig
    check: str = "off"

    def __post_init__(self):
        if self.check not in CHECK_LEVELS:
            raise ValueError(
                f"unknown check level {self.check!r}; expected one of "
                f"{CHECK_LEVELS}"
            )

    @property
    def label(self) -> str:
        """Display name (the machine's paper-style label)."""
        return self.machine.label

    def payload(self) -> dict:
        """Everything that determines this job's result, canonically."""
        return {
            "code_version": CODE_VERSION,
            "trace_format": FORMAT_VERSION,
            "trace": self.spec.to_dict(),
            "machine": self.machine.to_dict(),
            "check": self.check,
        }

    def content_hash(self) -> str:
        """Stable hex digest identifying this job's result."""
        return hashlib.sha256(
            canonical_json(self.payload()).encode()
        ).hexdigest()

    # -- wire format -----------------------------------------------------------

    def to_dict(self) -> dict:
        """The version-free wire form (service submissions, journals).

        Unlike :meth:`payload`, the version numbers are *not* part of
        the encoding: a reader hashes the job under its own versions,
        so a spec submitted to a newer build simply resolves to a new
        content hash instead of smuggling stale semantics in.
        """
        return {
            "trace": self.spec.to_dict(),
            "machine": self.machine.to_dict(),
            "check": self.check,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimJob":
        """Rebuild a job from its wire form; :class:`ConfigError` on
        anything malformed (missing keys, wrong types, invalid machine
        geometry) so transports can map every bad spec to one error
        class."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"job spec must be an object, got {type(data).__name__}"
            )
        try:
            trace = data["trace"]
            workload = trace.get("workload")
            spec = TraceSpec(
                ncpus=int(trace["ncpus"]),
                scale=int(trace["scale"]),
                txns=int(trace["txns"]),
                seed=int(trace["seed"]),
                warmup_txns=(
                    None if trace.get("warmup_txns") is None
                    else int(trace["warmup_txns"])
                ),
                workload=(
                    BASELINE_WORKLOAD if workload is None
                    else WorkloadSpec.from_dict(workload)
                ),
            )
            machine = MachineConfig.from_dict(data["machine"])
            check = data.get("check", "off")
        except ConfigError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed job spec: {exc}") from None
        try:
            return cls(spec=spec, machine=machine, check=check)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
