"""Shared-memory trace views: one mapping, N campaign workers.

Without this module every worker process materializes its own copy of
each workload trace (archive load → decompress → per-quantum arrays),
so a campaign's resident memory scales with the worker count.  A
:class:`SharedTraceArena` lets the parent publish each distinct trace
once into a ``multiprocessing.shared_memory`` segment — packed exactly
like the ``.npz`` archive body (cpu ids, quantum offsets, references,
text pages) — and hands workers a small picklable
:class:`SharedTraceHandle`.  :func:`attach_shared_trace` maps the
segment read-only-in-spirit and builds an
:class:`~repro.trace.generator.OltpTrace` whose quantum reference
arrays are zero-copy numpy views of the shared buffer, so N workers
replay one physical mapping.

Crash safety: only the *parent* ever unlinks a segment
(:meth:`SharedTraceArena.cleanup`, also registered ``atexit``), so a
worker crash or a SupervisedExecutor pool respawn needs no
coordination — respawned workers simply re-attach by name.  Workers
deliberately unregister their attachment from the stdlib resource
tracker; otherwise each worker exit would try to unlink the segment
out from under its siblings (Python 3.12's ``track=False`` is not
available on 3.11).
"""

from __future__ import annotations

import atexit
import json
import os
import secrets
from array import array
from dataclasses import asdict, dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.trace.generator import OltpTrace, TraceQuantum

__all__ = [
    "SEGMENT_PREFIX",
    "SharedTraceHandle",
    "SharedTraceArena",
    "attach_shared_trace",
    "detach_all",
]

#: Every arena segment name starts with this, so tests (and operators)
#: can audit ``/dev/shm`` for leaks after a campaign.
SEGMENT_PREFIX = "repro_trace_"


@dataclass(frozen=True)
class SharedTraceHandle:
    """A picklable reference to one published trace segment.

    ``meta`` is the same JSON metadata blob the archive format
    carries; the three lengths fix the segment layout: ``offsets``
    (int64, ``num_quanta + 1``), ``refs`` (int64), ``text_pages``
    (int64) in that order — all 8-byte aligned — followed by ``cpus``
    (int32, ``num_quanta``).
    """

    name: str
    meta: str
    num_quanta: int
    num_refs: int
    num_text: int

    @property
    def nbytes(self) -> int:
        return (8 * (self.num_quanta + 1 + self.num_refs + self.num_text)
                + 4 * self.num_quanta)


def _pack(trace: OltpTrace) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray, dict]:
    """Pack a trace into the archive-shaped arrays plus metadata."""
    nq = len(trace.quanta)
    cpus = np.fromiter((q.cpu for q in trace.quanta), dtype=np.int32,
                       count=nq)
    lengths = np.fromiter((len(q.refs) for q in trace.quanta),
                          dtype=np.int64, count=nq)
    offsets = np.zeros(nq + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    refs = np.empty(int(offsets[-1]), dtype=np.int64)
    for i, q in enumerate(trace.quanta):
        refs[offsets[i]:offsets[i + 1]] = q.refs
    text_pages = np.array(sorted(trace.text_pages), dtype=np.int64)
    config = asdict(trace.config)
    tpcb = config.pop("tpcb")
    meta = {
        "ncpus": trace.ncpus,
        "scale": trace.scale,
        "page_bytes": trace.page_bytes,
        "warmup_quanta": trace.warmup_quanta,
        "measured_txns": trace.measured_txns,
        "engine_stats": asdict(trace.engine_stats),
        "config": config,
        "tpcb": tpcb,
    }
    return cpus, offsets, refs, text_pages, meta


def _views(buf, handle: SharedTraceHandle):
    """The four array views over a segment buffer, per the layout."""
    nq, nr, nt = handle.num_quanta, handle.num_refs, handle.num_text
    pos = 0
    offsets = np.frombuffer(buf, dtype=np.int64, count=nq + 1, offset=pos)
    pos += 8 * (nq + 1)
    refs = np.frombuffer(buf, dtype=np.int64, count=nr, offset=pos)
    pos += 8 * nr
    text = np.frombuffer(buf, dtype=np.int64, count=nt, offset=pos)
    pos += 8 * nt
    cpus = np.frombuffer(buf, dtype=np.int32, count=nq, offset=pos)
    return cpus, offsets, refs, text


class SharedTraceArena:
    """Parent-side registry of published trace segments.

    One arena per campaign runner (or job service); ``cleanup`` is
    idempotent and registered ``atexit``, so segments cannot outlive
    the parent on any orderly exit path — including an exception that
    skips ``close()``.
    """

    def __init__(self):
        self._segments: Dict[object, Tuple[shared_memory.SharedMemory,
                                           SharedTraceHandle]] = {}
        self._seq = 0
        atexit.register(self.cleanup)

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def bytes_published(self) -> int:
        return sum(h.nbytes for _, h in self._segments.values())

    def publish(self, spec, store) -> SharedTraceHandle:
        """Publish the trace for ``spec`` (idempotent per arena).

        ``store`` is the parent's :class:`~repro.runner.tracestore
        .TraceStore`; the trace materializes through the ordinary
        memory/archive/build path, then is packed into a fresh
        segment.
        """
        cached = self._segments.get(spec)
        if cached is not None:
            return cached[1]
        trace = store.get(spec)
        cpus, offsets, refs, text, meta = _pack(trace)
        total = cpus.nbytes + offsets.nbytes + refs.nbytes + text.nbytes
        name = (f"{SEGMENT_PREFIX}{os.getpid()}_{self._seq}_"
                f"{secrets.token_hex(4)}")
        self._seq += 1
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, total))
        _OWNED.add(shm.name)
        handle = SharedTraceHandle(
            name=shm.name, meta=json.dumps(meta),
            num_quanta=len(cpus), num_refs=len(refs), num_text=len(text),
        )
        v_cpus, v_offsets, v_refs, v_text = _views(shm.buf, handle)
        v_offsets[:] = offsets
        v_refs[:] = refs
        v_text[:] = text
        v_cpus[:] = cpus
        self._segments[spec] = (shm, handle)
        from repro.obs import current_metrics

        current_metrics().count("campaign.shm_segments")
        return handle

    def cleanup(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, {}
        for shm, _ in segments.values():
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass

    def __enter__(self) -> "SharedTraceArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()


# -- worker side ---------------------------------------------------------------

#: Names created by an arena in *this* process.  Attaching to one's
#: own segment must not unregister it from the resource tracker (the
#: stdlib collapses create- and attach-registrations into one entry).
_OWNED: set = set()

#: Per-process attachment cache: a worker replaying many jobs against
#: the same workload attaches (and rebuilds the quantum views) once.
#: Tuple order matters — the trace (holding buffer views) must be
#: destroyed before its SharedMemory closes, or teardown raises
#: "cannot close exported pointers exist".
_ATTACHED: Dict[str, Tuple[OltpTrace, shared_memory.SharedMemory]] = {}


def attach_shared_trace(handle: SharedTraceHandle) -> OltpTrace:
    """Map a published segment and view it as an ``OltpTrace``.

    Quantum ``refs`` are numpy slices of the shared buffer — no copy;
    every replay engine accepts them (the scalar loops iterate them,
    the vectorized kernels ``np.frombuffer`` them).  Raises the
    underlying ``FileNotFoundError`` if the parent already unlinked
    the segment (the supervisor retries such a job like any other
    transient failure).
    """
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[0]
    shm = shared_memory.SharedMemory(name=handle.name)
    if handle.name not in _OWNED:
        try:
            # The resource tracker would unlink this segment when
            # *this* process exits, racing the parent and every
            # sibling worker (3.11 has no ``track=False``).
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    meta = json.loads(handle.meta)
    cpus, offsets, refs, text = _views(shm.buf, handle)
    quanta = [
        TraceQuantum(int(cpus[i]), refs[offsets[i]:offsets[i + 1]])
        for i in range(handle.num_quanta)
    ]
    from repro.oltp.config import WorkloadConfig
    from repro.oltp.engine import EngineStats
    from repro.oltp.schema import TpcbScale

    trace = OltpTrace(
        ncpus=meta["ncpus"],
        scale=meta["scale"],
        page_bytes=meta["page_bytes"],
        text_pages=frozenset(int(p) for p in text),
        quanta=quanta,
        warmup_quanta=meta["warmup_quanta"],
        measured_txns=meta["measured_txns"],
        engine_stats=EngineStats(**meta["engine_stats"]),
        config=WorkloadConfig(tpcb=TpcbScale(**meta["tpcb"]),
                              **meta["config"]),
    )
    _ATTACHED[handle.name] = (trace, shm)
    return trace


def detach_all() -> None:
    """Drop this process's attachments (tests; harmless in workers).

    A mapping whose trace views are still referenced elsewhere cannot
    close; it is dropped from the cache and closes when the last view
    dies.
    """
    attached = list(_ATTACHED.values())
    _ATTACHED.clear()
    for trace, shm in attached:
        del trace
        try:
            shm.close()
        except BufferError:
            pass
        except Exception:
            pass
