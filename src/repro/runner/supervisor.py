"""Fault-tolerant job execution: the supervised worker pool.

:class:`SupervisedExecutor` replaces the bare ``ProcessPoolExecutor``
fan-out the campaign runner used to own.  It keeps the same worker
entry points (and the same value-identity contract: a result that
travelled through a worker is bit-identical to one simulated inline)
but survives the three ways a worker can betray a campaign:

* **Crash** — a worker dying (segfault, OOM-kill, ``os._exit``) breaks
  the whole ``ProcessPoolExecutor``.  The supervisor discards the
  broken pool, spawns a fresh one, and re-queues only the jobs that
  were in flight; completed results are never lost.
* **Hang** — every job carries an optional wall-clock deadline.  A job
  that blows its deadline is charged a timeout attempt, the pool is
  killed (the only way to reclaim a stuck worker) and respawned, and
  innocent in-flight jobs are re-queued without being charged.
* **Lies** — worker results cross the process boundary with a CRC-32
  over their canonical JSON; a corrupt payload is rejected and the job
  retried, exactly like a corrupt cache entry demotes to a miss.

Transient worker exceptions are retried with exponential backoff plus
seeded jitter (:class:`RetryPolicy`); deterministic simulation errors
(:class:`JobFailed`, i.e. a :class:`~repro.integrity.errors.ReproError`
raised by the engine) fail immediately — re-running them cannot help.
A job that exhausts its retries becomes a structured
:class:`JobFailure` inside its :class:`JobOutcome` instead of an
exception, so a campaign always completes with a per-job
success/failure report.

The chaos harness (:mod:`repro.integrity.faults`) injects worker-side
faults through the same entry points, and ``tests/runner/test_chaos.py``
asserts the supervisor recovers from every fault class with
value-identical results.
"""

from __future__ import annotations

import random
import time
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import RunResult
from repro.core.system import System, simulate
from repro.integrity.errors import ConfigError, ReproError
from repro.obs import current_metrics
from repro.runner.jobs import SimJob, canonical_json
from repro.runner.telemetry import SOURCE_SIMULATED, ResilienceStats

#: Failure kinds a :class:`JobFailure` can carry.
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASH = "crash"
FAILURE_ERROR = "error"
FAILURE_CORRUPT = "corrupt-result"

#: Smallest poll interval of the supervision loop (seconds); bounds how
#: stale a deadline/backoff wakeup can be without busy-spinning.
_MIN_TICK = 0.01


class JobFailed(ReproError, RuntimeError):
    """A worker-side simulation failure, flattened to a picklable string.

    Raised in place of the original error because several
    :mod:`repro.integrity` exception types carry structured payloads
    that do not survive the pickle round trip out of a worker process.
    Deterministic by construction (the engine diagnosed the job
    itself), so the supervisor never retries it.
    """


# -- worker-process entry points (module level: must be picklable) -------------

def _worker_init(spill_dir: Optional[str], capacity: int,
                 fault_plans=None, fault_token_dir: Optional[str] = None
                 ) -> None:
    """Configure the worker's process-wide state at pool start.

    Points the trace store at the shared spill directory and, when the
    chaos harness is active, installs the worker-side fault injector.
    """
    from repro.runner.tracestore import default_trace_store

    store = default_trace_store()
    store.spill_dir = spill_dir
    store.capacity = max(capacity, store.capacity)
    if fault_plans:
        from repro.integrity.faults import install_worker_faults

        install_worker_faults(fault_plans, fault_token_dir)


def _worker_run(job: SimJob, with_obs: bool = False, shm_handle=None):
    """Simulate one job; return ``(seconds, result_dict, crc32, obs)``.

    ``shm_handle`` (a :class:`~repro.runner.shm.SharedTraceHandle`)
    replays the job against the parent's shared-memory trace segment —
    one physical mapping per workload across all workers — instead of
    a per-worker archive load; without one, the trace resolves through
    the worker's :func:`default_trace_store` as before.

    Results cross the process boundary as :meth:`RunResult.to_dict`
    payloads — the exact representation the cache stores — so the
    parent reconstructs identical values either way.  ``crc32`` guards
    the payload's canonical JSON against corruption in flight; the
    supervisor re-verifies it before accepting the result.

    When the parent has observability enabled (``with_obs``), the
    worker traces and meters the run locally and ships the serialized
    records back (``{"spans": [...], "metrics": {...}}``) for the
    parent to absorb; the worker's real ``pid`` rides along in each
    span, so stitched campaign traces show one process track per
    worker.  Otherwise the payload slot is ``None`` and the worker
    runs at zero observability cost.
    """
    from repro.integrity.faults import active_worker_injector
    from repro.runner.tracestore import default_trace_store

    injector = active_worker_injector()
    if injector is not None:
        injector.on_job_start()

    if shm_handle is not None:
        from repro.runner.shm import attach_shared_trace

        trace = attach_shared_trace(shm_handle)
    else:
        trace = default_trace_store().get(job.spec)
    if not with_obs:
        start = time.perf_counter()
        try:
            result = simulate(job.machine, trace, check=job.check)
        except ReproError as exc:
            raise JobFailed(
                f"{job.label}: {type(exc).__name__}: {exc}"
            ) from None
        seconds = time.perf_counter() - start
        return seconds, *_sealed(result, injector), None

    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

    engine = System.select_engine(job.machine, check=job.check)
    tracer = Tracer(tid="worker")
    registry = MetricsRegistry()
    start = time.perf_counter()
    try:
        with use_tracer(tracer), use_metrics(registry):
            with tracer.span("campaign.job", job=job.label,
                             hash=job.content_hash(), engine=engine,
                             source=SOURCE_SIMULATED):
                result = simulate(job.machine, trace, check=job.check)
    except ReproError as exc:
        raise JobFailed(f"{job.label}: {type(exc).__name__}: {exc}") from None
    seconds = time.perf_counter() - start
    obs = {"spans": tracer.to_dicts(), "metrics": registry.to_dict()}
    payload, crc = _sealed(result, injector)
    return seconds, payload, crc, obs


def _sealed(result: RunResult, injector) -> Tuple[dict, int]:
    """Serialize ``result`` with its integrity CRC (chaos may corrupt
    the payload *after* the CRC is taken — that is the point)."""
    payload = result.to_dict()
    crc = zlib.crc32(canonical_json(payload).encode())
    if injector is not None:
        payload = injector.corrupt_result(payload)
    return payload, crc


def payload_crc(payload: dict) -> int:
    """The CRC-32 the worker envelope carries for ``payload``."""
    return zlib.crc32(canonical_json(payload).encode())


# -- retry policy --------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``max_retries`` counts *re*-executions: a job runs at most
    ``max_retries + 1`` times.  The delay before retry ``n`` (1-based)
    is ``base_delay * multiplier**(n-1)``, capped at ``max_delay``,
    then stretched by up to ``jitter`` (a fraction) of itself so
    simultaneous retries do not stampede the pool in lockstep.  Jitter
    draws from the caller's seeded RNG, keeping campaigns reproducible.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("backoff delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ConfigError("jitter must be a fraction in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.max_delay,
                   self.base_delay * self.multiplier ** (attempt - 1))
        return base * (1.0 + self.jitter * rng.random())


# -- outcomes ------------------------------------------------------------------

@dataclass(frozen=True)
class JobFailure:
    """One job's terminal failure: what, why, and how hard we tried."""

    label: str
    job_hash: str
    kind: str  # FAILURE_TIMEOUT / FAILURE_CRASH / FAILURE_ERROR / FAILURE_CORRUPT
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "job_hash": self.job_hash,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass
class JobOutcome:
    """What became of one supervised job: a result or a failure."""

    job: SimJob
    result: Optional[RunResult] = None
    seconds: float = 0.0
    attempts: int = 1
    failure: Optional[JobFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


# -- the supervisor ------------------------------------------------------------

class _Attempt:
    """Book-keeping for one job travelling through the supervisor."""

    __slots__ = ("job", "index", "attempts", "not_before")

    def __init__(self, job: SimJob, index: int):
        self.job = job
        self.index = index
        self.attempts = 0  # failed tries so far
        self.not_before = 0.0  # monotonic time before which not to resubmit


class SupervisedExecutor:
    """A self-healing worker pool executing :class:`SimJob` batches.

    ``workers`` is the pool size; at most ``workers`` jobs are in
    flight, so a job's wall-clock deadline starts when it actually
    reaches a worker, not when it enters the pool's internal queue.
    ``job_timeout`` (seconds, ``None`` = unbounded) is enforced by
    killing and respawning the pool — the only reclamation a hung
    worker allows.  ``max_respawns`` caps pool rebuilds per ``run``
    call so a worker that crashes on every job cannot loop forever;
    past the cap every unfinished job fails as ``crash``.

    ``chaos`` is ``(fault_plans, token_dir)`` for the chaos harness
    (:mod:`repro.integrity.faults`); plans are installed in every
    worker generation, with filesystem tokens bounding total fires.

    ``stats`` (a shared :class:`ResilienceStats`) accumulates retry /
    timeout / respawn counters across batches; the same counts are
    mirrored into the active ``obs`` metrics registry under
    ``campaign.*`` names.
    """

    def __init__(self, workers: int, trace_store, *,
                 job_timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 max_respawns: int = 3,
                 chaos: Optional[Tuple[Sequence, Optional[str]]] = None,
                 stats: Optional[ResilienceStats] = None):
        self.workers = max(1, int(workers))
        self.trace_store = trace_store
        self.job_timeout = job_timeout
        self.retry = retry or RetryPolicy()
        self.max_respawns = max(0, int(max_respawns))
        self.chaos = chaos
        self.stats = stats if stats is not None else ResilienceStats()
        self._rng = random.Random(self.retry.seed)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._respawns_this_run = 0

    # -- pool lifecycle --------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        from repro.runner.tracestore import DEFAULT_CAPACITY

        plans, token_dir = self.chaos if self.chaos else (None, None)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init,
            initargs=(self.trace_store.spill_dir,
                      max(DEFAULT_CAPACITY, self.trace_store.capacity),
                      plans, token_dir),
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down even if a worker is wedged.

        ``shutdown(wait=True)`` would block behind a hung job, so the
        worker processes are terminated first (escalating to SIGKILL
        for anything that ignores SIGTERM), then the executor object is
        discarded without waiting.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for proc in procs:
            try:
                proc.join(max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -------------------------------------------------------------

    def run(self, jobs: Sequence[SimJob], with_obs: bool = False,
            on_result: Optional[Callable] = None,
            shm_handles: Optional[Dict] = None) -> List[JobOutcome]:
        """Run every job to a terminal :class:`JobOutcome`.

        ``on_result(job, result, seconds, obs)`` fires as each job
        *completes* (not in submission order), so the caller can
        persist results — cache, journal — the moment they exist;
        a kill after that instant can never lose the job.

        ``shm_handles`` maps a job's ``spec`` to a
        :class:`~repro.runner.shm.SharedTraceHandle`; matching jobs
        replay against the parent's shared mapping (surviving pool
        respawns — a fresh worker simply re-attaches), others fall
        back to per-worker trace loads.
        """
        jobs = list(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        ready = deque(_Attempt(job, i) for i, job in enumerate(jobs))
        waiting: List[_Attempt] = []  # backoff queue
        inflight: Dict[object, Tuple[_Attempt, Optional[float]]] = {}
        self._respawns_this_run = 0
        metrics = current_metrics()

        def fail(attempt: _Attempt, kind: str, message: str) -> None:
            self.stats.failures += 1
            metrics.count("campaign.failures")
            outcomes[attempt.index] = JobOutcome(
                attempt.job, attempts=attempt.attempts,
                failure=JobFailure(attempt.job.label,
                                   attempt.job.content_hash(), kind,
                                   message, attempt.attempts),
            )

        def retry_or_fail(attempt: _Attempt, kind: str, message: str) -> None:
            """Charge the attempt and either back off or give up."""
            attempt.attempts += 1
            if attempt.attempts > self.retry.max_retries:
                fail(attempt, kind, message)
                return
            self.stats.retries += 1
            metrics.count("campaign.retries")
            attempt.not_before = (
                time.monotonic()
                + self.retry.delay(attempt.attempts, self._rng)
            )
            waiting.append(attempt)

        def requeue_inflight() -> None:
            """Put every in-flight job back at the head of the queue,
            uncharged — they were bystanders to a crash or a kill."""
            for attempt, _ in inflight.values():
                self.stats.requeued += 1
                metrics.count("campaign.requeued")
                ready.appendleft(attempt)
            inflight.clear()

        def respawn(reason: str) -> None:
            self._kill_pool()
            requeue_inflight()
            self._respawns_this_run += 1
            if self._respawns_this_run > self.max_respawns:
                # The pool is not survivable: fail everything left.
                for queue in (ready, waiting):
                    while queue:
                        fail(queue.pop(), FAILURE_CRASH,
                             f"worker pool died {self._respawns_this_run} "
                             f"times ({reason}); giving up")
                return
            self.stats.respawns += 1
            metrics.count("campaign.pool_respawns")

        while ready or waiting or inflight:
            now = time.monotonic()
            # Promote retries whose backoff has elapsed.
            due = [a for a in waiting if a.not_before <= now]
            for attempt in due:
                waiting.remove(attempt)
                ready.append(attempt)
            # Keep at most `workers` jobs in flight so deadlines track
            # actual execution, not time spent queued inside the pool.
            while ready and len(inflight) < self.workers:
                attempt = ready.popleft()
                try:
                    future = self._ensure_pool().submit(
                        _worker_run, attempt.job, with_obs,
                        shm_handles.get(attempt.job.spec)
                        if shm_handles else None)
                except BrokenProcessPool:
                    ready.appendleft(attempt)
                    self.stats.crashes += 1
                    metrics.count("campaign.worker_crashes")
                    respawn("submit on broken pool")
                    break
                deadline = (time.monotonic() + self.job_timeout
                            if self.job_timeout else None)
                inflight[future] = (attempt, deadline)
            if not inflight:
                if waiting:
                    pause = min(a.not_before for a in waiting) - time.monotonic()
                    time.sleep(max(_MIN_TICK, min(pause, 0.25)))
                continue

            done, _ = wait(set(inflight), timeout=self._tick(waiting, inflight),
                           return_when=FIRST_COMPLETED)
            pool_broke = False
            for future in done:
                attempt, _ = inflight.pop(future)
                try:
                    seconds, payload, crc, obs = future.result()
                except (BrokenProcessPool, BrokenPipeError, EOFError):
                    # The pool died under this job; the culprit is
                    # unknowable (every in-flight future breaks), so
                    # nobody is charged — the respawn cap bounds us.
                    pool_broke = True
                    self.stats.requeued += 1
                    metrics.count("campaign.requeued")
                    ready.appendleft(attempt)
                    continue
                except JobFailed as exc:
                    # Deterministic simulation error: retrying is futile.
                    attempt.attempts += 1
                    fail(attempt, FAILURE_ERROR, str(exc))
                    continue
                except Exception as exc:
                    retry_or_fail(attempt, FAILURE_ERROR,
                                  f"{type(exc).__name__}: {exc}")
                    continue
                if payload_crc(payload) != crc:
                    self.stats.corrupt_results += 1
                    metrics.count("campaign.corrupt_results")
                    retry_or_fail(attempt, FAILURE_CORRUPT,
                                  "worker result failed its checksum")
                    continue
                result = RunResult.from_dict(payload)
                outcomes[attempt.index] = JobOutcome(
                    attempt.job, result=result, seconds=seconds,
                    attempts=attempt.attempts + 1)
                if on_result is not None:
                    on_result(attempt.job, result, seconds, obs)
            if pool_broke:
                self.stats.crashes += 1
                metrics.count("campaign.worker_crashes")
                respawn("worker process died")
                continue

            # Deadline scan: charge expired jobs, then reclaim their
            # workers the only way possible — kill and respawn.
            now = time.monotonic()
            expired = [(future, attempt)
                       for future, (attempt, deadline) in inflight.items()
                       if deadline is not None and now >= deadline]
            if expired:
                for future, attempt in expired:
                    del inflight[future]
                    self.stats.timeouts += 1
                    metrics.count("campaign.timeouts")
                    retry_or_fail(
                        attempt, FAILURE_TIMEOUT,
                        f"no result within {self.job_timeout:.1f}s")
                respawn("job deadline expired")

        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _tick(self, waiting: List[_Attempt],
              inflight: Dict[object, Tuple[_Attempt, Optional[float]]]
              ) -> Optional[float]:
        """How long ``wait`` may block before the next scheduled event."""
        now = time.monotonic()
        horizons = [a.not_before - now for a in waiting]
        horizons += [deadline - now for _, deadline in inflight.values()
                     if deadline is not None]
        if not horizons:
            return None
        return max(_MIN_TICK, min(horizons))
