"""Campaign orchestration: parallel experiment runs over a result cache.

The runner decomposes every figure into independent, content-addressed
``(trace, machine, check)`` simulation jobs and executes them through a
cache-first multiprocess executor:

* :mod:`repro.runner.tracestore` — bounded trace cache + archive spill
* :mod:`repro.runner.jobs` — the job model and its content hash
* :mod:`repro.runner.cache` — the on-disk JSON result cache
* :mod:`repro.runner.executor` — the worker pool and driver-facing API
* :mod:`repro.runner.telemetry` — per-job timing, cache accounting, ETA

See the README's "Campaign runner" section and ``repro-oltp campaign``.
"""

from repro.runner.cache import CACHE_FORMAT_VERSION, CacheStats, ResultCache
from repro.runner.executor import (
    CampaignRunner,
    JobFailed,
    active_runner,
    run_simulations,
    simulate_spec,
    use_runner,
)
from repro.runner.jobs import CODE_VERSION, SimJob, canonical_json
from repro.runner.telemetry import CampaignTelemetry, JobRecord
from repro.runner.tracestore import (
    TraceSpec,
    TraceStore,
    default_trace_store,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CODE_VERSION",
    "CacheStats",
    "CampaignRunner",
    "CampaignTelemetry",
    "JobFailed",
    "JobRecord",
    "ResultCache",
    "SimJob",
    "TraceSpec",
    "TraceStore",
    "active_runner",
    "canonical_json",
    "default_trace_store",
    "run_simulations",
    "simulate_spec",
    "use_runner",
]
