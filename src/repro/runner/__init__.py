"""Campaign orchestration: supervised parallel runs over a result cache.

The runner decomposes every figure into independent, content-addressed
``(trace, machine, check)`` simulation jobs and executes them through a
cache-first, fault-tolerant multiprocess executor:

* :mod:`repro.runner.tracestore` — bounded trace cache + archive spill
* :mod:`repro.runner.jobs` — the job model and its content hash
* :mod:`repro.runner.cache` — the on-disk JSON result cache
* :mod:`repro.runner.journal` — the fsynced checkpoint/resume journal
* :mod:`repro.runner.supervisor` — the self-healing worker pool
  (timeouts, retry with backoff, crash isolation, chaos harness hooks)
* :mod:`repro.runner.executor` — the runner and driver-facing API
* :mod:`repro.runner.telemetry` — per-job timing, cache accounting,
  resilience counters, ETA

See the README's "Campaign runner" and "Robustness" sections and
``repro-oltp campaign``.
"""

from repro.runner.cache import CACHE_FORMAT_VERSION, CacheStats, ResultCache
from repro.runner.executor import (
    CampaignRunner,
    active_runner,
    run_simulations,
    simulate_spec,
    use_runner,
)
from repro.runner.jobs import CODE_VERSION, SimJob, canonical_json
from repro.runner.journal import (
    JOURNAL_FORMAT_VERSION,
    CampaignJournal,
    JournalStats,
)
from repro.runner.supervisor import (
    JobFailed,
    JobFailure,
    JobOutcome,
    RetryPolicy,
    SupervisedExecutor,
)
from repro.runner.telemetry import (
    CampaignTelemetry,
    JobRecord,
    ResilienceStats,
)
from repro.runner.tracestore import (
    TraceSpec,
    TraceStore,
    default_trace_store,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CODE_VERSION",
    "JOURNAL_FORMAT_VERSION",
    "CacheStats",
    "CampaignJournal",
    "CampaignRunner",
    "CampaignTelemetry",
    "JobFailed",
    "JobFailure",
    "JobOutcome",
    "JobRecord",
    "JournalStats",
    "ResilienceStats",
    "ResultCache",
    "RetryPolicy",
    "SimJob",
    "SupervisedExecutor",
    "TraceSpec",
    "TraceStore",
    "active_runner",
    "canonical_json",
    "default_trace_store",
    "run_simulations",
    "simulate_spec",
    "use_runner",
]
