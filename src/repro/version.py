"""Build identity: package version plus every format/semantics version.

One place answers "exactly what build is this?" for the ``--version``
flag, the service ``/healthz`` endpoint, and machine-readable reports.
The payload combines the installed package version (from package
metadata, falling back to the source default when the project is run
from a checkout without installation) with the internal version
numbers that govern cache and archive compatibility:

* :data:`repro.runner.jobs.CODE_VERSION` — simulation semantics,
* :data:`repro.trace.storage.FORMAT_VERSION` — trace archive layout,
* :data:`repro.runner.cache.CACHE_FORMAT_VERSION` — result-cache entry
  layout,
* :data:`repro.runner.journal.JOURNAL_FORMAT_VERSION` — campaign
  journal layout.
"""

from __future__ import annotations

import platform

#: Source-tree fallback when package metadata is unavailable (running
#: from a checkout via ``PYTHONPATH=src`` without ``pip install``).
FALLBACK_VERSION = "1.0.0"


def package_version() -> str:
    """The installed distribution version, or the source fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - python < 3.8
        return FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return FALLBACK_VERSION


def version_info() -> dict:
    """The full build-identity payload (JSON-safe)."""
    from repro.runner.cache import CACHE_FORMAT_VERSION
    from repro.runner.jobs import CODE_VERSION
    from repro.runner.journal import JOURNAL_FORMAT_VERSION
    from repro.trace.storage import FORMAT_VERSION

    return {
        "package": package_version(),
        "code_version": CODE_VERSION,
        "trace_format": FORMAT_VERSION,
        "cache_format": CACHE_FORMAT_VERSION,
        "journal_format": JOURNAL_FORMAT_VERSION,
        "python": platform.python_version(),
    }


def version_string() -> str:
    """One line for ``repro-oltp --version``."""
    info = version_info()
    return (
        f"repro-oltp {info['package']} "
        f"(code version {info['code_version']}, "
        f"trace format {info['trace_format']}, "
        f"python {info['python']})"
    )
