"""Figure 13: effect of out-of-order processors on integration gains.

Reruns the Figure-10 ladder with the 4-wide out-of-order timing model,
prepending the in-order Base bar for the absolute comparison.  The two
paper claims: OOO buys ~1.4x (uni) / ~1.3x (MP) in absolute terms, and
the *relative* gains from integration are virtually identical to the
in-order ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.machine import MachineConfig
from repro.experiments.common import Figure, Settings, run_configs, trace_spec
from repro.experiments.integration import IntegrationStudy
from repro.experiments.integration import run as run_integration


def _ladder(ncpus: int, scale: int):
    configs = [
        ("Base OOO", MachineConfig.base(ncpus, scale=scale, cpu_model="ooo")),
        ("L2 OOO", MachineConfig.integrated_l2(ncpus, scale=scale, cpu_model="ooo")),
        ("L2+MC OOO", MachineConfig.integrated_l2_mc(ncpus, scale=scale, cpu_model="ooo")),
    ]
    if ncpus > 1:
        configs.append(
            ("All OOO", MachineConfig.fully_integrated(ncpus, scale=scale, cpu_model="ooo"))
        )
    return configs


@dataclass
class OooStudy:
    """Figure 13 plus the step-ratio comparison against in-order."""

    uni: Figure
    mp: Figure
    inorder: IntegrationStudy
    uni_ooo_gain: float  # in-order Base time / OOO Base time
    mp_ooo_gain: float

    def step_ratios(self) -> Dict[str, Dict[str, float]]:
        """Integration speedups, in-order vs OOO, per machine size.

        The paper's claim is that corresponding entries match.
        """
        return {
            "uni": {
                "L2 in-order": self.inorder.uni.speedup("L2"),
                "L2 ooo": self.uni.speedup("L2 OOO"),
                "L2+MC in-order": self.inorder.uni.speedup("L2+MC"),
                "L2+MC ooo": self.uni.speedup("L2+MC OOO"),
            },
            "mp": {
                "L2 in-order": self.inorder.mp.speedup("L2"),
                "L2 ooo": self.mp.speedup("L2 OOO"),
                "All in-order": self.inorder.mp.speedup("All"),
                "All ooo": self.mp.speedup("All OOO"),
            },
        }

    def render(self) -> str:
        from repro.experiments.report import time_table

        lines = [time_table(self.uni), "", time_table(self.mp), ""]
        lines.append(
            f"OOO absolute gain at Base: uni {self.uni_ooo_gain:.2f}x "
            f"(paper ~1.4x), MP {self.mp_ooo_gain:.2f}x (paper ~1.3x)"
        )
        for machine, ratios in self.step_ratios().items():
            pairs = ", ".join(f"{k}={v:.2f}x" for k, v in ratios.items())
            lines.append(f"integration steps ({machine}): {pairs}")
        lines.append(
            "paper: relative integration gains are virtually identical "
            "for in-order and out-of-order processors"
        )
        return "\n".join(lines)


def run(settings: Optional[Settings] = None) -> OooStudy:
    """Reproduce Figure 13."""
    settings = settings or Settings.paper()
    scale = settings.scale
    inorder = run_integration(settings)

    uni = run_configs(
        "Figure 13 (uni)", "integration with OOO — uniprocessor",
        _ladder(1, scale), trace_spec(1, settings), check=settings.check,
    )
    mp = run_configs(
        "Figure 13 (MP)", "integration with OOO — 8 processors",
        _ladder(8, scale), trace_spec(8, settings), check=settings.check,
    )
    uni_gain = (
        inorder.uni.row("Base").result.exec_time / uni.row("Base OOO").result.exec_time
    )
    mp_gain = (
        inorder.mp.row("Base").result.exec_time / mp.row("Base OOO").result.exec_time
    )
    # Present the in-order Base as an extra normalized row, as the
    # paper's leftmost bar does.
    uni.notes.append(f"Base in-order would plot at {100 * uni_gain:.1f}")
    mp.notes.append(f"Base in-order would plot at {100 * mp_gain:.1f}")
    return OooStudy(uni=uni, mp=mp, inorder=inorder,
                    uni_ooo_gain=uni_gain, mp_ooo_gain=mp_gain)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
