"""Figures 7 and 8: impact of integrating the L2 cache on-chip.

The leftmost bar is the Base configuration with the 8 MB direct-mapped
off-chip L2; the remaining bars are on-chip SRAM L2s (1 MB 8-way, then
2 MB at 8/4/2/1 ways) and the larger-but-slower 8 MB 8-way embedded
DRAM option.  Figure 7 is the uniprocessor, Figure 8 the 8-processor
system; everything is normalized to Base.
"""

from __future__ import annotations

from typing import Optional

from repro.core.machine import MachineConfig
from repro.experiments.common import Figure, Settings, run_configs, trace_spec
from repro.params import MB, L2Technology

#: (label, size, assoc) for the integrated SRAM options, paper order.
SRAM_POINTS = (
    ("1M8w", 1 * MB, 8),
    ("2M8w", 2 * MB, 8),
    ("2M4w", 2 * MB, 4),
    ("2M2w", 2 * MB, 2),
    ("2M1w", 2 * MB, 1),
)


def _configs(ncpus: int, scale: int):
    configs = [("8M1w Base", MachineConfig.base(ncpus, scale=scale))]
    for label, size, assoc in SRAM_POINTS:
        configs.append(
            (
                label,
                MachineConfig.integrated_l2(
                    ncpus, l2_size=size, l2_assoc=assoc, scale=scale
                ),
            )
        )
    configs.append(
        (
            "8M8w DRAM",
            MachineConfig.integrated_l2(
                ncpus,
                l2_size=8 * MB,
                l2_assoc=8,
                technology=L2Technology.ON_CHIP_DRAM,
                scale=scale,
            ),
        )
    )
    return configs


def _annotate(figure: Figure, ncpus: int) -> None:
    speedup = figure.speedup("2M8w")
    target = "~1.4x" if ncpus == 1 else "~1.2x"
    figure.notes.append(
        f"2M8w on-chip speedup over 8M1w off-chip = {speedup:.2f}x (paper: {target})"
    )
    m2m8w = figure.row("2M8w").result.misses.total
    m2m4w = figure.row("2M4w").result.misses.total
    mbase = figure.baseline.result.misses.total or 1
    figure.notes.append(
        f"misses vs 8M1w: 2M8w {m2m8w / mbase:.2f}, 2M4w {m2m4w / mbase:.2f} "
        "(paper: both < 1 — associativity beats capacity)"
    )
    dram = figure.speedup("8M8w DRAM", over="2M8w")
    figure.notes.append(
        f"8M8w DRAM vs 2M8w SRAM = {dram:.2f}x "
        + ("(paper: DRAM loses on a uniprocessor)" if ncpus == 1
           else "(paper: ~10% loss, but more robust capacity)")
    )


def run(ncpus: int, settings: Optional[Settings] = None) -> Figure:
    """Run the on-chip study for 1 (Figure 7) or 8 (Figure 8) CPUs."""
    settings = settings or Settings.paper()
    fig_id = "Figure 7" if ncpus == 1 else "Figure 8"
    title = (
        f"impact of on-chip L2 — "
        f"{'uniprocessor' if ncpus == 1 else f'{ncpus} processors'}"
    )
    figure = run_configs(fig_id, title, _configs(ncpus, settings.scale),
                         trace_spec(ncpus, settings), check=settings.check)
    _annotate(figure, ncpus)
    return figure


def run_uniprocessor(settings: Optional[Settings] = None) -> Figure:
    """Figure 7."""
    return run(1, settings)


def run_multiprocessor(settings: Optional[Settings] = None) -> Figure:
    """Figure 8."""
    return run(8, settings)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.report import render

    print(render(run_uniprocessor()))
    print()
    print(render(run_multiprocessor()))
