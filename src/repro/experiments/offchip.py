"""Figures 5 and 6: behaviour of OLTP with off-chip L2 configurations.

The sweep varies the external L2 from 1 MB to 8 MB in direct-mapped
and 4-way organizations (Base latencies), plus the Conservative Base
with an 8 MB 4-way cache; Figure 5 is the uniprocessor, Figure 6 the
8-processor system.  Everything is normalized to the 1 MB
direct-mapped Base configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.core.machine import MachineConfig, cache_label
from repro.experiments.common import Figure, Settings, run_configs, trace_spec
from repro.params import MB

SIZES_MB = (1, 2, 4, 8)


def sweep_configs(ncpus: int, scale: int):
    """The labelled off-chip sweep configurations (also used by selftest)."""
    configs = []
    for assoc in (1, 4):
        for size_mb in SIZES_MB:
            machine = MachineConfig.base(
                ncpus, l2_size=size_mb * MB, l2_assoc=assoc, scale=scale
            )
            configs.append((cache_label(size_mb * MB, assoc), machine))
    configs.append(("Cons 8M4w", MachineConfig.conservative_base(ncpus, scale=scale)))
    return configs


def _annotate(figure: Figure, ncpus: int) -> None:
    base_misses = figure.baseline.result.misses.total or 1
    m8m1w = figure.row("8M1w").result.misses.total
    m2m4w = figure.row("2M4w").result.misses.total
    m8m4w = figure.row("8M4w").result.misses.total
    figure.notes.append(
        f"2M4w misses / 8M1w misses = {m2m4w / max(1, m8m1w):.2f} "
        "(paper: < 1; conflict misses dominate the big direct-mapped cache)"
    )
    figure.notes.append(
        f"1M1w -> 8M4w miss reduction = {base_misses / max(1, m8m4w):.1f}x "
        "(paper: ~50x uniprocessor; communication-bounded in the MP)"
    )
    if ncpus > 1:
        share = figure.row("8M4w").result.misses.dirty_share
        figure.notes.append(
            f"dirty 3-hop share at 8M4w = {share:.0%} (paper: >50%)"
        )


def run(ncpus: int, settings: Optional[Settings] = None) -> Figure:
    """Run the off-chip sweep for 1 (Figure 5) or 8 (Figure 6) CPUs."""
    settings = settings or Settings.paper()
    fig_id = "Figure 5" if ncpus == 1 else "Figure 6"
    title = (
        f"OLTP with off-chip L2 configurations — "
        f"{'uniprocessor' if ncpus == 1 else f'{ncpus} processors'}"
    )
    figure = run_configs(fig_id, title, sweep_configs(ncpus, settings.scale),
                         trace_spec(ncpus, settings), check=settings.check)
    _annotate(figure, ncpus)
    return figure


def run_uniprocessor(settings: Optional[Settings] = None) -> Figure:
    """Figure 5."""
    return run(1, settings)


def run_multiprocessor(settings: Optional[Settings] = None) -> Figure:
    """Figure 6."""
    return run(8, settings)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.report import render

    print(render(run_uniprocessor()))
    print()
    print(render(run_multiprocessor()))
