"""Figures 11 and 12: remote access caches on a fully integrated design.

Figure 11 looks at L2 *miss composition* with and without an 8 MB
8-way RAC for a 1 MB 4-way on-chip L2, with and without OS-based
instruction replication.  Figure 12 compares the *performance* of the
RAC against simply building a slightly larger L2 (1.25 MB — the area
the RAC's on-chip tags would have cost), and shows the RAC is useless
at 2 MB 8-way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.machine import MachineConfig
from repro.core.results import RunResult
from repro.experiments.common import Figure, Settings, run_configs, trace_spec
from repro.params import MB
from repro.runner import SimJob, run_simulations

RAC_SIZE = 8 * MB
NCPUS = 8


def _machine(scale: int, l2_size: int, l2_assoc: int, rac: bool, repl: bool) -> MachineConfig:
    return MachineConfig.fully_integrated(
        NCPUS,
        l2_size=l2_size,
        l2_assoc=l2_assoc,
        rac_size=RAC_SIZE if rac else None,
        replicate_code=repl,
        scale=scale,
    )


@dataclass
class RacMissStudy:
    """Figure 11: miss-mix shifts from the RAC, ± code replication."""

    no_rac_no_repl: RunResult
    rac_no_repl: RunResult
    no_rac_repl: RunResult
    rac_repl: RunResult

    @property
    def hit_rate_no_repl(self) -> float:
        """Paper: ~42 %."""
        return self.rac_no_repl.rac.hit_rate

    @property
    def hit_rate_repl(self) -> float:
        """Paper: ~30 %."""
        return self.rac_repl.rac.hit_rate

    def rows(self):
        return [
            ("NoRAC NoRepl", self.no_rac_no_repl),
            ("RAC NoRepl", self.rac_no_repl),
            ("NoRAC Repl", self.no_rac_repl),
            ("RAC Repl", self.rac_repl),
        ]

    def render(self) -> str:
        base = self.no_rac_no_repl.misses.total or 1
        lines = [
            "Figure 11: RAC impact on L2 miss mix — 8 CPUs, 1M4w L2",
            f"{'configuration':14s} {'total':>7s} {'I-Loc':>7s} {'I-Rem':>7s} "
            f"{'D-Loc':>7s} {'D-RemC':>7s} {'D-RemD':>7s} {'RAC hit':>8s}",
        ]
        for label, result in self.rows():
            m = result.misses.normalized_to(base)
            hit = f"{result.rac.hit_rate:7.0%}" if result.rac.probes else "      -"
            lines.append(
                f"{label:14s} {m['total']:7.1f} {m['I-Loc']:7.1f} {m['I-Rem']:7.1f} "
                f"{m['D-Loc']:7.1f} {m['D-RemClean']:7.1f} {m['D-RemDirty']:7.1f} {hit:>8s}"
            )
        lines.append(
            "inval/write: "
            + ", ".join(
                f"{label}={r.protocol.invalidations_per_write:.2f}"
                for label, r in self.rows()
            )
            + "   (paper: ~1-in-6 without RAC, ~1-in-3 with)"
        )
        return "\n".join(lines)


def run_miss_study(settings: Optional[Settings] = None) -> RacMissStudy:
    """Figure 11."""
    settings = settings or Settings.paper()
    spec = trace_spec(NCPUS, settings)
    scale = settings.scale
    check = settings.check
    machines = [
        _machine(scale, 1 * MB, 4, False, False),
        _machine(scale, 1 * MB, 4, True, False),
        _machine(scale, 1 * MB, 4, False, True),
        _machine(scale, 1 * MB, 4, True, True),
    ]
    results = run_simulations(
        [SimJob(spec=spec, machine=m, check=check) for m in machines]
    )
    return RacMissStudy(
        no_rac_no_repl=results[0],
        rac_no_repl=results[1],
        no_rac_repl=results[2],
        rac_repl=results[3],
    )


def run_perf_study(settings: Optional[Settings] = None) -> Figure:
    """Figure 12: RAC performance vs spending the tag area on more L2.

    All configurations use instruction replication (as the paper does
    for this comparison).  The 1.25 MB L2 models reclaiming the area
    of the RAC's on-chip tags.
    """
    settings = settings or Settings.paper()
    spec = trace_spec(NCPUS, settings)
    scale = settings.scale
    configs = [
        ("1M4w NoRAC", _machine(scale, 1 * MB, 4, False, True)),
        ("1M4w RAC", _machine(scale, 1 * MB, 4, True, True)),
        ("1.25M4w NoRAC", _machine(scale, 1280 * 1024, 4, False, True)),
        ("2M8w NoRAC", _machine(scale, 2 * MB, 8, False, True)),
        ("2M8w RAC", _machine(scale, 2 * MB, 8, True, True)),
    ]
    figure = run_configs(
        "Figure 12", "RAC performance with different L2 sizes — 8 CPUs",
        configs, spec, check=settings.check,
    )
    rac_gain = 1 - figure.row("1M4w RAC").time_norm / 100.0
    figure.notes.append(
        f"RAC benefit at 1M4w = {rac_gain:.1%} execution-time reduction "
        "(paper: 4.3%)"
    )
    bigger = figure.row("1.25M4w NoRAC").time_norm
    withrac = figure.row("1M4w RAC").time_norm
    figure.notes.append(
        f"1.25M L2 without RAC ({bigger:.1f}) vs 1M L2 with RAC ({withrac:.1f}) "
        "(paper: the bigger L2 wins once tag area is accounted)"
    )
    r2m = figure.speedup("2M8w RAC", over="2M8w NoRAC")
    figure.notes.append(
        f"RAC at 2M8w changes performance by {r2m:.3f}x (paper: ~none, hit rate <10%)"
    )
    return figure


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.report import render

    print(run_miss_study().render())
    print()
    print(render(run_perf_study(), misses=False))
