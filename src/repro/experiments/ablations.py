"""Ablation studies for the design choices DESIGN.md calls out.

Four studies beyond the paper's own figures:

* **victim buffers** — Figure 1's "L2 Victim Buffers" box, which the
  paper draws but never evaluates: can a small fully-associative
  buffer substitute for associativity in the on-chip L2?
* **chip multiprocessing** — Section 8's "next logical step": at a
  fixed core count, trade coherence nodes for cores per chip.
* **latency sensitivity** — perturb each Figure-3 latency class
  separately on the fully integrated machine to rank which one OLTP
  actually buys performance from (the paper's argument for why the
  CC/NR step matters in MP but not uni).
* **scaling robustness** — rerun the headline Figure-7 ratios at
  several scale factors to show the proportional-scaling methodology
  (DESIGN.md §6) preserves shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.machine import MachineConfig
from repro.core.results import RunResult
from repro.experiments.common import Settings, get_trace, trace_spec
from repro.params import MB
from repro.runner import SimJob, TraceSpec, run_simulations
from repro.scenario.topology import TopologySpec


# ---------------------------------------------------------------------------
# Victim buffers
# ---------------------------------------------------------------------------

@dataclass
class VictimBufferStudy:
    """Direct-mapped on-chip L2 with growing victim buffers vs 8-way."""

    rows: List[Tuple[str, RunResult]]

    def render(self) -> str:
        base = self.rows[0][1]
        lines = [
            "Ablation: L2 victim buffers (8 CPUs, fully integrated, 2 MB L2)",
            f"{'configuration':22s} {'time':>7s} {'misses':>8s} {'vs DM':>7s}",
        ]
        for label, r in self.rows:
            lines.append(
                f"{label:22s} {100 * r.exec_time / base.exec_time:7.1f} "
                f"{r.misses.total:8d} {base.misses.total / max(1, r.misses.total):6.2f}x"
            )
        lines.append(
            "verdict: a small buffer recovers part of the conflict-miss "
            "population, but associativity removes it wholesale — "
            "consistent with the paper's conflict-miss diagnosis."
        )
        return "\n".join(lines)


def victim_buffer_study(settings: Optional[Settings] = None) -> VictimBufferStudy:
    settings = settings or Settings.paper()
    spec = trace_spec(8, settings)
    scale = settings.scale

    def machine(assoc: int, vb: int) -> MachineConfig:
        return MachineConfig.fully_integrated(
            8, l2_size=2 * MB, l2_assoc=assoc, victim_entries=vb, scale=scale
        )

    check = settings.check
    points = [
        ("2M1w", machine(1, 0)),
        ("2M1w +VB8", machine(1, 8)),
        ("2M1w +VB16", machine(1, 16)),
        ("2M1w +VB64", machine(1, 64)),
        ("2M2w", machine(2, 0)),
        ("2M8w", machine(8, 0)),
    ]
    results = run_simulations(
        [SimJob(spec=spec, machine=m, check=check) for _, m in points]
    )
    return VictimBufferStudy(
        [(label, r) for (label, _), r in zip(points, results)]
    )


# ---------------------------------------------------------------------------
# Chip multiprocessing
# ---------------------------------------------------------------------------

@dataclass
class CmpStudy:
    """Fixed 16 cores arranged as 16x1, 8x2 and 4x4 chips."""

    rows: List[Tuple[str, RunResult]]

    def render(self) -> str:
        base = self.rows[0][1]
        lines = [
            "Ablation: chip multiprocessing at a fixed 16 cores",
            f"{'configuration':22s} {'cyc/txn':>9s} {'chips':>6s} "
            f"{'misses':>8s} {'3-hop%':>7s}",
        ]
        for label, r in self.rows:
            lines.append(
                f"{label:22s} {r.cycles_per_txn:9.0f} "
                f"{r.machine.num_nodes:6d} {r.misses.total:8d} "
                f"{100 * r.misses.dirty_share:6.1f}"
            )
        ratio = self.rows[1][1].cycles_per_txn / base.cycles_per_txn
        lines.append(
            f"8 dual-core chips cost {ratio:.2f}x the cycles/txn of 16 "
            "single-core chips — near-parity with half the coherence "
            "nodes, which is the paper's Section-8 case for CMP."
        )
        return "\n".join(lines)


def cmp_study(settings: Optional[Settings] = None) -> CmpStudy:
    settings = settings or Settings.paper()
    txns = settings.mp_txns * 4 // 3
    spec = TraceSpec(ncpus=16, scale=settings.scale, txns=txns,
                     seed=settings.seed)
    scale = settings.scale
    check = settings.check
    points = [
        ("16 chips x 1 core",
         MachineConfig.fully_integrated(16, scale=scale)),
        ("8 chips x 2 cores",
         MachineConfig.chip_multiprocessor(8, cores_per_node=2, scale=scale)),
        ("4 chips x 4 cores",
         MachineConfig.chip_multiprocessor(4, cores_per_node=4, scale=scale)),
    ]
    results = run_simulations(
        [SimJob(spec=spec, machine=m, check=check) for _, m in points]
    )
    return CmpStudy([(label, r) for (label, _), r in zip(points, results)])


# ---------------------------------------------------------------------------
# Latency sensitivity
# ---------------------------------------------------------------------------

@dataclass
class LatencySensitivity:
    """Execution-time delta from +50 % on each latency class."""

    ncpus: int
    baseline: RunResult
    deltas: List[Tuple[str, float]]  # (class, slowdown factor)

    def render(self) -> str:
        where = "uniprocessor" if self.ncpus == 1 else f"{self.ncpus} CPUs"
        lines = [
            f"Ablation: +50% sensitivity per latency class ({where}, "
            "fully integrated)",
            f"{'latency class':16s} {'slowdown':>9s}",
        ]
        for name, factor in self.deltas:
            lines.append(f"{name:16s} {factor:9.3f}x")
        ranked = max(self.deltas, key=lambda kv: kv[1])[0]
        lines.append(
            f"most performance-critical class: {ranked} — the paper "
            "predicts l2_hit for uniprocessors and l2_hit + remote_dirty "
            "for multiprocessors (Section 9)."
        )
        return "\n".join(lines)


def latency_sensitivity(settings: Optional[Settings] = None,
                        ncpus: int = 8) -> LatencySensitivity:
    settings = settings or Settings.paper()
    spec = trace_spec(ncpus, settings)
    base_machine = MachineConfig.fully_integrated(ncpus, scale=settings.scale) \
        if ncpus > 1 else MachineConfig.integrated_l2_mc(scale=settings.scale)
    table = base_machine.latencies
    classes = [
        name for name in ("l2_hit", "local", "remote_clean", "remote_dirty")
        if ncpus > 1 or not name.startswith("remote")
    ]
    machines = [base_machine]
    for field_name in classes:
        bumped_value = int(getattr(table, field_name) * 1.5)
        bumped = replace(table, **{field_name: bumped_value})
        machines.append(base_machine.with_(
            topology=TopologySpec.uniform(base_table=bumped)))
    results = run_simulations(
        [SimJob(spec=spec, machine=m, check=settings.check) for m in machines]
    )
    baseline = results[0]
    deltas = [
        (name, result.exec_time / baseline.exec_time)
        for name, result in zip(classes, results[1:])
    ]
    return LatencySensitivity(ncpus, baseline, deltas)


# ---------------------------------------------------------------------------
# TLB reach
# ---------------------------------------------------------------------------

@dataclass
class TlbStudy:
    """Execution-time cost of finite TLB reach (software-filled).

    The paper's figures assume a perfect TLB (MMU time is folded into
    base CPI); SimOS does model the MMU, and OLTP's footprints made
    Alpha TLB behaviour a known issue.  Note the caveat: our scaled
    pages make footprint-in-pages larger than on real hardware, so
    entry counts are not directly comparable — the *shape* of the
    reach curve is the result.
    """

    rows: List[Tuple[int, float, float]]  # (entries, slowdown, misses/txn)

    def render(self) -> str:
        lines = [
            "Ablation: TLB reach (8 CPUs, fully integrated; 0 = perfect TLB)",
            f"{'entries':>8s} {'slowdown':>9s} {'fills/txn':>10s}",
        ]
        for entries, slowdown, fills in self.rows:
            label = "perfect" if entries == 0 else str(entries)
            lines.append(f"{label:>8s} {slowdown:9.3f}x {fills:10.1f}")
        lines.append(
            "the reach knee mirrors the cache story: OLTP's footprint "
            "defeats small reach; past the knee the cost vanishes."
        )
        return "\n".join(lines)


def tlb_study(settings: Optional[Settings] = None,
              entry_counts: Tuple[int, ...] = (0, 64, 128, 256, 1024)) -> TlbStudy:
    settings = settings or Settings.paper()
    spec = trace_spec(8, settings)
    txns = max(1, get_trace(8, settings).measured_txns)
    base_machine = MachineConfig.fully_integrated(8, scale=settings.scale)
    finite = [e for e in entry_counts if e != 0]
    machines = [base_machine]
    machines.extend(base_machine.with_(tlb_entries=e) for e in finite)
    results = run_simulations(
        [SimJob(spec=spec, machine=m, check=settings.check) for m in machines]
    )
    baseline = results[0]
    by_entries = dict(zip(finite, results[1:]))
    rows = []
    for entries in entry_counts:
        if entries == 0:
            rows.append((0, 1.0, 0.0))
            continue
        result = by_entries[entries]
        rows.append(
            (entries, result.exec_time / baseline.exec_time,
             result.tlb_misses / txns)
        )
    return TlbStudy(rows)


# ---------------------------------------------------------------------------
# Scaling robustness
# ---------------------------------------------------------------------------

@dataclass
class ScalingStudy:
    """Key Figure-7 ratios at several scale factors."""

    rows: List[Tuple[int, float, float]]  # (scale, speedup, miss ratio)

    def render(self) -> str:
        lines = [
            "Ablation: proportional-scaling robustness (Figure-7 headline)",
            f"{'scale':>6s} {'2M8w speedup':>13s} {'2M8w/8M1w misses':>17s}",
        ]
        for scale, speedup, ratio in self.rows:
            lines.append(f"{scale:6d} {speedup:13.2f} {ratio:17.2f}")
        lines.append(
            "both the >1.3x integration speedup and the <1.0 miss ratio "
            "hold across scales, supporting DESIGN.md §6."
        )
        return "\n".join(lines)


def scaling_study(scales: Tuple[int, ...] = (64, 48, 32),
                  txns: int = 250, seed: int = 7) -> ScalingStudy:
    jobs = []
    for scale in scales:
        spec = TraceSpec(ncpus=1, scale=scale, txns=txns, seed=seed)
        jobs.append(SimJob(spec=spec, machine=MachineConfig.base(1, scale=scale)))
        jobs.append(
            SimJob(spec=spec, machine=MachineConfig.integrated_l2(1, scale=scale))
        )
    results = run_simulations(jobs)
    rows = []
    for i, scale in enumerate(scales):
        base, soc = results[2 * i], results[2 * i + 1]
        rows.append(
            (
                scale,
                soc.speedup_over(base),
                soc.misses.total / max(1, base.misses.total),
            )
        )
    return ScalingStudy(rows)


def run_all(settings: Optional[Settings] = None) -> str:
    """Run every ablation and return the combined report."""
    settings = settings or Settings.paper()
    parts = [
        victim_buffer_study(settings).render(),
        cmp_study(settings).render(),
        latency_sensitivity(settings, ncpus=8).render(),
        latency_sensitivity(settings, ncpus=1).render(),
        tlb_study(settings).render(),
        scaling_study().render(),
    ]
    return "\n\n".join(parts)
