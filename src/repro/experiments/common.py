"""Shared machinery for the per-figure experiment drivers.

Every figure driver follows the same pattern: name the OLTP workload
for its processor count as a :class:`~repro.runner.TraceSpec`, simulate
a list of machine configurations against it, and return a
:class:`Figure` whose rows are normalized the way the paper normalizes
that figure.  Simulations are enumerated as jobs through
:func:`repro.runner.run_simulations`, so the same driver code runs
serially by default and fans out across workers (with result caching)
under ``repro-oltp campaign``.  Traces materialize through the
process-wide bounded :class:`~repro.runner.TraceStore`, so a full
reproduction run generates each workload exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.core.machine import MachineConfig
from repro.core.results import RunResult
from repro.core.system import System, simulate
from repro.runner import SimJob, TraceSpec, default_trace_store, run_simulations
from repro.trace.generator import OltpTrace


@dataclass(frozen=True)
class Settings:
    """Run-size knobs for the experiment drivers.

    ``quick()`` is sized for CI smoke runs; ``paper()`` for the full
    benchmark harness.  ``mp_txns`` is larger than ``uni_txns`` because
    8 CPUs split the transaction stream.  ``check`` selects the
    integrity-checking tier every simulation runs with (see
    :class:`~repro.integrity.checker.CheckLevel`).
    """

    scale: int = 32
    uni_txns: int = 400
    mp_txns: int = 1200
    seed: int = 7
    check: str = "off"

    @classmethod
    def paper(cls) -> "Settings":
        return cls()

    @classmethod
    def quick(cls) -> "Settings":
        return cls(scale=64, uni_txns=120, mp_txns=320)


def trace_spec(ncpus: int, settings: Settings) -> TraceSpec:
    """The workload spec the drivers use for ``ncpus`` processors."""
    txns = settings.uni_txns if ncpus == 1 else settings.mp_txns
    return TraceSpec(
        ncpus=ncpus, scale=settings.scale, txns=txns, seed=settings.seed
    )


def get_trace(ncpus: int, settings: Settings) -> OltpTrace:
    """Materialize the OLTP trace for ``ncpus`` processors.

    Resolves through the process-wide bounded
    :class:`~repro.runner.TraceStore` — the same code path campaign
    workers use — so repeated calls reuse one in-memory trace and,
    when a spill directory is configured, one on-disk archive.
    """
    return default_trace_store().get(trace_spec(ncpus, settings))


def clear_trace_cache() -> None:
    """Drop the in-memory traces (tests use this to bound memory)."""
    default_trace_store().clear()


@dataclass
class Row:
    """One bar of a figure: a labelled, normalized simulation result."""

    label: str
    result: RunResult
    time_norm: float = 0.0
    miss_norm: float = 0.0
    #: Replay engine the configuration resolved to ("fast", "general",
    #: "vectorized" or "vectorized-mp") — provenance for plots and
    #: benchmark reports; never part of the numbers themselves.
    engine: str = ""

    @property
    def breakdown_norm(self) -> dict:
        """Execution-time components scaled so the baseline totals 100."""
        b = self.result.breakdown
        total = b.total or 1.0
        f = self.time_norm / total
        return {
            "CPU": b.busy * f,
            "L2Hit": b.l2_hit * f,
            "LocStall": b.local_stall * f,
            "RemStall": b.remote_stall * f,
        }

    def miss_breakdown_norm(self, baseline_misses: float) -> dict:
        """Miss categories scaled so the baseline's total is 100."""
        return self.result.misses.normalized_to(baseline_misses or 1)


@dataclass
class Figure:
    """A reproduced figure: titled, normalized rows plus shape notes."""

    figure_id: str
    title: str
    rows: List[Row] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    baseline_index: int = 0

    @property
    def baseline(self) -> Row:
        return self.rows[self.baseline_index]

    def row(self, label: str) -> Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"{self.figure_id} has no row {label!r}")

    def speedup(self, label: str, over: Optional[str] = None) -> float:
        base = self.row(over) if over else self.baseline
        return base.result.exec_time / self.row(label).result.exec_time


def run_configs(
    figure_id: str,
    title: str,
    labelled_configs: List[Tuple[str, MachineConfig]],
    trace: Union[OltpTrace, TraceSpec],
    baseline_index: int = 0,
    check: str = "off",
) -> Figure:
    """Simulate every configuration and normalize against the baseline.

    ``trace`` is normally a :class:`~repro.runner.TraceSpec`: the
    configurations become independent jobs routed through the active
    campaign runner (parallel, cached) or simulated inline when none is
    installed.  A concrete :class:`OltpTrace` — synthetic traces in
    tests, mostly — always simulates inline.
    """
    if isinstance(trace, TraceSpec):
        results = run_simulations(
            [SimJob(spec=trace, machine=machine, check=check)
             for _, machine in labelled_configs]
        )
    else:
        results = [
            simulate(machine, trace, check=check)
            for _, machine in labelled_configs
        ]
    rows = [
        Row(label, result,
            engine=System.select_engine(machine, check=check))
        for (label, machine), result in zip(labelled_configs, results)
    ]
    base_time = rows[baseline_index].result.exec_time or 1.0
    base_miss = rows[baseline_index].result.misses.total or 1
    for row in rows:
        row.time_norm = 100.0 * row.result.exec_time / base_time
        row.miss_norm = 100.0 * row.result.misses.total / base_miss
    return Figure(figure_id, title, rows, baseline_index=baseline_index)
