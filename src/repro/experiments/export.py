"""CSV export of reproduced figures (for spreadsheets and plotting)."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Union

from repro.experiments.common import Figure

#: Column order of the exported rows.
COLUMNS = (
    "configuration",
    "time_norm",
    "cpu",
    "l2_hit",
    "local_stall",
    "remote_stall",
    "miss_norm",
    "i_local",
    "i_remote",
    "d_local",
    "d_remote_clean",
    "d_remote_dirty",
    "cycles_per_txn",
    "dirty_share",
)


def figure_rows(figure: Figure) -> List[dict]:
    """One flat dict per bar, normalized like the paper's graphs."""
    base_misses = figure.baseline.result.misses.total or 1
    rows = []
    for row in figure.rows:
        b = row.breakdown_norm
        m = row.miss_breakdown_norm(base_misses)
        rows.append(
            {
                "configuration": row.label,
                "time_norm": round(row.time_norm, 3),
                "cpu": round(b["CPU"], 3),
                "l2_hit": round(b["L2Hit"], 3),
                "local_stall": round(b["LocStall"], 3),
                "remote_stall": round(b["RemStall"], 3),
                "miss_norm": round(row.miss_norm, 3),
                "i_local": round(m["I-Loc"], 3),
                "i_remote": round(m["I-Rem"], 3),
                "d_local": round(m["D-Loc"], 3),
                "d_remote_clean": round(m["D-RemClean"], 3),
                "d_remote_dirty": round(m["D-RemDirty"], 3),
                "cycles_per_txn": round(row.result.cycles_per_txn, 1),
                "dirty_share": round(row.result.misses.dirty_share, 4),
            }
        )
    return rows


def figure_to_csv(figure: Figure) -> str:
    """Render a figure as CSV text."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=COLUMNS)
    writer.writeheader()
    writer.writerows(figure_rows(figure))
    return buf.getvalue()


def write_figure_csv(figure: Figure, path: Union[str, Path]) -> Path:
    """Write a figure's CSV to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(figure_to_csv(figure))
    return path
