"""Experiment drivers: one module per paper figure.

=============  ==========================================  =================
paper artifact what it shows                               driver
=============  ==========================================  =================
Figure 3       latency table per integration level         fig3_latencies
Figure 5       off-chip L2 sweep, uniprocessor             offchip.run(1)
Figure 6       off-chip L2 sweep, 8 processors             offchip.run(8)
Figure 7       on-chip L2, uniprocessor                    onchip.run(1)
Figure 8       on-chip L2, 8 processors                    onchip.run(8)
Figure 10      successive integration ladder               integration.run
Figure 11      RAC miss-mix study                          rac.run_miss_study
Figure 12      RAC vs bigger L2 performance                rac.run_perf_study
Figure 13      out-of-order processors                     ooo.run
=============  ==========================================  =================
"""

from repro.experiments.common import (
    Figure,
    Row,
    Settings,
    clear_trace_cache,
    get_trace,
    run_configs,
)
from repro.experiments.export import figure_rows, figure_to_csv, write_figure_csv

__all__ = [
    "Figure",
    "Row",
    "Settings",
    "clear_trace_cache",
    "get_trace",
    "run_configs",
    "figure_rows",
    "figure_to_csv",
    "write_figure_csv",
]
