"""Figure 3: memory latencies for the studied configurations.

Unlike the other experiments this is an input table, not a simulation
output; reproducing it means rendering the table we actually simulate
with and checking the ratios the paper quotes in Section 2.3 (full
integration cuts L2 hit 1.67x, local 1.33x, remote 1.17x, remote
dirty 1.38x relative to Base).
"""

from __future__ import annotations

from repro.params import IntegrationLevel, figure3_rows, latencies


def reduction_ratios() -> dict:
    """Section 2.3 ratios: Base (1-way) over full integration."""
    base = latencies(IntegrationLevel.BASE, l2_assoc=1)
    full = latencies(IntegrationLevel.FULL)
    return {
        "l2_hit": base.l2_hit / full.l2_hit,
        "local": base.local / full.local,
        "remote_clean": base.remote_clean / full.remote_clean,
        "remote_dirty": base.remote_dirty / full.remote_dirty,
    }


def render() -> str:
    """The Figure-3 table, in cycles (equals ns at 1 GHz)."""
    lines = [
        "Figure 3: memory latencies per configuration (cycles @ 1 GHz)",
        f"{'configuration':28s} {'L2 hit':>7s} {'local':>7s} {'remote':>7s} {'dirty':>7s}",
    ]
    for label, row in figure3_rows():
        lines.append(
            f"{label:28s} {row.l2_hit:7d} {row.local:7d} "
            f"{row.remote_clean:7d} {row.remote_dirty:7d}"
        )
    ratios = reduction_ratios()
    lines.append(
        "full integration vs Base: "
        f"L2 hit {ratios['l2_hit']:.2f}x, local {ratios['local']:.2f}x, "
        f"remote {ratios['remote_clean']:.2f}x, dirty {ratios['remote_dirty']:.2f}x"
    )
    return "\n".join(lines)


def run():
    """Uniform driver interface: returns the rendered table."""
    return render()


if __name__ == "__main__":  # pragma: no cover
    print(render())
