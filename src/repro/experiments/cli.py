"""Command-line entry point: regenerate any paper figure.

Usage::

    repro-oltp fig7                # reproduce Figure 7 at paper settings
    repro-oltp all --quick         # smoke-run every figure
    repro-oltp fig10 --scale 16    # bigger (slower, higher-fidelity) run
    repro-oltp campaign --jobs 4   # all figures, parallel, result-cached
    repro-oltp campaign fig5,fig6 --resume run.journal   # subset, resumable
    repro-oltp profile fig6        # figure + self-time table + Chrome trace
    repro-oltp fig8 --metrics-out fig8.json   # per-quantum metric series
    repro-oltp serve --port 8077 --journal svc.journal   # job service
    repro-oltp loadgen --requests 500 --mix 80:20        # drive the service
    repro-oltp stream --scale-x 100     # 100x workload at flat memory
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional

from repro.experiments import (
    ablations,
    fig3_latencies,
    integration,
    offchip,
    onchip,
    rac,
)
from repro.experiments import ooo as ooo_experiment
from repro.experiments.campaign import DEFAULT_CACHE_DIR, default_jobs, run_campaign
from repro.experiments.common import Settings
from repro.experiments.export import write_figure_csv
from repro.experiments.report import render
from repro.integrity import ReproError
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    render_self_time,
    use_metrics,
    use_tracer,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.runner import JobFailed

FIGURES = ("fig3", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12", "fig13")
EXTRAS = ("ablations", "selftest", "campaign", "profile", "serve", "loadgen",
          "stream", "scenario")

#: Subcommands of the ``scenario`` verb.
SCENARIO_ACTIONS = ("list", "describe", "run")


def _version_string() -> str:
    from repro.version import version_string

    return version_string()


def _serve(args: argparse.Namespace) -> int:
    """The ``repro-oltp serve`` verb: run the HTTP job service."""
    from repro.runner import CampaignJournal, ResultCache
    from repro.runner.tracestore import default_trace_store
    from repro.service import JobService, run_server

    store = default_trace_store()
    previous_spill = store.spill_dir
    cache = None
    if args.cache_dir:
        os.makedirs(args.cache_dir, exist_ok=True)
        store.spill_dir = os.path.join(args.cache_dir, "traces")
        if not args.no_cache:
            cache = ResultCache(os.path.join(args.cache_dir, "results"))
    journal = CampaignJournal(args.journal) if args.journal else None
    service = JobService(
        workers=args.jobs or default_jobs(),
        cache=cache,
        journal=journal,
        trace_store=store,
        queue_limit=args.queue_limit,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        shared_memory=not args.no_shared_memory,
    )
    try:
        return run_server(service, args.host, args.port,
                          drain_timeout=args.drain_timeout)
    finally:
        store.spill_dir = previous_spill


def _loadgen(args: argparse.Namespace, settings: Settings,
             figures) -> int:
    """The ``repro-oltp loadgen`` verb: drive a running service."""
    from repro.service import figure_jobs, perturbed_jobs
    from repro.service.loadgen import generate, parse_mix
    from repro.service.loadgen import render as render_load

    mix = parse_mix(args.mix)
    warm = figure_jobs(figures, settings)
    warm_w, cold_w = mix
    cold_count = (
        -(-args.requests * cold_w // (warm_w + cold_w)) if cold_w else 0
    )
    cold = perturbed_jobs(cold_count, settings)
    report = generate(
        args.url, warm, cold,
        requests=args.requests,
        concurrency=args.concurrency,
        mix=mix,
        poll_timeout=args.poll_timeout,
        prime=not args.no_prime,
    )
    print(render_load(report))
    if args.report:
        parent = os.path.dirname(args.report)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"[loadgen report: {args.report}]")
    return 0 if report["ok"] else 1


def _stream(args: argparse.Namespace, settings: Settings) -> int:
    """The ``repro-oltp stream`` verb: scaled-up replay at flat memory.

    Streams a workload ``--scale-x`` times the configured transaction
    count straight from the generator into the fast engine, chunk by
    chunk, without ever materializing the whole trace — peak RSS stays
    flat no matter how large the multiplier.
    """
    import resource

    from repro.core.machine import MachineConfig
    from repro.core.system import simulate
    from repro.runner.tracestore import StreamingTraceStore, TraceSpec

    scale_x = max(1, args.scale_x)
    txns = settings.uni_txns * scale_x
    spec = TraceSpec(ncpus=1, scale=settings.scale, txns=txns,
                     seed=settings.seed)
    store = StreamingTraceStore(spill_dir=None,
                                chunk_txns=args.chunk_txns or None)
    machine = MachineConfig(label="stream-base", ncpus=1)
    start = time.perf_counter()
    trace = store.stream(spec)
    result = simulate(machine, trace, engine="fast", check=settings.check)
    wall = time.perf_counter() - start
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(f"streamed {txns} transactions ({scale_x}x the configured "
          f"count) through the fast engine")
    print(f"  quanta:        {trace.quanta_seen}")
    print(f"  refs:          {trace.refs_seen}")
    print(f"  measured refs: {trace.measured_refs_seen}")
    print(f"  cycles:        {result.breakdown.total}")
    print(f"  wall:          {wall:.1f}s")
    print(f"  peak rss:      {peak_kb / 1024:.0f} MiB")
    return 0


def _settings(args: argparse.Namespace) -> Settings:
    if args.quick:
        base = Settings.quick()
    else:
        base = Settings.paper()
    return Settings(
        scale=args.scale if args.scale else base.scale,
        uni_txns=args.uni_txns if args.uni_txns else base.uni_txns,
        mp_txns=args.mp_txns if args.mp_txns else base.mp_txns,
        seed=args.seed,
        check=getattr(args, "check", "off"),
    )


def run_figure(name: str, settings: Settings, chart: bool = False,
               csv_dir: Optional[str] = None) -> str:
    """Run one figure driver and return its text report.

    When ``csv_dir`` is given, each reproduced Figure is also written
    there as ``<name>.csv`` (Figures 3 and 11 have no tabular Figure
    form and are skipped).
    """

    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)

    def dump(figure, suffix=""):
        if csv_dir:
            write_figure_csv(figure, f"{csv_dir}/{name}{suffix}.csv")
        return figure

    if name == "fig3":
        return fig3_latencies.render()
    if name == "fig5":
        return render(dump(offchip.run_uniprocessor(settings)), chart=chart)
    if name == "fig6":
        return render(dump(offchip.run_multiprocessor(settings)), chart=chart)
    if name == "fig7":
        return render(dump(onchip.run_uniprocessor(settings)), chart=chart)
    if name == "fig8":
        return render(dump(onchip.run_multiprocessor(settings)), chart=chart)
    if name == "fig10":
        study = integration.run(settings)
        dump(study.uni, "_uni")
        dump(study.mp, "_mp")
        return "\n\n".join(
            render(f, misses=False, chart=chart) for f in (study.uni, study.mp)
        )
    if name == "fig11":
        return rac.run_miss_study(settings).render()
    if name == "fig12":
        return render(dump(rac.run_perf_study(settings)), misses=False, chart=chart)
    if name == "fig13":
        study = ooo_experiment.run(settings)
        dump(study.uni, "_uni")
        dump(study.mp, "_mp")
        return study.render()
    if name == "ablations":
        return ablations.run_all(settings)
    if name == "selftest":
        from repro.integrity import selftest

        return selftest.run(settings).render()
    # Anything else is a scenario name; run_scenario fails fast with a
    # ConfigError listing the registered names when it is not.
    from repro.experiments import scenarios

    return render(dump(scenarios.run_scenario(name, settings)), chart=chart)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-oltp",
        description=(
            "Reproduce figures from 'Impact of Chip-Level Integration on "
            "Performance of OLTP Workloads' (HPCA 2000)."
        ),
    )
    parser.add_argument("--version", action="version",
                        version=_version_string())
    parser.add_argument("figure", choices=FIGURES + EXTRAS + ("all",),
                        help="which figure (or extra study) to reproduce")
    parser.add_argument("target", nargs="?", default=None,
                        help="figure to profile (for the 'profile' verb), a "
                             "comma-separated figure/scenario subset (for "
                             "'campaign' and 'loadgen'), or a scenario "
                             "action: list, describe, run")
    parser.add_argument("name", nargs="?", default=None,
                        help="scenario name (for 'scenario describe' and "
                             "'scenario run')")
    parser.add_argument("--scale", type=int, default=0,
                        help="workload/cache scale-down factor (default 32)")
    parser.add_argument("--uni-txns", type=int, default=0,
                        help="measured transactions for uniprocessor runs")
    parser.add_argument("--mp-txns", type=int, default=0,
                        help="measured transactions for 8-CPU runs")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--quick", action="store_true",
                        help="small fast runs (CI smoke sizes)")
    parser.add_argument("--check", choices=("off", "end-of-run", "per-quantum"),
                        default="off",
                        help="run the integrity checker during every simulation")
    parser.add_argument("--chart", action="store_true",
                        help="also print ASCII stacked-bar charts")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each figure as CSV into DIR")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="campaign worker processes "
                             "(default: min(4, cpu count))")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help="campaign cache root for traces and results "
                             f"(default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="campaign: disable the on-disk result cache")
    parser.add_argument("--no-progress", action="store_true",
                        help="campaign: suppress per-job progress lines")
    parser.add_argument("--resume", metavar="JOURNAL", default=None,
                        help="campaign: checkpoint completed jobs into this "
                             "append-only journal and, when it already "
                             "exists, serve them from it instead of "
                             "re-simulating (safe across SIGINT/SIGKILL)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="campaign: per-job wall-clock deadline; a job "
                             "past it is killed and retried (default: none)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="campaign: re-executions allowed per failing "
                             "job before it is reported as failed "
                             "(default 2)")
    parser.add_argument("--chaos", metavar="SPEC", default=None,
                        help="campaign: inject worker faults, e.g. "
                             "'crash@0,hang@1~120,slow@*~0.1:3' "
                             "(kind@job[~seconds][:times]; testing only)")
    parser.add_argument("--failure-report", metavar="PATH", default=None,
                        help="campaign: write the machine-readable per-job "
                             "success/failure report JSON here")
    parser.add_argument("--no-shared-memory", action="store_true",
                        help="campaign/serve: workers load private trace "
                             "copies instead of attaching the parent's "
                             "shared-memory view")
    parser.add_argument("--scale-x", type=int, default=100, metavar="X",
                        help="stream: transaction-count multiplier over the "
                             "configured settings (default 100)")
    parser.add_argument("--chunk-txns", type=int, default=0, metavar="N",
                        help="stream: transactions generated per chunk "
                             "(default: the generator's batch size)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(load in Perfetto or chrome://tracing)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the run's metrics and per-quantum "
                             "series (.csv suffix selects CSV, else JSON)")
    parser.add_argument("--json", action="store_true",
                        help="selftest: print the machine-readable report "
                             "instead of text")
    service = parser.add_argument_group("service mode (serve / loadgen)")
    service.add_argument("--host", default="127.0.0.1",
                         help="serve: bind address (default 127.0.0.1)")
    service.add_argument("--port", type=int, default=8077,
                         help="serve: TCP port; 0 picks an ephemeral port "
                              "(default 8077)")
    service.add_argument("--queue-limit", type=int, default=1024, metavar="N",
                         help="serve: bounded submission queue size "
                              "(default 1024)")
    service.add_argument("--journal", metavar="PATH", default=None,
                         help="serve: journal accepted and completed jobs "
                              "here; restarting on the same journal "
                              "resumes unfinished work")
    service.add_argument("--drain-timeout", type=float, default=60.0,
                         metavar="SECONDS",
                         help="serve: max seconds to finish queued work on "
                              "SIGTERM/SIGINT (default 60)")
    service.add_argument("--url", default="http://127.0.0.1:8077",
                         help="loadgen: service base URL")
    service.add_argument("--concurrency", type=int, default=32, metavar="N",
                         help="loadgen: concurrent keep-alive workers "
                              "(default 32)")
    service.add_argument("--requests", type=int, default=200, metavar="N",
                         help="loadgen: measured submissions (default 200)")
    service.add_argument("--mix", default="80:20", metavar="WARM:COLD",
                         help="loadgen: warm:cold submission ratio "
                              "(default 80:20)")
    service.add_argument("--no-prime", action="store_true",
                         help="loadgen: skip the unmeasured warm-corpus "
                              "priming phase")
    service.add_argument("--poll-timeout", type=float, default=300.0,
                         metavar="SECONDS",
                         help="loadgen: per-job completion deadline "
                              "(default 300)")
    service.add_argument("--report", metavar="PATH", default=None,
                         help="loadgen: write the JSON report here")
    args = parser.parse_args(argv)

    campaign_figures = FIGURES
    loadgen_figures = ("fig5",)
    scenario_action = "list"
    if args.figure == "profile":
        if args.target not in FIGURES:
            parser.error(
                "profile needs a figure to profile, e.g. 'profile fig6' "
                f"(choose from {', '.join(FIGURES)})"
            )
    elif args.figure == "campaign" and args.target is not None:
        from repro.scenario import scenario_names

        campaign_figures = tuple(
            name for name in args.target.split(",") if name
        )
        known = FIGURES + scenario_names()
        unknown = [n for n in campaign_figures if n not in known]
        if unknown:
            parser.error(
                f"unknown campaign figure(s)/scenario(s) "
                f"{', '.join(unknown)} (choose from {', '.join(known)})"
            )
    elif args.figure == "scenario":
        scenario_action = args.target or "list"
        if scenario_action not in SCENARIO_ACTIONS:
            parser.error(
                f"unknown scenario action {scenario_action!r} "
                f"(choose from {', '.join(SCENARIO_ACTIONS)})"
            )
        if scenario_action in ("describe", "run") and not args.name:
            parser.error(
                f"scenario {scenario_action} needs a scenario name, e.g. "
                f"'scenario {scenario_action} zipf-uni' (see 'scenario list')"
            )
        if scenario_action == "list" and args.name:
            parser.error("scenario list takes no scenario name")
    elif args.figure == "loadgen" and args.target is not None:
        from repro.service.corpus import CORPUS_FIGURES

        loadgen_figures = tuple(
            name for name in args.target.split(",") if name
        )
        unknown = [n for n in loadgen_figures if n not in CORPUS_FIGURES]
        if unknown:
            parser.error(
                f"unknown loadgen corpus figure(s) {', '.join(unknown)} "
                f"(choose from {', '.join(CORPUS_FIGURES)})"
            )
    elif args.target is not None:
        parser.error(
            "a target only applies to the 'profile', 'campaign', "
            "'loadgen' and 'scenario' verbs"
        )
    if args.name is not None and args.figure != "scenario":
        parser.error("a scenario name only applies to the 'scenario' verb")

    settings = _settings(args)
    if args.figure in ("serve", "loadgen") and not (
            args.quick or args.scale or args.uni_txns or args.mp_txns):
        # Service corpora default to quick sizes: the loadgen's jobs
        # must stay cheap enough to submit by the thousand.
        base = Settings.quick()
        settings = Settings(scale=base.scale, uni_txns=base.uni_txns,
                            mp_txns=base.mp_txns, seed=args.seed,
                            check=args.check)
    completed: List[str] = []
    profiling = args.figure == "profile"
    serving = args.figure == "serve"
    # Observability is opt-in per invocation: the profile verb and the
    # --trace-out/--metrics-out flags install a real tracer/registry;
    # everything else runs against the zero-overhead null objects.
    # The service always keeps a live metrics registry (surfaced via
    # GET /stats) but no tracer — spans would grow without bound over
    # a server's lifetime.
    want_obs = bool(profiling or args.trace_out or args.metrics_out)
    tracer = Tracer() if want_obs else NULL_TRACER
    registry = (
        MetricsRegistry() if want_obs or serving else NULL_METRICS
    )

    def dispatch() -> int:
        if args.figure == "serve":
            return _serve(args)

        if args.figure == "loadgen":
            return _loadgen(args, settings, loadgen_figures)

        if args.figure == "stream":
            return _stream(args, settings)

        if args.figure == "scenario":
            from repro.experiments import scenarios

            if scenario_action == "list":
                print(scenarios.render_list())
                return 0
            if scenario_action == "describe":
                print(scenarios.render_describe(args.name))
                return 0
            start = time.time()
            print(run_figure(args.name, settings, chart=args.chart,
                             csv_dir=args.csv))
            print(f"[{args.name} took {time.time() - start:.1f}s]")
            completed.append(args.name)
            return 0

        if args.figure == "campaign":
            chaos = None
            if args.chaos:
                import tempfile

                from repro.integrity.faults import parse_worker_faults

                chaos = (parse_worker_faults(args.chaos),
                         tempfile.mkdtemp(prefix="repro-chaos-"))
            report = run_campaign(
                campaign_figures,
                settings,
                jobs=args.jobs or default_jobs(),
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                chart=args.chart,
                csv_dir=args.csv,
                progress=not args.no_progress,
                resume=args.resume,
                job_timeout=args.job_timeout,
                max_retries=args.max_retries,
                chaos=chaos,
                failure_report=args.failure_report,
                shared_memory=not args.no_shared_memory,
            )
            print(report.render())
            if not report.ok:
                failed = ", ".join(report.failures)
                print(f"repro-oltp: campaign completed with failures in: "
                      f"{failed} (see report above)", file=sys.stderr)
                return 1
            return 0

        if args.figure == "selftest":
            from repro.integrity import selftest

            # Selftest defaults to quick sizes unless explicitly overridden.
            sized = args.quick or args.scale or args.uni_txns or args.mp_txns
            report = selftest.run(settings if sized else None)
            if args.json:
                print(json.dumps(report.to_dict(), indent=2,
                                 sort_keys=True))
            else:
                print(report.render())
            return 0 if report.passed else 1

        if profiling:
            names = (args.target,)
        elif args.figure == "all":
            names = FIGURES
        else:
            names = (args.figure,)
        for name in names:
            start = time.time()
            print(run_figure(name, settings, chart=args.chart,
                             csv_dir=args.csv))
            print(f"[{name} took {time.time() - start:.1f}s]")
            print()
            completed.append(name)
        return 0

    try:
        wall_start = time.perf_counter()
        with use_tracer(tracer), use_metrics(registry):
            code = dispatch()
        wall = time.perf_counter() - wall_start
        if want_obs:
            trace_path = args.trace_out
            if profiling and not trace_path:
                trace_path = f"profile-{args.target}.trace.json"
            if profiling:
                print(render_self_time(tracer.spans, wall))
            if trace_path:
                write_chrome_trace(tracer.spans, trace_path)
                print(f"[chrome trace: {trace_path}]")
            if args.metrics_out:
                if args.metrics_out.endswith(".csv"):
                    write_metrics_csv(registry, args.metrics_out)
                else:
                    write_metrics_json(registry, args.metrics_out)
                print(f"[metrics: {args.metrics_out}]")
        return code
    except KeyboardInterrupt:
        done = ", ".join(completed) if completed else "none"
        print(f"\nrepro-oltp: interrupted; figures completed: {done}",
              file=sys.stderr)
        return 130
    except (ReproError, JobFailed) as exc:
        print(f"repro-oltp: error: {exc}", file=sys.stderr)
        return 1
    except BrokenProcessPool:
        # The supervised executor absorbs worker deaths; reaching here
        # means the pool died outside its care (e.g. during shutdown).
        print(
            "repro-oltp: error: a campaign worker process died "
            "unexpectedly and the pool could not be recovered; completed "
            "results are preserved in the cache/journal — rerun (or "
            "rerun with --resume) to finish the remaining jobs",
            file=sys.stderr,
        )
        return 1
    except Exception as exc:  # no tracebacks for end users
        print(f"repro-oltp: internal error ({type(exc).__name__}): {exc}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
