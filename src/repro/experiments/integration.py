"""Figure 10: successive integration of L2, MC, and CC/NR.

Two graphs: uniprocessor (Base, L2, L2+MC) and 8 processors (Base, L2,
L2+MC, All).  The L2 configuration is the Base 8 MB direct-mapped
off-chip cache for the Base bar and the 2 MB 8-way on-chip cache for
every integrated bar, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.machine import MachineConfig
from repro.experiments.common import Figure, Settings, run_configs, trace_spec
from repro.runner import SimJob, simulate_spec


def ladder_configs(ncpus: int, scale: int, cpu_model: str = "inorder"):
    """The labelled integration-ladder configurations (also used by selftest)."""
    configs = [
        ("Base", MachineConfig.base(ncpus, scale=scale, cpu_model=cpu_model)),
        ("L2", MachineConfig.integrated_l2(ncpus, scale=scale, cpu_model=cpu_model)),
        ("L2+MC", MachineConfig.integrated_l2_mc(ncpus, scale=scale, cpu_model=cpu_model)),
    ]
    if ncpus > 1:
        configs.append(
            ("All", MachineConfig.fully_integrated(ncpus, scale=scale, cpu_model=cpu_model))
        )
    return configs


@dataclass
class IntegrationStudy:
    """Figure 10 plus the Section-5 headline speedups."""

    uni: Figure
    mp: Figure
    conservative_speedup: float  # full integration vs Conservative Base (MP)

    @property
    def uni_full_speedup(self) -> float:
        return self.uni.speedup("L2+MC")

    @property
    def mp_full_speedup(self) -> float:
        return self.mp.speedup("All")

    @property
    def mp_l2_step(self) -> float:
        return self.mp.speedup("L2")

    @property
    def mp_system_step(self) -> float:
        """Gain of MC + CC/NR integration on top of the on-chip L2."""
        return self.mp.speedup("All", over="L2")


def run(settings: Optional[Settings] = None, cpu_model: str = "inorder") -> IntegrationStudy:
    """Reproduce Figure 10 (or its Figure-13 OOO variant)."""
    settings = settings or Settings.paper()
    scale = settings.scale

    uni = run_configs(
        "Figure 10 (uni)",
        f"integration ladder — uniprocessor ({cpu_model})",
        ladder_configs(1, scale, cpu_model),
        trace_spec(1, settings),
        check=settings.check,
    )
    uni.notes.append(
        f"full-integration speedup = {uni.speedup('L2+MC'):.2f}x (paper: ~1.4x, "
        "nearly all from the L2 step)"
    )

    mp_spec = trace_spec(8, settings)
    mp = run_configs(
        "Figure 10 (MP)",
        f"integration ladder — 8 processors ({cpu_model})",
        ladder_configs(8, scale, cpu_model),
        mp_spec,
        check=settings.check,
    )
    cons = simulate_spec(SimJob(
        spec=mp_spec,
        machine=MachineConfig.conservative_base(8, scale=scale,
                                                cpu_model=cpu_model),
        check=settings.check,
    ))
    full = mp.row("All").result
    cons_speedup = cons.exec_time / full.exec_time
    mp.notes.append(
        f"full-integration speedup = {mp.speedup('All'):.2f}x (paper: 1.43x); "
        f"L2 step {mp.speedup('L2'):.2f}x, system step "
        f"{mp.speedup('All', over='L2'):.2f}x (paper: ~1.2x each)"
    )
    mp.notes.append(
        f"vs Conservative Base = {cons_speedup:.2f}x (paper: 1.56x)"
    )
    return IntegrationStudy(uni=uni, mp=mp, conservative_speedup=cons_speedup)


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.report import render

    study = run()
    print(render(study.uni, misses=False))
    print()
    print(render(study.mp, misses=False))
