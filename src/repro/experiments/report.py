"""Plain-text rendering of reproduced figures.

The paper presents stacked-bar charts; in a terminal we render each
figure as a table of normalized execution-time components and a table
of normalized miss categories, matching the left/right graph pairs of
Figures 5–8 and the single graphs of Figures 10–13.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import Figure, Row


def _fmt(value: float) -> str:
    return f"{value:7.1f}"


def time_table(figure: Figure) -> str:
    """Normalized execution-time table (baseline = 100)."""
    lines = [
        f"{figure.figure_id}: {figure.title}",
        f"{'configuration':24s} {'total':>7s} {'CPU':>7s} {'L2Hit':>7s} "
        f"{'LocStall':>8s} {'RemStall':>8s}",
    ]
    for row in figure.rows:
        b = row.breakdown_norm
        lines.append(
            f"{row.label:24s} {_fmt(row.time_norm)} {_fmt(b['CPU'])} "
            f"{_fmt(b['L2Hit'])} {_fmt(b['LocStall']):>8s} {_fmt(b['RemStall']):>8s}"
        )
    return "\n".join(lines)


def miss_table(figure: Figure) -> str:
    """Normalized L2-miss table (baseline total = 100)."""
    base = figure.baseline.result.misses.total or 1
    lines = [
        f"{figure.figure_id}: normalized L2 misses",
        f"{'configuration':24s} {'total':>7s} {'I-Loc':>7s} {'I-Rem':>7s} "
        f"{'D-Loc':>7s} {'D-RemC':>7s} {'D-RemD':>7s}",
    ]
    for row in figure.rows:
        m = row.miss_breakdown_norm(base)
        lines.append(
            f"{row.label:24s} {_fmt(m['total'])} {_fmt(m['I-Loc'])} "
            f"{_fmt(m['I-Rem'])} {_fmt(m['D-Loc'])} {_fmt(m['D-RemClean'])} "
            f"{_fmt(m['D-RemDirty'])}"
        )
    return "\n".join(lines)


def bar_chart(figure: Figure, width: int = 50) -> str:
    """ASCII stacked bars of normalized execution time."""
    peak = max(row.time_norm for row in figure.rows) or 1.0
    scale = width / peak
    lines = [f"{figure.figure_id}: {figure.title} (normalized time)"]
    for row in figure.rows:
        b = row.breakdown_norm
        segments = (
            ("#", b["CPU"]),
            ("=", b["L2Hit"]),
            ("-", b["LocStall"]),
            (".", b["RemStall"]),
        )
        bar = "".join(ch * max(0, round(v * scale)) for ch, v in segments)
        lines.append(f"{row.label:24s} |{bar} {row.time_norm:.0f}")
    lines.append("   legend: # CPU   = L2 hit   - local stall   . remote stall")
    return "\n".join(lines)


def render(figure: Figure, *, misses: bool = True, chart: bool = False) -> str:
    """Full text report for one reproduced figure."""
    parts: List[str] = [time_table(figure)]
    if misses:
        parts.append(miss_table(figure))
    if chart:
        parts.append(bar_chart(figure))
    if figure.notes:
        parts.append(
            "\n".join(["notes:"] + [f"  - {note}" for note in figure.notes])
        )
    return "\n\n".join(parts)


def summary_line(row: Row) -> str:
    return f"{row.label}: time {row.time_norm:.1f}, misses {row.miss_norm:.1f}"
