"""The ``repro-oltp campaign`` verb: every figure, parallel and cached.

A campaign installs a :class:`~repro.runner.CampaignRunner` as the
active runner and replays the ordinary figure drivers through it, so
each driver's configurations fan out across ``--jobs`` worker
processes and land in (or are served from) the content-addressed
result cache.  The second campaign over an unchanged tree therefore
runs **zero** simulations.

Cache layout under ``--cache-dir`` (default ``.repro-oltp-cache``)::

    <cache-dir>/traces/   versioned .npz workload archives
    <cache-dir>/results/  <job-hash>.json serialized RunResults

Invalidation is automatic: job hashes include the machine config, the
workload spec, the integrity-check level, the trace archive format
version, and :data:`repro.runner.CODE_VERSION` — bumping the latter
(any semantics-changing simulator edit) orphans every stale entry.
Deleting the directory is always safe; corrupt entries are detected by
checksum and silently re-simulated.

Campaigns are **resilient by default**: workers run under the
:class:`~repro.runner.SupervisedExecutor` (crash respawn, per-job
timeouts via ``--job-timeout``, bounded retry via ``--max-retries``),
a figure whose jobs fail terminally is reported and *skipped* instead
of aborting the remaining figures, and ``--resume <journal>`` makes
the whole campaign checkpointed: completed jobs are fsynced into an
append-only journal and served from it after a SIGINT/SIGKILL, with
final output bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import Settings
from repro.integrity.errors import CampaignJobError, ReproError
from repro.runner import (
    CacheStats,
    CampaignJournal,
    CampaignRunner,
    CampaignTelemetry,
    JournalStats,
    ResultCache,
    use_runner,
)
from repro.runner.tracestore import default_trace_store

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-oltp-cache"


def default_jobs() -> int:
    """Default worker count: up to 4, bounded by the machine."""
    return max(1, min(4, os.cpu_count() or 1))


@dataclass
class CampaignReport:
    """Every figure's rendered text plus the run's telemetry.

    ``failures`` maps a figure name to the structured per-job failure
    dicts that killed it; a campaign with failures still *completes*
    (the remaining figures run) and reports them here instead of
    raising.
    """

    figures: List[Tuple[str, str]] = field(default_factory=list)
    telemetry: Optional[CampaignTelemetry] = None
    cache_stats: Optional[CacheStats] = None
    journal_stats: Optional[JournalStats] = None
    failures: Dict[str, List[dict]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every figure completed with every job succeeding."""
        return not self.failures

    def render(self, color: bool = False) -> str:
        parts = [text for _, text in self.figures]
        if self.failures:
            lines = ["campaign failures"]
            for name, jobs in self.failures.items():
                for f in jobs:
                    lines.append(
                        f"  {name}: {f['label']} [{f['kind']} after "
                        f"{f['attempts']} attempts] {f['message']}"
                    )
            parts.append("\n".join(lines))
        if self.telemetry is not None:
            parts.append(self.telemetry.render(color=color))
        return "\n\n".join(parts)

    def failure_report(self) -> dict:
        """The machine-readable outcome payload (CI artifact)."""
        payload = {
            "ok": self.ok,
            "failures": self.failures,
            "figures_run": [name for name, _ in self.figures],
        }
        if self.telemetry is not None:
            payload["summary"] = self.telemetry.summary_line()
            payload["jobs"] = self.telemetry.total_jobs
            payload["simulated"] = self.telemetry.simulated
            payload["journal_hits"] = self.telemetry.journal_hits
            payload["resilience"] = self.telemetry.resilience.to_dict()
        if self.journal_stats is not None:
            payload["journal"] = self.journal_stats.to_dict()
        return payload


def run_campaign(
    figures: Sequence[str],
    settings: Settings,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    chart: bool = False,
    csv_dir: Optional[str] = None,
    progress: bool = True,
    stream: Optional[IO[str]] = None,
    resume: Optional[str] = None,
    job_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    chaos=None,
    failure_report: Optional[str] = None,
    shared_memory: bool = True,
) -> CampaignReport:
    """Run ``figures`` through a cache-backed, supervised runner.

    ``cache_dir=None`` disables both the result cache and the trace
    spill (everything stays in memory, nothing persists).  The
    process-wide trace store is pointed at the campaign's trace
    directory for the duration and restored afterwards.

    ``resume`` names the checkpoint journal: completed jobs recorded
    there are served without re-simulation, and every fresh completion
    is fsynced into it before the campaign moves on.  ``job_timeout`` /
    ``max_retries`` tune the supervisor; ``chaos`` arms the worker
    fault harness (tests, CI smoke).  ``failure_report`` writes the
    machine-readable outcome JSON there at the end of the run.
    ``shared_memory=False`` makes every worker load its own trace copy
    instead of attaching the parent's shared-memory view.

    A figure whose jobs fail terminally (after retries) is recorded in
    ``report.failures`` and the campaign *continues* with the next
    figure — the per-job report replaces the historical exception.
    """
    # Late import: cli imports this module at load time.
    from repro.experiments.cli import run_figure

    stream = stream if stream is not None else sys.stderr
    store = default_trace_store()
    previous_spill = store.spill_dir
    cache = None
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        store.spill_dir = os.path.join(cache_dir, "traces")
        if use_cache:
            cache = ResultCache(os.path.join(cache_dir, "results"))
    journal = CampaignJournal(resume) if resume else None
    runner = CampaignRunner(jobs=jobs, cache=cache, trace_store=store,
                            progress=progress, stream=stream,
                            journal=journal, job_timeout=job_timeout,
                            max_retries=max_retries, chaos=chaos,
                            shared_memory=shared_memory)
    report = CampaignReport(
        telemetry=runner.telemetry,
        cache_stats=cache.stats if cache else None,
        journal_stats=journal.stats if journal else None,
    )
    try:
        with use_runner(runner):
            for name in figures:
                runner.begin_batch(name)
                started = time.perf_counter()
                try:
                    text = run_figure(name, settings, chart=chart,
                                      csv_dir=csv_dir)
                except CampaignJobError as exc:
                    report.failures[name] = [
                        f.to_dict() for f in exc.failures
                    ]
                    text = f"[{name} FAILED: {exc}]"
                    print(f"campaign: {name} failed: {exc}", file=stream)
                except ReproError as exc:
                    # A driver-level error (bad config, invariant hit on
                    # the serial path): report it, keep the campaign.
                    report.failures[name] = [{
                        "label": name, "job_hash": "",
                        "kind": "error", "message": str(exc), "attempts": 1,
                    }]
                    text = f"[{name} FAILED: {exc}]"
                    print(f"campaign: {name} failed: {exc}", file=stream)
                runner.telemetry.end_batch(
                    name, time.perf_counter() - started
                )
                report.figures.append((name, text))
    finally:
        runner.close()
        if journal is not None:
            journal.close()
        store.spill_dir = previous_spill
    if failure_report:
        parent = os.path.dirname(failure_report)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(failure_report, "w", encoding="utf-8") as fh:
            json.dump(report.failure_report(), fh, indent=2, sort_keys=True)
    return report
