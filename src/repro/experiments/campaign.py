"""The ``repro-oltp campaign`` verb: every figure, parallel and cached.

A campaign installs a :class:`~repro.runner.CampaignRunner` as the
active runner and replays the ordinary figure drivers through it, so
each driver's configurations fan out across ``--jobs`` worker
processes and land in (or are served from) the content-addressed
result cache.  The second campaign over an unchanged tree therefore
runs **zero** simulations.

Cache layout under ``--cache-dir`` (default ``.repro-oltp-cache``)::

    <cache-dir>/traces/   versioned .npz workload archives
    <cache-dir>/results/  <job-hash>.json serialized RunResults

Invalidation is automatic: job hashes include the machine config, the
workload spec, the integrity-check level, the trace archive format
version, and :data:`repro.runner.CODE_VERSION` — bumping the latter
(any semantics-changing simulator edit) orphans every stale entry.
Deleting the directory is always safe; corrupt entries are detected by
checksum and silently re-simulated.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import IO, List, Optional, Sequence, Tuple

from repro.experiments.common import Settings
from repro.runner import (
    CacheStats,
    CampaignRunner,
    CampaignTelemetry,
    ResultCache,
    use_runner,
)
from repro.runner.tracestore import default_trace_store

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-oltp-cache"


def default_jobs() -> int:
    """Default worker count: up to 4, bounded by the machine."""
    return max(1, min(4, os.cpu_count() or 1))


@dataclass
class CampaignReport:
    """Every figure's rendered text plus the run's telemetry."""

    figures: List[Tuple[str, str]] = field(default_factory=list)
    telemetry: Optional[CampaignTelemetry] = None
    cache_stats: Optional[CacheStats] = None

    def render(self) -> str:
        parts = [text for _, text in self.figures]
        if self.telemetry is not None:
            parts.append(self.telemetry.render())
        return "\n\n".join(parts)


def run_campaign(
    figures: Sequence[str],
    settings: Settings,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    chart: bool = False,
    csv_dir: Optional[str] = None,
    progress: bool = True,
    stream: Optional[IO[str]] = None,
) -> CampaignReport:
    """Run ``figures`` through a cache-backed (optionally parallel) runner.

    ``cache_dir=None`` disables both the result cache and the trace
    spill (everything stays in memory, nothing persists).  The
    process-wide trace store is pointed at the campaign's trace
    directory for the duration and restored afterwards.
    """
    # Late import: cli imports this module at load time.
    from repro.experiments.cli import run_figure

    stream = stream if stream is not None else sys.stderr
    store = default_trace_store()
    previous_spill = store.spill_dir
    cache = None
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        store.spill_dir = os.path.join(cache_dir, "traces")
        if use_cache:
            cache = ResultCache(os.path.join(cache_dir, "results"))
    runner = CampaignRunner(jobs=jobs, cache=cache, trace_store=store,
                            progress=progress, stream=stream)
    report = CampaignReport(telemetry=runner.telemetry,
                            cache_stats=cache.stats if cache else None)
    try:
        with use_runner(runner):
            for name in figures:
                runner.begin_batch(name)
                started = time.perf_counter()
                text = run_figure(name, settings, chart=chart, csv_dir=csv_dir)
                runner.telemetry.end_batch(
                    name, time.perf_counter() - started
                )
                report.figures.append((name, text))
    finally:
        runner.close()
        store.spill_dir = previous_spill
    return report
