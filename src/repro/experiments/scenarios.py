"""The ``repro-oltp scenario`` verb: run any registered scenario.

``scenario list`` and ``scenario describe <name>`` are pure registry
queries.  ``scenario run <name>`` simulates the scenario's integration
ladder against its workload trace through :func:`run_configs` — the
same path every figure driver takes — so a scenario run fans out,
caches and resumes under ``repro-oltp campaign <name>`` exactly like a
figure does.
"""

from __future__ import annotations

from repro.experiments.common import Figure, Settings, run_configs
from repro.scenario import all_scenarios, describe_scenario, get_scenario


def run_scenario(name: str, settings: Settings) -> Figure:
    """Simulate ``name``'s ladder; baseline is the Base off-chip rung."""
    scenario = get_scenario(name)
    txns = (settings.uni_txns if scenario.ncpus == 1
            else settings.mp_txns)
    figure = run_configs(
        f"scenario:{name}",
        f"Scenario {name}: {scenario.description}",
        scenario.machines(settings.scale),
        scenario.trace_spec(scale=settings.scale, txns=txns,
                            seed=settings.seed),
        check=settings.check,
    )
    figure.notes.append(f"workload: {scenario.workload.summary()}")
    figure.notes.append(f"topology: {scenario.topology.summary()}")
    return figure


def render_list() -> str:
    """The ``scenario list`` table."""
    scenarios = all_scenarios()
    width = max(len(s.name) for s in scenarios)
    lines = [f"registered scenarios ({len(scenarios)})"]
    for s in scenarios:
        lines.append(f"  {s.name:<{width}}  {s.summary()}")
        lines.append(f"  {'':<{width}}  {s.description}")
    return "\n".join(lines)


def render_describe(name: str) -> str:
    """The ``scenario describe <name>`` report."""
    return describe_scenario(name)
