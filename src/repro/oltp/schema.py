"""TPC-B schema and scaling rules (Section 2.1 of the paper).

TPC-B models a banking database: every transaction updates one
account, the teller it was submitted from, and the branch both belong
to, then appends a history record.  The paper runs 40 branches; per
the TPC-B specification each branch has 10 tellers and 100,000
accounts.

Our proportional scaling (DESIGN.md Section 6) shrinks the *account
population* — the huge, randomly accessed footprint — by the machine
scale factor, while keeping the branch and teller populations at
paper values: those are the small, hot, write-shared structures whose
communication behaviour must not be diluted.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper configuration: "a TPC-B database with 40 branches".
BRANCHES = 40

#: TPC-B specification ratios.
TELLERS_PER_BRANCH = 10
ACCOUNTS_PER_BRANCH = 100_000

#: Oracle 7-era database block size (bytes).
BLOCK_SIZE = 2048

#: Approximate on-disk row sizes (bytes), per the TPC-B specification's
#: 100-byte minimum row requirement.
ACCOUNT_ROW_BYTES = 100
TELLER_ROW_BYTES = 100
BRANCH_ROW_BYTES = 100
HISTORY_ROW_BYTES = 50


@dataclass(frozen=True)
class TpcbScale:
    """Concrete table cardinalities and row sizes for one scaled instance.

    Proportional scaling has two levers, applied to different tables:

    * the *account* population shrinks by the scale factor (it is the
      huge randomly-accessed footprint);
    * the *teller/branch/history* populations keep their paper
      cardinalities — they define the sharing structure — so their
      per-row bytes shrink instead, keeping the tables' total hot
      footprint proportional.
    """

    branches: int
    tellers_per_branch: int
    accounts_per_branch: int
    account_row_bytes: int = ACCOUNT_ROW_BYTES
    teller_row_bytes: int = TELLER_ROW_BYTES
    branch_row_bytes: int = BRANCH_ROW_BYTES
    history_row_bytes: int = HISTORY_ROW_BYTES

    @classmethod
    def paper(cls, scale: int = 1) -> "TpcbScale":
        """The paper's 40-branch database, shrunk by ``scale``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        accounts = max(64, ACCOUNTS_PER_BRANCH // scale)
        return cls(
            BRANCHES,
            TELLERS_PER_BRANCH,
            accounts,
            account_row_bytes=max(16, ACCOUNT_ROW_BYTES // scale),
            teller_row_bytes=max(8, TELLER_ROW_BYTES // scale),
            branch_row_bytes=max(8, BRANCH_ROW_BYTES // scale),
            history_row_bytes=max(8, HISTORY_ROW_BYTES // scale),
        )

    @property
    def tellers(self) -> int:
        return self.branches * self.tellers_per_branch

    @property
    def accounts(self) -> int:
        return self.branches * self.accounts_per_branch

    # -- block layout -------------------------------------------------------

    @property
    def account_rows_per_block(self) -> int:
        return BLOCK_SIZE // self.account_row_bytes

    @property
    def teller_rows_per_block(self) -> int:
        return BLOCK_SIZE // self.teller_row_bytes

    @property
    def branch_rows_per_block(self) -> int:
        return BLOCK_SIZE // self.branch_row_bytes

    @property
    def history_rows_per_block(self) -> int:
        return BLOCK_SIZE // self.history_row_bytes

    @property
    def account_blocks(self) -> int:
        rows = self.account_rows_per_block
        return (self.accounts + rows - 1) // rows

    @property
    def teller_blocks(self) -> int:
        rows = self.teller_rows_per_block
        return (self.tellers + rows - 1) // rows

    @property
    def branch_blocks(self) -> int:
        rows = self.branch_rows_per_block
        return (self.branches + rows - 1) // rows

    def account_location(self, account_id: int) -> tuple:
        """(block index within the accounts segment, byte offset)."""
        rows = self.account_rows_per_block
        return account_id // rows, (account_id % rows) * self.account_row_bytes

    def teller_location(self, teller_id: int) -> tuple:
        rows = self.teller_rows_per_block
        return teller_id // rows, (teller_id % rows) * self.teller_row_bytes

    def branch_location(self, branch_id: int) -> tuple:
        rows = self.branch_rows_per_block
        return branch_id // rows, (branch_id % rows) * self.branch_row_bytes

    def branch_of_teller(self, teller_id: int) -> int:
        return teller_id // self.tellers_per_branch

    def branch_of_account(self, account_id: int) -> int:
        return account_id // self.accounts_per_branch
