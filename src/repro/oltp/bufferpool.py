"""The SGA block buffer: an LRU cache of database blocks in memory.

This mirrors the structure the paper describes in Section 2.1: the
block buffer area caches database disk blocks, and the metadata area
holds the directory for it (hash buckets and buffer headers).  Every
lookup walks a hash chain (traced as dependent loads into the metadata
area), and every block touch lands in the frame's lines inside the
block-buffer region.

The pool is a *real* cache — blocks are faulted in, evicted LRU, and
marked dirty — so the database-writer daemon has genuine work to do.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.oltp.locks import LATCHES, chain_latch_slot
from repro.oltp.schema import BLOCK_SIZE
from repro.oltp.tracing import EngineTracer, NullTracer


@dataclass
class BufferPoolStats:
    """Hit/miss accounting for the block buffer (not CPU caches)."""

    gets: int = 0
    hits: int = 0
    disk_reads: int = 0
    disk_writes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0


class BufferPool:
    """Hash-indexed LRU pool of ``num_frames`` block frames.

    Block identifiers are global integers assigned by the database's
    segment layout.  The pool reports every memory-visible step to the
    tracer: the hash-bucket probe, the header-chain walk, the header
    update, and (on a miss) the frame fill.
    """

    #: Buffer-header chain length target; buckets = frames / this.
    CHAIN_TARGET = 8

    def __init__(
        self,
        num_frames: int,
        tracer: Optional[EngineTracer] = None,
    ):
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        self.num_buckets = max(16, num_frames // self.CHAIN_TARGET)
        self.tracer = tracer if tracer is not None else NullTracer()
        # block_id -> frame_id, in LRU order (oldest first).
        self._frame_of: "OrderedDict[int, int]" = OrderedDict()
        self._block_in: Dict[int, int] = {}  # frame_id -> block_id
        self._free = list(range(num_frames - 1, -1, -1))
        self._dirty: set = set()  # frame ids
        self.stats = BufferPoolStats()

    # -- queries -------------------------------------------------------------

    def frame_holding(self, block_id: int) -> Optional[int]:
        """Frame caching ``block_id`` or None (no tracing; tests only)."""
        return self._frame_of.get(block_id)

    def is_dirty(self, frame_id: int) -> bool:
        return frame_id in self._dirty

    @property
    def dirty_frames(self) -> tuple:
        return tuple(self._dirty)

    @property
    def resident_blocks(self) -> int:
        return len(self._frame_of)

    def _bucket_of(self, block_id: int) -> int:
        # Multiplicative hash; matches how Oracle spreads DBA values.
        return (block_id * 2654435761) % self.num_buckets

    # -- the hot path ----------------------------------------------------------

    def get(self, block_id: int, for_write: bool) -> int:
        """Pin ``block_id`` into a frame and return the frame id.

        Traces the chain-latch acquisition, the hash lookup and header
        traffic; on a miss, traces the victim writeback decision and
        the frame fill.
        """
        tracer = self.tracer
        self.stats.gets += 1
        # Chain latch (write-shared hot line), hash-bucket probe, then
        # a dependent header-chain load.
        bucket = self._bucket_of(block_id)
        tracer.on_meta("latch", chain_latch_slot(bucket), True)
        tracer.on_meta("buf_hash", bucket, False, dependent=True)

        frame = self._frame_of.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            self._frame_of.move_to_end(block_id)
            tracer.on_meta("buf_header", frame, False, dependent=True)
            # Header state always changes on a pin: touch count and pin
            # list — this is the classic buffer-header write churn that
            # makes OLTP metadata so communication-heavy.
            tracer.on_meta("buf_header", frame, True)
            if for_write:
                self._dirty.add(frame)
            return frame

        # Miss: find a frame (free list, else LRU victim) under the
        # LRU latch.
        tracer.on_meta("latch", LATCHES.index("cache_buffers_lru"), True)
        tracer.on_code("buf_replace")
        if self._free:
            frame = self._free.pop()
        else:
            victim_block, frame = self._frame_of.popitem(last=False)
            del self._block_in[frame]
            tracer.on_meta("buf_header", frame, True)
            if frame in self._dirty:
                # Foreground writeback (DBWR fell behind).
                self._dirty.discard(frame)
                self.stats.disk_writes += 1
                tracer.on_syscall("disk_write", payload_bytes=BLOCK_SIZE)
        # Read the block "from disk" into the frame.  The data movement
        # itself is DMA and does not pass through the CPU caches; the
        # CPU's share is the I/O syscall and the header update.
        self.stats.disk_reads += 1
        tracer.on_syscall("disk_read", payload_bytes=BLOCK_SIZE)
        tracer.on_meta("buf_header", frame, True)
        self._frame_of[block_id] = frame
        self._block_in[frame] = block_id
        if for_write:
            self._dirty.add(frame)
        return frame

    # -- daemon support ---------------------------------------------------------

    def flush_frames(self, max_frames: int) -> int:
        """DBWR entry: write out up to ``max_frames`` dirty frames.

        The block data goes to disk by DMA; DBWR's CPU work — and its
        3-hop traffic against the server CPUs — is the header scan and
        update for each dirty buffer, plus the I/O syscalls.  Returns
        the number of frames flushed.
        """
        tracer = self.tracer
        flushed = 0
        # Flush in ascending frame order for determinism.
        for frame in sorted(self._dirty):
            if flushed >= max_frames:
                break
            tracer.on_meta("buf_header", frame, True)
            tracer.on_syscall("disk_write", payload_bytes=BLOCK_SIZE)
            self._dirty.discard(frame)
            self.stats.disk_writes += 1
            flushed += 1
        return flushed
