"""Miniature Oracle-style OLTP engine running TPC-B (the workload substrate)."""

from repro.oltp.bufferpool import BufferPool, BufferPoolStats
from repro.oltp.config import WorkloadConfig
from repro.oltp.database import TpcbDatabase
from repro.oltp.engine import EngineStats, OracleEngine
from repro.oltp.index import BPlusTree
from repro.oltp.locks import LATCHES, LockConflictError, LockManager
from repro.oltp.log import RedoLog
from repro.oltp.schema import BLOCK_SIZE, TpcbScale
from repro.oltp.tracing import EngineTracer, NullTracer, ProcessContext
from repro.oltp.txn import TpcbTransaction, generate_transaction

__all__ = [
    "BufferPool",
    "BufferPoolStats",
    "WorkloadConfig",
    "TpcbDatabase",
    "EngineStats",
    "BPlusTree",
    "OracleEngine",
    "LATCHES",
    "LockConflictError",
    "LockManager",
    "RedoLog",
    "BLOCK_SIZE",
    "TpcbScale",
    "EngineTracer",
    "NullTracer",
    "ProcessContext",
    "TpcbTransaction",
    "generate_transaction",
]
