"""Lock manager and latches (the SGA metadata area's hot structures).

Oracle coordinates row access through enqueue locks and protects
in-memory structures with latches.  Both live in the metadata area and
are the finest-grained *write-shared* objects in the system — the
latches especially are the classic OLTP communication hot spots that
produce the dirty 3-hop misses the paper's multiprocessor results are
dominated by.

The lock table is real (acquire/release with conflict detection) so
the engine's concurrency bookkeeping can be tested; latches are
modelled as named slots whose acquisition is a traced read-modify-write.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.oltp.tracing import EngineTracer, NullTracer

#: The parent latch set, in SGA declaration order.  Index = latch id.
LATCHES = (
    "cache_buffers_chains",
    "cache_buffers_lru",
    "redo_allocation",
    "redo_copy",
    "enqueues",
    "transaction_alloc",
    "session_idle",
    "messages",
)

#: Child cache-buffers-chains latches: one per group of hash buckets.
#: They occupy latch-array slots [len(LATCHES), len(LATCHES)+N).
NUM_CHAIN_LATCHES = 16

#: Total latch-array slots (parents + chain children).
NUM_LATCH_SLOTS = len(LATCHES) + NUM_CHAIN_LATCHES


def chain_latch_slot(bucket: int) -> int:
    """Latch-array slot of the chain latch covering ``bucket``."""
    return len(LATCHES) + bucket % NUM_CHAIN_LATCHES


class LockConflictError(RuntimeError):
    """Raised when a lock request conflicts with an existing holder."""


@dataclass
class LockStats:
    acquires: int = 0
    releases: int = 0
    latch_gets: int = 0
    conflicts: int = 0


@dataclass
class LockManager:
    """Hash-table enqueue lock manager plus the fixed latch set."""

    num_lock_slots: int = 1024
    tracer: EngineTracer = field(default_factory=NullTracer)
    stats: LockStats = field(default_factory=LockStats)
    _held: Dict[Tuple[str, int], Tuple[int, str]] = field(default_factory=dict)

    def _slot_of(self, resource: Tuple[str, int]) -> int:
        # crc32 rather than hash(): str hashing is PYTHONHASHSEED-
        # randomized, which would make traced lock addresses (and hence
        # whole workload traces) differ between processes.
        kind, resource_id = resource
        h = zlib.crc32(kind.encode()) ^ (resource_id * 0x9E3779B1)
        return (h * 2654435761) % self.num_lock_slots

    def latch(self, name: str) -> None:
        """Acquire-and-release a named latch (traced read-modify-write)."""
        idx = LATCHES.index(name)
        self.stats.latch_gets += 1
        self.tracer.on_code("latch_get")
        self.tracer.on_meta("latch", idx, True)

    def acquire(self, kind: str, resource_id: int, owner: int, mode: str = "X") -> None:
        """Take an enqueue lock on (kind, resource_id) for ``owner``.

        The engine serializes transactions, so a conflict indicates an
        engine bug (a transaction leaked a lock); we raise rather than
        queue.
        """
        key = (kind, resource_id)
        self.latch("enqueues")
        self.tracer.on_meta("lock", self._slot_of(key), True, dependent=True)
        holder = self._held.get(key)
        if holder is not None and holder[0] != owner:
            self.stats.conflicts += 1
            raise LockConflictError(
                f"lock {key} held by txn {holder[0]}, requested by {owner}"
            )
        self._held[key] = (owner, mode)
        self.stats.acquires += 1

    def release_all(self, owner: int) -> int:
        """Drop every lock held by ``owner`` (commit/abort); returns count."""
        mine = [k for k, (who, _) in self._held.items() if who == owner]
        if mine:
            self.latch("enqueues")
        for key in mine:
            self.tracer.on_meta("lock", self._slot_of(key), True)
            del self._held[key]
            self.stats.releases += 1
        return len(mine)

    def holder_of(self, kind: str, resource_id: int) -> Optional[int]:
        entry = self._held.get((kind, resource_id))
        return entry[0] if entry else None

    @property
    def locks_held(self) -> int:
        return len(self._held)
