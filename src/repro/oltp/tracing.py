"""Instrumentation interface between the OLTP engine and the tracer.

The database engine is written against this narrow interface: every
logically significant action (executing a code path, touching a buffer
frame, taking a latch, appending redo, making a syscall) is reported
through one of these hooks.  The trace layer implements them by
expanding each hook into cache-line references on the current CPU;
engine unit tests use the :class:`NullTracer`, which ignores
everything, so the engine can be exercised as a plain in-memory
transaction processor.
"""

from __future__ import annotations

from typing import Optional


class EngineTracer:
    """No-op base tracer; subclass and override what you need.

    Hook vocabulary
    ---------------
    ``on_switch``
        The engine scheduled a different process (server, daemon or
        client) onto a CPU; subsequent hooks belong to that process.
    ``on_code``
        The process executed a named engine/kernel routine once.
    ``on_frame``
        Data access inside a buffer-pool frame (``offset``/``nbytes``
        within the 2 KB block image).
    ``on_meta``
        Access to an SGA metadata structure: ``struct`` names the array
        ("buf_hash", "buf_header", "lock", "latch", ...), ``index`` the
        element.
    ``on_pga``
        Access to the current process's private memory.
    ``on_log``
        Access to the shared redo-log buffer at a byte ``offset``.
    ``on_syscall``
        Kernel entry: named kernel path plus optional payload touch.

    ``dependent=True`` marks loads at the head of an address-dependent
    chain (hash-bucket walks, index traversals) — the out-of-order CPU
    model cannot overlap those with the previous miss.
    """

    def on_switch(self, process: "ProcessContext") -> None:
        """A new process was dispatched; later hooks run on its CPU."""

    def on_code(self, routine: str, units: int = 1) -> None:
        """The current process executed ``routine`` ``units`` times."""

    def on_frame(
        self,
        frame_id: int,
        offset: int,
        nbytes: int,
        write: bool,
        dependent: bool = False,
    ) -> None:
        """Touch bytes inside buffer-pool frame ``frame_id``."""

    def on_meta(
        self,
        struct: str,
        index: int,
        write: bool,
        dependent: bool = False,
    ) -> None:
        """Touch SGA metadata structure ``struct[index]``."""

    def on_pga(self, offset: int, nbytes: int, write: bool) -> None:
        """Touch the current process's private (PGA/stack) memory."""

    def on_log(self, offset: int, nbytes: int, write: bool) -> None:
        """Touch the redo-log buffer at ``offset``."""

    def on_syscall(self, name: str, payload_bytes: int = 0, obj: int = 0) -> None:
        """Enter the kernel via ``name`` (pipe I/O, disk I/O, yield...).

        ``obj`` identifies the kernel object involved (pipe index,
        device queue, ...), letting the tracer place the kernel data
        structures the call touches.
        """

    def on_txn_boundary(self, committed: int) -> None:
        """A transaction committed (used for warmup bookkeeping)."""


class NullTracer(EngineTracer):
    """Tracer that records nothing; the engine's default."""


class ProcessContext:
    """Identity of a schedulable process in the simulated system.

    ``kind`` is "server", "client", "lgwr" or "dbwr".  ``cpu`` is the
    processor the process is bound to for the current dispatch; daemon
    processes are re-bound round-robin by the engine's scheduler.
    ``pga_id`` selects the process's private memory region.
    """

    __slots__ = ("kind", "index", "cpu", "pga_id")

    def __init__(self, kind: str, index: int, cpu: int, pga_id: Optional[int] = None):
        self.kind = kind
        self.index = index
        self.cpu = cpu
        self.pga_id = pga_id if pga_id is not None else index

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"ProcessContext({self.kind}#{self.index} on cpu{self.cpu})"
