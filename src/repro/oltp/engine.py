"""The OLTP engine: dedicated servers, daemons, and the TPC-B loop.

This is the reproduction's stand-in for Oracle 7.3.2 in dedicated
mode (paper Section 2.1): each client has a dedicated server process;
servers execute transactions against the shared SGA (block buffer +
metadata) under latches and enqueue locks, generate redo into the
shared log buffer, and commit through the log-writer daemon.  The
database-writer daemon trickles dirty blocks out behind them.

Every step reports itself to the tracer, so running the engine *is*
generating the memory-reference behaviour the simulator consumes —
there is no separate hand-written access-pattern table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.oltp.bufferpool import BufferPool
from repro.oltp.config import WorkloadConfig
from repro.oltp.database import TpcbDatabase
from repro.oltp.locks import LockManager
from repro.oltp.log import RedoLog
from repro.oltp.tracing import EngineTracer, NullTracer, ProcessContext
from repro.oltp.txn import TpcbTransaction, generate_workload_transaction

#: Redo record sizes in bytes (update vector + row piece).
REDO_UPDATE_BYTES = 120
REDO_INSERT_BYTES = 80
REDO_COMMIT_BYTES = 32

#: Client request/response sizes over the pipe.
PIPE_MSG_BYTES = 128


@dataclass
class EngineStats:
    """Run-level accounting for the engine itself.

    The per-kind counters default to 0 so archives written before the
    scenario subsystem (no such keys in their metadata) still load.
    """

    committed: int = 0
    lgwr_activations: int = 0
    dbwr_activations: int = 0
    remote_account_txns: int = 0
    balance_txns: int = 0
    scan_txns: int = 0


class OracleEngine:
    """A dedicated-server TPC-B engine wired to a tracer."""

    def __init__(self, config: WorkloadConfig, tracer: Optional[EngineTracer] = None):
        self.config = config
        self.tracer = tracer if tracer is not None else NullTracer()
        self.db = TpcbDatabase(config.tpcb)
        self.pool = BufferPool(config.buffer_frames, self.tracer)
        self.locks = LockManager(config.lock_slots, self.tracer)
        self.log = RedoLog(config.log_buffer_bytes, self.tracer)
        self.rng = random.Random(config.seed)
        self.stats = EngineStats()

        self.servers = [
            ProcessContext("server", i, cpu=i % config.ncpus)
            for i in range(config.num_servers)
        ]
        # Daemons get PGA ids after all the servers'.
        self.lgwr = ProcessContext("lgwr", 0, cpu=0, pga_id=config.num_servers)
        self.dbwr = ProcessContext("dbwr", 0, cpu=0, pga_id=config.num_servers + 1)
        self._daemon_dispatches = 0
        self._since_lgwr = 0
        self._since_dbwr = 0
        # Bursty-arrival scheduling state (workload.burst > 1): the
        # same server keeps the floor for a whole burst.
        self._burst_server: Optional[ProcessContext] = None
        self._burst_left = 0
        # Per-server rotating cursor into the hot PGA area, so reuse is
        # spread over the whole hot set instead of one line.
        self._pga_cursor = [0] * config.num_servers

    # -- top-level driving ----------------------------------------------------

    def prewarm(self) -> int:
        """Fault the database into the block buffer without tracing.

        The paper positions the workload in steady state with SimOS's
        fast (binary-translation) mode before switching to the timing
        models; this is our equivalent.  Account blocks are loaded
        first and the hot tables last, so the pool's LRU order starts
        sensible.  Returns the number of blocks resident afterwards.
        """
        saved = self.pool.tracer
        self.pool.tracer = NullTracer()
        try:
            layout = self.db.layout
            for blk in range(layout.account_base, layout.teller_base):
                self.pool.get(blk, for_write=False)
            for blk in range(layout.teller_base, layout.history_base):
                self.pool.get(blk, for_write=False)
            for i in range(layout.history_blocks):
                self.pool.get(layout.history_base + i, for_write=False)
            # Index segments (leaves are as hot as the rows they map).
            for blk in range(layout.account_index_base, layout.total_blocks):
                self.pool.get(blk, for_write=False)
        finally:
            self.pool.tracer = saved
        # Prewarm faults should not pollute the measured hit rate.
        self.pool.stats = type(self.pool.stats)()
        return self.pool.resident_blocks

    def run(self, n_txns: int) -> int:
        """Execute ``n_txns`` transactions; returns the commit count."""
        workload = self.config.workload
        for _ in range(n_txns):
            server = self._next_server()
            txn = generate_workload_transaction(
                self.rng, self.config.tpcb, self.stats.committed, workload)
            if txn.kind == "balance":
                self._execute_balance(server, txn)
            elif txn.kind == "scan":
                self._execute_scan(server, txn)
            else:
                self._execute(server, txn)
            self._run_daemons()
        return self.stats.committed

    def _next_server(self) -> ProcessContext:
        """Pick the server for the next arrival.

        ``burst == 1`` is exactly the historical per-transaction
        uniform draw (one ``randrange`` — the baseline draw-sequence
        contract); larger bursts re-draw only every ``burst``
        transactions, so one server runs back-to-back.
        """
        burst = self.config.workload.burst
        if burst == 1:
            return self.servers[self.rng.randrange(len(self.servers))]
        if self._burst_left <= 0 or self._burst_server is None:
            self._burst_server = self.servers[
                self.rng.randrange(len(self.servers))]
            self._burst_left = burst
        self._burst_left -= 1
        return self._burst_server

    def run_one(self, server_index: int, txn: TpcbTransaction) -> None:
        """Execute one specific transaction on one server (tests)."""
        self._execute(self.servers[server_index], txn)
        self._run_daemons()

    # -- the transaction path ---------------------------------------------------

    def _execute(self, server: ProcessContext, txn: TpcbTransaction) -> None:
        t = self.tracer
        cfg = self.config
        scale = cfg.tpcb
        t.on_switch(server)

        # Dispatch: context switch in, read the client's request pipe.
        t.on_code("ctx_switch")
        t.on_syscall("pipe_read", PIPE_MSG_BYTES, obj=server.index)

        # SQL layer: parse (soft parse against the cursor cache) and
        # bind; session state lives in the server's PGA.
        t.on_code("sql_parse")
        self._touch_pga(server, lines=self._pga_hot_lines // 2, write=True)
        t.on_code("sql_execute")
        self._touch_pga(server, lines=4, write=False)

        branch_id = txn.branch_id(scale)
        if branch_id != scale.branch_of_teller(txn.teller_id):
            self.stats.remote_account_txns += 1

        # Transaction begin: claim an undo (rollback) segment slot —
        # one of the hottest write-shared blocks in real OLTP systems.
        self.locks.latch("transaction_alloc")
        undo_slot = txn.txn_id % 16
        t.on_meta("txnslot", undo_slot, True)

        # 1. Account update (the random, footprint-heavy access,
        #    reached through a three-level index descent).
        self._update_row(
            server, txn, "account", txn.account_id,
            scale.account_row_bytes, dependent=True,
        )
        self.db.apply_account(txn.account_id, txn.delta)

        # 2. Teller update (hot shared row).
        self._update_row(server, txn, "teller", txn.teller_id, scale.teller_row_bytes)
        self.db.apply_teller(txn.teller_id, txn.delta)

        # 3. Branch update (the hottest shared row: 40 branches system-wide).
        self._update_row(server, txn, "branch", branch_id, scale.branch_row_bytes)
        self.db.apply_branch(branch_id, txn.delta)

        # 4. History insert (append hot spot at the segment tail).
        row = self.db.append_history()
        blk, off = self.db.history_block(row)
        t.on_code("buf_get")
        frame = self.pool.get(blk, for_write=True)
        t.on_code("row_insert")
        t.on_frame(frame, off, scale.history_row_bytes, True)
        self._append_redo(server, REDO_INSERT_BYTES)

        # 5. Commit: redo commit marker, release locks, answer client.
        t.on_code("txn_commit")
        self._touch_pga(server, lines=2, write=True)
        # Commit: mark the undo slot committed and snapshot-check a
        # couple of peers (consistent-read bookkeeping).
        t.on_meta("txnslot", undo_slot, True)
        t.on_meta("txnslot", (undo_slot + 5) % 16, False, dependent=True)
        self._append_redo(server, REDO_COMMIT_BYTES)
        self.locks.release_all(txn.txn_id)
        t.on_syscall("pipe_write", PIPE_MSG_BYTES, obj=server.index)
        t.on_code("ctx_switch")

        self.stats.committed += 1
        self._since_lgwr += 1
        self._since_dbwr += 1
        t.on_txn_boundary(self.stats.committed)

    def _execute_balance(self, server: ProcessContext, txn: TpcbTransaction) -> None:
        """Read-only balance inquiry: index descent, one row read.

        No redo, no row dirtying, no daemon pressure — the read-only
        half of a TPC-C-style payment/inquiry mix.  Trivially preserves
        database consistency (no balances move).
        """
        t = self.tracer
        scale = self.config.tpcb
        t.on_switch(server)
        t.on_code("ctx_switch")
        t.on_syscall("pipe_read", PIPE_MSG_BYTES, obj=server.index)
        t.on_code("sql_parse")
        self._touch_pga(server, lines=self._pga_hot_lines // 2, write=True)
        t.on_code("sql_execute")
        self._touch_pga(server, lines=4, write=False)

        self.locks.acquire("account", txn.account_id, owner=txn.txn_id, mode="S")
        t.on_code("idx_search")
        block_id, offset, index_path = self.db.lookup_row("account", txn.account_id)
        entry = self.config.index_entry_bytes
        for index_block in index_path:
            frame = self.pool.get(index_block, for_write=False)
            t.on_frame(
                frame, (txn.account_id * entry) % (2048 - entry), entry, False,
                dependent=True,
            )
        t.on_code("buf_get")
        frame = self.pool.get(block_id, for_write=False)
        t.on_frame(frame, offset, scale.account_row_bytes, False, dependent=True)
        # Result row is staged into the session's PGA for the reply.
        self._touch_pga(server, lines=2, write=True)
        self.locks.release_all(txn.txn_id)
        t.on_syscall("pipe_write", PIPE_MSG_BYTES, obj=server.index)
        t.on_code("ctx_switch")

        self.stats.committed += 1
        self.stats.balance_txns += 1
        t.on_txn_boundary(self.stats.committed)

    def _execute_scan(self, server: ProcessContext, txn: TpcbTransaction) -> None:
        """Read-only range scan over consecutive account blocks.

        The analytics tail of a mixed workload: one index descent to
        the start key, then a sequential sweep of ``scan_blocks``
        buffer-pool blocks with per-block aggregation in the PGA.
        """
        t = self.tracer
        scale = self.config.tpcb
        t.on_switch(server)
        t.on_code("ctx_switch")
        t.on_syscall("pipe_read", PIPE_MSG_BYTES, obj=server.index)
        t.on_code("sql_parse")
        self._touch_pga(server, lines=self._pga_hot_lines // 2, write=True)
        t.on_code("sql_execute")
        self._touch_pga(server, lines=4, write=False)

        t.on_code("idx_search")
        block_id, _offset, index_path = self.db.lookup_row("account", txn.account_id)
        entry = self.config.index_entry_bytes
        for index_block in index_path:
            frame = self.pool.get(index_block, for_write=False)
            t.on_frame(
                frame, (txn.account_id * entry) % (2048 - entry), entry, False,
                dependent=True,
            )
        # Sequential block sweep, clamped to the account segment.
        layout = self.db.layout
        end = min(block_id + max(1, txn.scan_blocks), layout.teller_base)
        for blk in range(block_id, end):
            t.on_code("buf_get")
            frame = self.pool.get(blk, for_write=False)
            rows = max(1, 2048 // max(1, scale.account_row_bytes))
            t.on_frame(frame, 0, min(2048, rows * scale.account_row_bytes), False)
            self._touch_pga(server, lines=1, write=True)
        t.on_syscall("pipe_write", PIPE_MSG_BYTES, obj=server.index)
        t.on_code("ctx_switch")

        self.stats.committed += 1
        self.stats.scan_txns += 1
        t.on_txn_boundary(self.stats.committed)

    def _update_row(
        self,
        server: ProcessContext,
        txn: TpcbTransaction,
        kind: str,
        row_id: int,
        row_bytes: int,
        dependent: bool = False,
    ) -> None:
        """Lock, index-search, read-modify-write one row, generate redo."""
        t = self.tracer
        self.locks.acquire(kind, row_id, owner=txn.txn_id)
        # Index descent: every node is a buffer-pool block, and each
        # child-pointer load depends on the previous node's contents.
        t.on_code("idx_search")
        block_id, offset, index_path = self.db.lookup_row(kind, row_id)
        entry = self.config.index_entry_bytes
        for index_block in index_path:
            frame = self.pool.get(index_block, for_write=False)
            t.on_frame(
                frame, (row_id * entry) % (2048 - entry), entry, False,
                dependent=True,
            )
        t.on_code("buf_get")
        frame = self.pool.get(block_id, for_write=True)
        t.on_code("row_update")
        t.on_frame(frame, offset, row_bytes, False, dependent=dependent)
        t.on_frame(frame, offset, row_bytes, True)
        # Row image and change vector are staged in the server's PGA.
        self._touch_pga(server, lines=2, write=True)
        self._append_redo_staging(txn)
        self._append_redo(None, REDO_UPDATE_BYTES)

    def _append_redo_staging(self, txn: TpcbTransaction) -> None:
        """Build the change vector in the server's private redo staging."""
        self.tracer.on_code("redo_gen")

    def _append_redo(self, server: Optional[ProcessContext], nbytes: int) -> None:
        """Copy a change vector into the shared log buffer under latches."""
        self.locks.latch("redo_allocation")
        self.log.append(nbytes)
        self.locks.latch("redo_copy")

    @property
    def _pga_hot_lines(self) -> int:
        return max(4, self.config.pga_hot_bytes // 64)

    def _touch_pga(self, server: ProcessContext, lines: int, write: bool) -> None:
        """Walk a rotating window of the server's hot PGA area.

        Call sites are sized so each transaction covers the hot set
        roughly once (session state, stack and staging buffers are all
        exercised per call), with an occasional spill into the cold
        PGA tail.
        """
        cfg = self.config
        hot_lines = self._pga_hot_lines
        cursor = self._pga_cursor[server.index]
        for i in range(lines):
            off = ((cursor + i) % hot_lines) * 64
            self.tracer.on_pga(off, 64, write)
        self._pga_cursor[server.index] = (cursor + lines) % hot_lines
        if self.rng.random() < 0.05:
            cold_off = cfg.pga_hot_bytes + self.rng.randrange(
                max(1, cfg.pga_cold_bytes - 64)
            )
            self.tracer.on_pga(cold_off, 64, write)

    # -- daemons -------------------------------------------------------------------

    def _daemon_cpu(self) -> int:
        """Daemons are scheduled wherever a CPU is free; rotate them."""
        self._daemon_dispatches += 1
        return self._daemon_dispatches % self.config.ncpus

    def _run_daemons(self) -> None:
        cfg = self.config
        if self._since_lgwr >= cfg.commit_batch:
            self._since_lgwr = 0
            self._activate_lgwr()
        if self._since_dbwr >= cfg.dbwr_interval:
            self._since_dbwr = 0
            self._activate_dbwr()

    def _activate_lgwr(self) -> None:
        """Group-commit flush of the redo buffer on the LGWR daemon."""
        t = self.tracer
        self.lgwr.cpu = self._daemon_cpu()
        t.on_switch(self.lgwr)
        t.on_code("ctx_switch")
        t.on_code("lgwr_flush")
        self.log.flush()
        self.stats.lgwr_activations += 1

    def _activate_dbwr(self) -> None:
        """Checkpoint trickle: write a batch of aged dirty blocks."""
        t = self.tracer
        self.dbwr.cpu = self._daemon_cpu()
        t.on_switch(self.dbwr)
        t.on_code("ctx_switch")
        t.on_code("dbwr_scan")
        self.pool.flush_frames(self.config.dbwr_batch)
        self.stats.dbwr_activations += 1
