"""Workload configuration shared by the engine and the trace layer.

All byte sizes here are *post-scaling*: :meth:`WorkloadConfig.build`
takes the paper-scale (unscaled) footprints baked into this module and
divides the large ones by the machine scale factor, exactly as
DESIGN.md Section 6 describes.  Small hot shared structures (latches,
branch rows) keep their natural sizes — scaling them away would dilute
the communication behaviour the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.oltp.schema import BLOCK_SIZE, TpcbScale
from repro.params import KB, MB, SERVERS_PER_CPU
from repro.scenario.workload import BASELINE_WORKLOAD, WorkloadSpec

# ---------------------------------------------------------------------------
# Unscaled (paper-machine) footprints.  These are the calibration
# surface of the reproduction; DESIGN.md records the rationale.
# ---------------------------------------------------------------------------

#: Hot Oracle text actually exercised per transaction (~0.6 MB; OLTP
#: instruction footprints far exceed L1 and stress a 1 MB L2).
TEXT_HOT_BYTES = 448 * KB

#: Cold Oracle text touched occasionally (error paths, rare SQL shapes).
TEXT_COLD_BYTES = 2 * MB

#: Hot kernel text (syscall, pipe, scheduler paths; ~25 % of time).
KTEXT_HOT_BYTES = 192 * KB

#: Cold kernel text.
KTEXT_COLD_BYTES = 768 * KB

#: SGA block-buffer area (the paper's SGA is >900 MB, most of it block
#: buffer).
BLOCK_BUFFER_BYTES = 800 * MB

#: Redo log buffer.
LOG_BUFFER_BYTES = 128 * KB

#: Per-server private memory: hot session state / sort area / stack...
PGA_HOT_BYTES = 32 * KB

#: ...plus a colder private tail (cursor caches, rarely used frames).
PGA_COLD_BYTES = 192 * KB


@dataclass(frozen=True)
class WorkloadConfig:
    """Concrete, scaled parameters for one simulated OLTP run."""

    scale: int
    ncpus: int
    servers_per_cpu: int
    tpcb: TpcbScale
    buffer_frames: int
    log_buffer_bytes: int
    pga_hot_bytes: int
    pga_cold_bytes: int
    text_hot_bytes: int
    text_cold_bytes: int
    ktext_hot_bytes: int
    ktext_cold_bytes: int
    lock_slots: int
    index_entry_bytes: int
    commit_batch: int
    dbwr_interval: int
    dbwr_batch: int
    seed: int
    #: The transaction-mix definition driving generation; the default
    #: is the paper's TPC-B profile (draw-for-draw identical to the
    #: pre-scenario engine).
    workload: WorkloadSpec = field(default=BASELINE_WORKLOAD)

    @classmethod
    def build(
        cls,
        *,
        ncpus: int = 1,
        scale: int = 32,
        servers_per_cpu: int = SERVERS_PER_CPU,
        seed: int = 2000,
        workload: Optional[WorkloadSpec] = None,
    ) -> "WorkloadConfig":
        """Scale the paper workload down by ``scale`` for ``ncpus`` CPUs."""
        if ncpus <= 0 or scale <= 0 or servers_per_cpu <= 0:
            raise ValueError("ncpus, scale and servers_per_cpu must be positive")
        frames = max(256, BLOCK_BUFFER_BYTES // scale // BLOCK_SIZE)
        return cls(
            scale=scale,
            ncpus=ncpus,
            servers_per_cpu=servers_per_cpu,
            tpcb=TpcbScale.paper(scale),
            buffer_frames=frames,
            log_buffer_bytes=max(4 * KB, LOG_BUFFER_BYTES // scale),
            pga_hot_bytes=max(512, PGA_HOT_BYTES // scale),
            pga_cold_bytes=max(KB, PGA_COLD_BYTES // scale),
            text_hot_bytes=max(4 * KB, TEXT_HOT_BYTES // scale),
            text_cold_bytes=max(8 * KB, TEXT_COLD_BYTES // scale),
            ktext_hot_bytes=max(2 * KB, KTEXT_HOT_BYTES // scale),
            ktext_cold_bytes=max(4 * KB, KTEXT_COLD_BYTES // scale),
            lock_slots=max(64, 2048 // scale),
            index_entry_bytes=max(2, 16 // scale),
            commit_batch=4,
            dbwr_interval=32,
            dbwr_batch=16,
            seed=seed,
            workload=workload if workload is not None else BASELINE_WORKLOAD,
        )

    @property
    def num_servers(self) -> int:
        return self.ncpus * self.servers_per_cpu
