"""B+-tree indexes over the TPC-B tables.

Oracle reaches TPC-B rows through B-tree indexes, and that access path
matters for memory behaviour: the root and upper branch blocks are
extremely hot (cached everywhere, read-shared), the leaves are as
random as the rows they point to, and every step of the descent is an
address-dependent load — the pointer-chasing that makes OLTP hard for
out-of-order cores (paper Section 7).

This is a real B+-tree: built bottom-up from sorted keys, searched by
binary search within nodes, supporting insertion (used by tests to
check structural invariants) and full invariant validation.  Nodes map
one-to-one onto database blocks in a dedicated index segment, so the
engine can trace every block it touches during a descent.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Maximum keys per node: a 2 KB block of 16-byte (key, pointer) pairs.
DEFAULT_FANOUT = 128


@dataclass
class Node:
    """One B+-tree node, occupying one index block."""

    leaf: bool
    keys: List[int] = field(default_factory=list)
    # Children for internal nodes (len(keys) + 1), values for leaves.
    children: List["Node"] = field(default_factory=list)
    values: List[int] = field(default_factory=list)
    next_leaf: Optional["Node"] = None
    block: int = -1  # assigned by the tree's block numbering


class BPlusTree:
    """Bulk-loaded B+-tree with per-node block assignment.

    ``lookup`` returns both the value and the *path* of blocks the
    descent touched (root first), which the engine feeds to the tracer.
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT):
        if fanout < 3:
            raise ValueError("fanout must be at least 3")
        self.fanout = fanout
        self.root: Node = Node(leaf=True)
        self.height = 1
        self.num_blocks = 1
        self._assign_blocks()

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, pairs: List[Tuple[int, int]], fanout: int = DEFAULT_FANOUT) -> "BPlusTree":
        """Bulk-load from (key, value) pairs sorted by key."""
        tree = cls(fanout)
        if not pairs:
            return tree
        keys = [k for k, _ in pairs]
        if any(b <= a for a, b in zip(keys, keys[1:])):
            raise ValueError("bulk load requires strictly increasing keys")

        # Leaves first.
        leaves: List[Node] = []
        for i in range(0, len(pairs), fanout):
            chunk = pairs[i:i + fanout]
            leaves.append(
                Node(leaf=True, keys=[k for k, _ in chunk],
                     values=[v for _, v in chunk])
            )
        for a, b in zip(leaves, leaves[1:]):
            a.next_leaf = b

        # Stack internal levels until a single root remains.  The
        # separator before each child is the smallest *leaf* key of its
        # subtree, carried up alongside the nodes.
        level: List[Node] = leaves
        mins: List[int] = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level) > 1:
            parents: List[Node] = []
            parent_mins: List[int] = []
            for i in range(0, len(level), fanout):
                group = level[i:i + fanout]
                group_mins = mins[i:i + fanout]
                parents.append(
                    Node(leaf=False, keys=group_mins[1:], children=group)
                )
                parent_mins.append(group_mins[0])
            level = parents
            mins = parent_mins
            height += 1
        tree.root = level[0]
        tree.height = height
        tree._assign_blocks()
        return tree

    def _assign_blocks(self) -> None:
        """Number nodes breadth-first: root is block 0, leaves last."""
        counter = 0
        queue = [self.root]
        while queue:
            nxt: List[Node] = []
            for node in queue:
                node.block = counter
                counter += 1
                if not node.leaf:
                    nxt.extend(node.children)
            queue = nxt
        self.num_blocks = counter

    # -- search ------------------------------------------------------------------

    def lookup(self, key: int) -> Tuple[Optional[int], List[int]]:
        """(value or None, list of block numbers touched, root first)."""
        node = self.root
        path = [node.block]
        while not node.leaf:
            node = node.children[bisect_right(node.keys, key)]
            path.append(node.block)
        i = bisect_right(node.keys, key) - 1
        if i >= 0 and node.keys[i] == key:
            return node.values[i], path
        return None, path

    def range_scan(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """All (key, value) pairs with lo <= key <= hi, in order."""
        node = self.root
        while not node.leaf:
            node = node.children[bisect_right(node.keys, lo)]
        out: List[Tuple[int, int]] = []
        while node is not None:
            for k, v in zip(node.keys, node.values):
                if k > hi:
                    return out
                if k >= lo:
                    out.append((k, v))
            node = node.next_leaf
        return out

    # -- insertion (tests/extensions; TPC-B itself never inserts keys) --------------

    def insert(self, key: int, value: int) -> None:
        """Insert a new key, splitting nodes as needed."""
        split = self._insert(self.root, key, value)
        if split is not None:
            sep, right = split
            self.root = Node(leaf=False, keys=[sep], children=[self.root, right])
            self.height += 1
        self._assign_blocks()

    def _insert(self, node: Node, key: int, value: int):
        if node.leaf:
            if key in node.keys:
                raise KeyError(f"duplicate key {key}")
            insort(node.keys, key)
            node.values.insert(node.keys.index(key), value)
            if len(node.keys) <= self.fanout:
                return None
            mid = len(node.keys) // 2
            right = Node(leaf=True, keys=node.keys[mid:], values=node.values[mid:],
                         next_leaf=node.next_leaf)
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            node.next_leaf = right
            return right.keys[0], right

        idx = bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) <= self.fanout:
            return None
        mid = len(node.keys) // 2
        sep_up = node.keys[mid]
        right_node = Node(leaf=False, keys=node.keys[mid + 1:],
                          children=node.children[mid + 1:])
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep_up, right_node

    # -- validation ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural invariants (raises AssertionError on breach)."""
        leaf_depths = set()

        def walk(node: Node, depth: int, lo: Optional[int], hi: Optional[int]):
            assert node.keys == sorted(node.keys), "keys out of order"
            for k in node.keys:
                if lo is not None:
                    assert k >= lo, "key below subtree bound"
                if hi is not None:
                    assert k < hi, "key above subtree bound"
            if node.leaf:
                leaf_depths.add(depth)
                assert len(node.values) == len(node.keys)
            else:
                assert len(node.children) == len(node.keys) + 1
                bounds = [lo] + node.keys + [hi]
                for child, (clo, chi) in zip(
                    node.children, zip(bounds[:-1], bounds[1:])
                ):
                    walk(child, depth + 1, clo, chi)

        walk(self.root, 1, None, None)
        assert len(leaf_depths) == 1, "leaves at unequal depths"
        assert leaf_depths == {self.height}, "height bookkeeping stale"

    def __len__(self) -> int:
        count = 0
        node = self.root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            count += len(node.keys)
            node = node.next_leaf
        return count
