"""Redo log buffer and the log-writer (LGWR) daemon's view of it.

Servers append redo records into a shared circular buffer under the
redo-allocation latch; a transaction cannot commit until LGWR has
forced its records to disk.  The paper runs 8 servers per processor
exactly to hide this log-write latency, and LGWR's reads of
server-written log lines are a textbook producer-consumer sharing
pattern (3-hop misses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.oltp.tracing import EngineTracer, NullTracer


@dataclass
class RedoLogStats:
    appends: int = 0
    bytes_appended: int = 0
    flushes: int = 0
    bytes_flushed: int = 0
    wraps: int = 0


class RedoLog:
    """Circular in-memory redo buffer with a write/flush pointer pair.

    ``append`` is called by servers (under the redo latches); ``flush``
    is called by LGWR and reads every unflushed byte.  Offsets handed
    to the tracer are physical offsets inside the log-buffer region,
    so wrap-around naturally reuses the same cache lines.
    """

    def __init__(self, size_bytes: int, tracer: Optional[EngineTracer] = None):
        if size_bytes <= 0:
            raise ValueError("log buffer size must be positive")
        self.size = size_bytes
        self.tracer = tracer if tracer is not None else NullTracer()
        self.write_ptr = 0  # total bytes ever appended
        self.flush_ptr = 0  # total bytes ever flushed
        self.stats = RedoLogStats()

    @property
    def unflushed_bytes(self) -> int:
        return self.write_ptr - self.flush_ptr

    def append(self, nbytes: int) -> int:
        """Append a redo record; returns its starting physical offset.

        If the buffer is full the engine must flush first; we enforce
        this with an exception because a correct engine (ours) flushes
        via LGWR well before wrap-around overtakes the flush pointer.
        """
        if nbytes <= 0:
            raise ValueError("redo records are non-empty")
        if self.unflushed_bytes + nbytes > self.size:
            raise RuntimeError("redo log buffer overrun: LGWR has fallen behind")
        start = self.write_ptr % self.size
        if start + nbytes > self.size:
            # Records do not span the wrap point: pad to the top.
            self.write_ptr += self.size - start
            self.stats.wraps += 1
            start = 0
        self.write_ptr += nbytes
        self.stats.appends += 1
        self.stats.bytes_appended += nbytes
        self.tracer.on_log(start, nbytes, True)
        return start

    def flush(self) -> int:
        """LGWR: read and force all unflushed redo; returns bytes written."""
        pending = self.unflushed_bytes
        if not pending:
            return 0
        tracer = self.tracer
        offset = self.flush_ptr % self.size
        remaining = pending
        while remaining:
            chunk = min(remaining, self.size - offset)
            tracer.on_log(offset, chunk, False)
            remaining -= chunk
            offset = 0
        tracer.on_syscall("disk_write", payload_bytes=pending)
        self.flush_ptr = self.write_ptr
        self.stats.flushes += 1
        self.stats.bytes_flushed += pending
        return pending
