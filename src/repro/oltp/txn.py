"""TPC-B transaction profile: generation and parameter rules.

A transaction is submitted from a random teller; the account is drawn
from the teller's own branch with 85 % probability and from another
branch otherwise (the TPC-B remote-account rule), and the delta is a
uniform amount in [-999999, +999999] excluding zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.oltp.schema import TpcbScale

#: TPC-B probability that the account belongs to the teller's branch.
LOCAL_ACCOUNT_PROB = 0.85

#: TPC-B delta magnitude bound.
MAX_DELTA = 999_999


@dataclass(frozen=True)
class TpcbTransaction:
    """One banking transaction: who, which account, how much."""

    txn_id: int
    teller_id: int
    account_id: int
    delta: int

    def branch_id(self, scale: TpcbScale) -> int:
        """The branch debited/credited: the *account's* branch."""
        return scale.branch_of_account(self.account_id)


def generate_transaction(rng: random.Random, scale: TpcbScale, txn_id: int) -> TpcbTransaction:
    """Draw one transaction according to the TPC-B profile."""
    teller = rng.randrange(scale.tellers)
    home_branch = scale.branch_of_teller(teller)
    if scale.branches == 1 or rng.random() < LOCAL_ACCOUNT_PROB:
        branch = home_branch
    else:
        branch = rng.randrange(scale.branches - 1)
        if branch >= home_branch:
            branch += 1
    account = branch * scale.accounts_per_branch + rng.randrange(scale.accounts_per_branch)
    delta = rng.randint(1, MAX_DELTA)
    if rng.random() < 0.5:
        delta = -delta
    return TpcbTransaction(txn_id, teller, account, delta)
