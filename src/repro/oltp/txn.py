"""TPC-B transaction profile: generation and parameter rules.

A transaction is submitted from a random teller; the account is drawn
from the teller's own branch with 85 % probability and from another
branch otherwise (the TPC-B remote-account rule), and the delta is a
uniform amount in [-999999, +999999] excluding zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.oltp.schema import TpcbScale
from repro.scenario.workload import WorkloadSpec, ZipfSampler

#: TPC-B probability that the account belongs to the teller's branch.
LOCAL_ACCOUNT_PROB = 0.85

#: TPC-B delta magnitude bound.
MAX_DELTA = 999_999

#: Range-scan length bounds (blocks) for ``scan`` transactions.
SCAN_MIN_BLOCKS = 4
SCAN_MAX_BLOCKS = 8


@dataclass(frozen=True)
class TpcbTransaction:
    """One transaction: who, which account, how much, what shape.

    ``kind`` is one of :data:`repro.scenario.workload.TXN_KINDS`:
    the classic read-modify-write ``tpcb`` update, a read-only
    ``balance`` point query, or a read-only ``scan`` over
    ``scan_blocks`` consecutive account blocks starting at the
    account's block.
    """

    txn_id: int
    teller_id: int
    account_id: int
    delta: int
    kind: str = "tpcb"
    scan_blocks: int = 0

    def branch_id(self, scale: TpcbScale) -> int:
        """The branch debited/credited: the *account's* branch."""
        return scale.branch_of_account(self.account_id)


def generate_transaction(rng: random.Random, scale: TpcbScale, txn_id: int) -> TpcbTransaction:
    """Draw one transaction according to the TPC-B profile."""
    teller = rng.randrange(scale.tellers)
    home_branch = scale.branch_of_teller(teller)
    if scale.branches == 1 or rng.random() < LOCAL_ACCOUNT_PROB:
        branch = home_branch
    else:
        branch = rng.randrange(scale.branches - 1)
        if branch >= home_branch:
            branch += 1
    account = branch * scale.accounts_per_branch + rng.randrange(scale.accounts_per_branch)
    delta = rng.randint(1, MAX_DELTA)
    if rng.random() < 0.5:
        delta = -delta
    return TpcbTransaction(txn_id, teller, account, delta)


def _draw_account(rng: random.Random, scale: TpcbScale,
                  workload: WorkloadSpec, teller: int) -> int:
    """Branch choice per the (possibly re-weighted) locality rule, then
    an account within the branch — uniform when ``skew`` is 0, else
    Zipf-ranked with rank 0 the branch's hottest account."""
    home_branch = scale.branch_of_teller(teller)
    if scale.branches == 1 or rng.random() < workload.local_account_prob:
        branch = home_branch
    else:
        branch = rng.randrange(scale.branches - 1)
        if branch >= home_branch:
            branch += 1
    if workload.skew > 0:
        index = ZipfSampler(scale.accounts_per_branch,
                            workload.skew).sample(rng)
    else:
        index = rng.randrange(scale.accounts_per_branch)
    return branch * scale.accounts_per_branch + index


def generate_workload_transaction(
    rng: random.Random, scale: TpcbScale, txn_id: int,
    workload: WorkloadSpec,
) -> TpcbTransaction:
    """Draw one transaction according to a :class:`WorkloadSpec`.

    The baseline spec delegates to :func:`generate_transaction`, so
    the consumed rng sequence — and therefore every downstream trace —
    is bit-identical to the pre-scenario generator.
    """
    if workload.is_baseline:
        return generate_transaction(rng, scale, txn_id)
    kind = workload.draw_kind(rng)
    teller = rng.randrange(scale.tellers)
    account = _draw_account(rng, scale, workload, teller)
    if kind == "tpcb":
        delta = rng.randint(1, MAX_DELTA)
        if rng.random() < 0.5:
            delta = -delta
        return TpcbTransaction(txn_id, teller, account, delta)
    if kind == "balance":
        return TpcbTransaction(txn_id, teller, account, 0, kind="balance")
    blocks = SCAN_MIN_BLOCKS + rng.randrange(
        SCAN_MAX_BLOCKS - SCAN_MIN_BLOCKS + 1)
    return TpcbTransaction(txn_id, teller, account, 0,
                           kind="scan", scan_blocks=blocks)
