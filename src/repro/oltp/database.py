"""The TPC-B database proper: segments, rows, balances, history.

This is a genuine (if small) banking database: balances live in numpy
arrays, updates really happen, and the invariants the TPC-B consistency
conditions require — branch balance equals the sum of its tellers'
balance changes equals the sum of its accounts' changes, one history
row per transaction — hold at all times and are asserted in tests.

The database also owns the *segment layout*: every table maps to a
contiguous range of global block numbers, which the buffer pool and
tracer use to place rows in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.oltp.index import BPlusTree
from repro.oltp.schema import BLOCK_SIZE, TpcbScale


@dataclass(frozen=True)
class SegmentLayout:
    """Global block-number ranges for each TPC-B table and index."""

    account_base: int
    teller_base: int
    branch_base: int
    history_base: int
    history_blocks: int
    account_index_base: int = 0
    account_index_blocks: int = 0
    teller_index_base: int = 0
    teller_index_blocks: int = 0
    branch_index_base: int = 0
    branch_index_blocks: int = 0

    @property
    def total_blocks(self) -> int:
        return self.branch_index_base + self.branch_index_blocks


class TpcbDatabase:
    """In-memory TPC-B tables with real balance arithmetic."""

    #: History segment capacity in blocks; a circular window is enough
    #: because TPC-B only ever appends and never reads history back.
    HISTORY_WINDOW_BLOCKS = 256

    def __init__(self, scale: TpcbScale):
        self.scale = scale
        self.account_balance = np.zeros(scale.accounts, dtype=np.int64)
        self.teller_balance = np.zeros(scale.tellers, dtype=np.int64)
        self.branch_balance = np.zeros(scale.branches, dtype=np.int64)
        self.history_count = 0
        a = scale.account_blocks
        t = scale.teller_blocks
        b = scale.branch_blocks
        history_base = a + t + b

        # Primary-key B+-tree indexes, as Oracle reaches these rows.
        # Values encode (global block, offset) of the row.
        def location_pairs(count, base, locate):
            pairs = []
            for rid in range(count):
                blk, off = locate(rid)
                pairs.append((rid, (base + blk) * BLOCK_SIZE + off))
            return pairs

        self.account_index = BPlusTree.build(
            location_pairs(scale.accounts, 0, scale.account_location)
        )
        self.teller_index = BPlusTree.build(
            location_pairs(scale.tellers, a, scale.teller_location)
        )
        self.branch_index = BPlusTree.build(
            location_pairs(scale.branches, a + t, scale.branch_location)
        )

        aidx_base = history_base + self.HISTORY_WINDOW_BLOCKS
        tidx_base = aidx_base + self.account_index.num_blocks
        bidx_base = tidx_base + self.teller_index.num_blocks
        self.layout = SegmentLayout(
            account_base=0,
            teller_base=a,
            branch_base=a + t,
            history_base=history_base,
            history_blocks=self.HISTORY_WINDOW_BLOCKS,
            account_index_base=aidx_base,
            account_index_blocks=self.account_index.num_blocks,
            teller_index_base=tidx_base,
            teller_index_blocks=self.teller_index.num_blocks,
            branch_index_base=bidx_base,
            branch_index_blocks=self.branch_index.num_blocks,
        )

    # -- block addressing ----------------------------------------------------

    def account_block(self, account_id: int) -> Tuple[int, int]:
        """(global block id, byte offset) of an account row."""
        blk, off = self.scale.account_location(account_id)
        return self.layout.account_base + blk, off

    def teller_block(self, teller_id: int) -> Tuple[int, int]:
        blk, off = self.scale.teller_location(teller_id)
        return self.layout.teller_base + blk, off

    def branch_block(self, branch_id: int) -> Tuple[int, int]:
        blk, off = self.scale.branch_location(branch_id)
        return self.layout.branch_base + blk, off

    def lookup_row(self, table: str, row_id: int) -> Tuple[int, int, Tuple[int, ...]]:
        """Find a row through its index, the way the engine does.

        Returns (global block, byte offset, index blocks touched) —
        the index path is what the tracer charges for the descent.
        Raises KeyError for a missing row, as a real index would.
        """
        if table == "account":
            index, base = self.account_index, self.layout.account_index_base
        elif table == "teller":
            index, base = self.teller_index, self.layout.teller_index_base
        elif table == "branch":
            index, base = self.branch_index, self.layout.branch_index_base
        else:
            raise KeyError(f"no index on table {table!r}")
        value, path = index.lookup(row_id)
        if value is None:
            raise KeyError(f"{table} row {row_id} not found")
        return value // BLOCK_SIZE, value % BLOCK_SIZE, tuple(base + b for b in path)

    def history_block(self, history_row: int) -> Tuple[int, int]:
        """(global block id, byte offset) of history row ``history_row``.

        The history segment is a circular window: row numbers keep
        growing but block numbers wrap, modelling Oracle's reuse of
        extents after checkpoints.
        """
        rows = self.scale.history_rows_per_block
        blk = (history_row // rows) % self.layout.history_blocks
        off = (history_row % rows) * self.scale.history_row_bytes
        return self.layout.history_base + blk, off

    # -- row operations --------------------------------------------------------

    def apply_account(self, account_id: int, delta: int) -> int:
        """Apply the balance delta; returns the new balance."""
        self.account_balance[account_id] += delta
        return int(self.account_balance[account_id])

    def apply_teller(self, teller_id: int, delta: int) -> int:
        self.teller_balance[teller_id] += delta
        return int(self.teller_balance[teller_id])

    def apply_branch(self, branch_id: int, delta: int) -> int:
        self.branch_balance[branch_id] += delta
        return int(self.branch_balance[branch_id])

    def append_history(self) -> int:
        """Record one history row; returns its row number."""
        row = self.history_count
        self.history_count += 1
        return row

    # -- consistency ------------------------------------------------------------

    def check_consistency(self) -> None:
        """TPC-B consistency conditions (raises AssertionError on breach).

        The paper's transaction updates the branch *the customer
        belongs to* (Section 2.1), so per-branch account sums must
        equal the branch balance.  Tellers conserve money globally but
        not per branch, because 15 % of accounts are remote from the
        submitting teller's branch.
        """
        total_a = int(self.account_balance.sum())
        total_t = int(self.teller_balance.sum())
        total_b = int(self.branch_balance.sum())
        assert total_a == total_t == total_b, (
            f"balance conservation violated: accounts={total_a} "
            f"tellers={total_t} branches={total_b}"
        )
        for branch in range(self.scale.branches):
            a0 = branch * self.scale.accounts_per_branch
            a1 = a0 + self.scale.accounts_per_branch
            asum = int(self.account_balance[a0:a1].sum())
            bsum = int(self.branch_balance[branch])
            assert asum == bsum, f"branch {branch}: account sum {asum} != {bsum}"
