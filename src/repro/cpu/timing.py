"""Timing phase: charge merged event streams through the CPU models.

Phase 4 of the staged replay pipeline.  The private-hierarchy and
coherence phases defer all cycle accounting into *timing records*
``(pos, cycles, klass, dep, is_instr)`` — ``pos`` being the
reference's position within its scheduling quantum — and this module
replays them through the CPU models once per quantum.

The in-order model accumulates plain integer counters and its
``stall``/``busy`` calls commute, so :func:`charge_quantum_inorder`
applies aggregates directly.  The out-of-order model is
order-sensitive (window occupancy, MSHRs, dependent-load
serialization), so :func:`charge_quantum_ooo` merges the quantum's
instruction-fetch positions back into the stall stream and replays
``busy``/``stall`` calls in exactly the order ``System._run_fast``
would have made them.

Neither model knows where a cycle count came from: per-event
``cycles`` arrive fully resolved from the interconnect
(:meth:`repro.coherence.network.InterconnectModel.service_latency`),
which already composed the Figure-3 class latency with any
per-hop :class:`~repro.scenario.topology.TopologySpec` extras.  The
CPU models therefore work unchanged for every topology; only the
producers of timing records vary.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.params import INSTRS_PER_ILINE


def charge_quantum_inorder(cpu, timing: Sequence, n_l2_hits: int,
                           lat_l2_hit: int, n_instr: int,
                           n_kinstr: int) -> None:
    """Charge one quantum's records to an in-order CPU.

    Equivalent to the scalar loop's per-reference ``stall`` calls plus
    its quantum-end ``busy`` accounting; exact because the in-order
    counters are commutative integers.
    """
    sc = cpu.stall_cycles
    if n_l2_hits:
        sc[0] += n_l2_hits * lat_l2_hit
    for _pos, cycles, klass, _dep, _ins in timing:
        sc[klass] += cycles
    if n_instr:
        cpu.busy_cycles += n_instr * INSTRS_PER_ILINE
        if n_kinstr:
            cpu.kernel_busy_cycles += n_kinstr * INSTRS_PER_ILINE


def charge_quantum_ooo(cpu, timing: Sequence, ipos: List[int],
                       ikern: List[bool]) -> None:
    """Replay one quantum's records through an out-of-order CPU.

    ``ipos``/``ikern`` are the quantum-relative positions and kernel
    flags of its instruction fetches.  The scalar loop calls
    ``busy(INSTRS_PER_ILINE, kernel)`` at each fetch *before* any
    stall that fetch produces, so the merge applies every fetch with
    ``ipos <= pos`` ahead of the stall at ``pos``.
    """
    busy = cpu.busy
    stall = cpu.stall
    n_i = len(ipos)
    ip = 0
    for pos, cycles, klass, dep, is_instr in timing:
        while ip < n_i and ipos[ip] <= pos:
            busy(INSTRS_PER_ILINE, ikern[ip])
            ip += 1
        stall(cycles, klass, dep, is_instr)
    while ip < n_i:
        busy(INSTRS_PER_ILINE, ikern[ip])
        ip += 1
