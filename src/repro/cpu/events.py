"""Encoded memory-reference events and stall classes.

Trace references are packed into single integers for compactness:
``(line_number << 4) | flags``.  The flag bits are:

* ``WRITE``     — the reference is a store;
* ``INSTR``     — instruction fetch (line-granularity);
* ``KERNEL``    — executed in kernel mode (for the 25 % kernel check);
* ``DEPENDENT`` — the load heads an address-dependent chain and cannot
  be overlapped with the previous outstanding miss by an OOO core.
"""

from __future__ import annotations

FLAG_WRITE = 1
FLAG_INSTR = 2
FLAG_KERNEL = 4
FLAG_DEPENDENT = 8

FLAG_BITS = 4
FLAG_MASK = (1 << FLAG_BITS) - 1


def encode(line: int, write: bool = False, instr: bool = False,
           kernel: bool = False, dependent: bool = False) -> int:
    """Pack a reference into its integer trace encoding."""
    flags = 0
    if write:
        flags |= FLAG_WRITE
    if instr:
        flags |= FLAG_INSTR
    if kernel:
        flags |= FLAG_KERNEL
    if dependent:
        flags |= FLAG_DEPENDENT
    return (line << FLAG_BITS) | flags


def decode(ref: int) -> tuple:
    """Unpack a trace integer into (line, write, instr, kernel, dependent)."""
    flags = ref & FLAG_MASK
    return (
        ref >> FLAG_BITS,
        bool(flags & FLAG_WRITE),
        bool(flags & FLAG_INSTR),
        bool(flags & FLAG_KERNEL),
        bool(flags & FLAG_DEPENDENT),
    )


# Stall classes, used as indices into per-CPU stall accumulators.
STALL_L2_HIT = 0
STALL_LOCAL = 1
STALL_REMOTE_CLEAN = 2
STALL_REMOTE_DIRTY = 3
NUM_STALL_CLASSES = 4
