"""Single-issue in-order processor timing model.

This is the equivalent of SimOS-Alpha's medium-speed processor module
that the paper uses for most of its results (Section 2.2): one
instruction per cycle when not stalled, with every L1 miss stalling
the pipeline for the full service latency.  The memory system is
sequentially consistent, so stores stall exactly like loads.
"""

from __future__ import annotations

from repro.cpu.events import NUM_STALL_CLASSES
from repro.stats.breakdown import ExecutionBreakdown


class InOrderCPU:
    """Accumulates busy and per-class stall cycles for one processor."""

    MODEL_NAME = "in-order"

    __slots__ = ("cpu_id", "busy_cycles", "kernel_busy_cycles", "stall_cycles")

    def __init__(self, cpu_id: int = 0):
        self.cpu_id = cpu_id
        self.busy_cycles = 0
        self.kernel_busy_cycles = 0
        self.stall_cycles = [0] * NUM_STALL_CLASSES

    def busy(self, cycles: int, kernel: bool) -> None:
        """Execute ``cycles`` worth of instructions without stalling."""
        self.busy_cycles += cycles
        if kernel:
            self.kernel_busy_cycles += cycles

    def stall(self, cycles: int, klass: int, dependent: bool = False,
              is_instr: bool = False) -> None:
        """Block the pipeline for a miss of stall class ``klass``.

        ``dependent``/``is_instr`` are accepted for interface parity
        with the out-of-order model; an in-order core stalls fully
        either way.
        """
        self.stall_cycles[klass] += cycles

    @property
    def now(self) -> int:
        """Total elapsed cycles for this processor."""
        return self.busy_cycles + sum(self.stall_cycles)

    def drain(self) -> None:
        """Finish outstanding work (no-op for a blocking pipeline)."""

    def reset(self) -> None:
        self.busy_cycles = 0
        self.kernel_busy_cycles = 0
        self.stall_cycles = [0] * NUM_STALL_CLASSES

    def breakdown(self) -> ExecutionBreakdown:
        s = self.stall_cycles
        return ExecutionBreakdown(
            busy=self.busy_cycles,
            kernel_busy=self.kernel_busy_cycles,
            l2_hit=s[0],
            local_stall=s[1],
            remote_clean_stall=s[2],
            remote_dirty_stall=s[3],
        )
