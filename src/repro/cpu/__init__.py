"""Processor timing models and the packed trace-event encoding."""

from repro.cpu.events import (
    FLAG_DEPENDENT,
    FLAG_INSTR,
    FLAG_KERNEL,
    FLAG_WRITE,
    STALL_L2_HIT,
    STALL_LOCAL,
    STALL_REMOTE_CLEAN,
    STALL_REMOTE_DIRTY,
    decode,
    encode,
)
from repro.cpu.inorder import InOrderCPU
from repro.cpu.ooo import OutOfOrderCPU

__all__ = [
    "FLAG_DEPENDENT",
    "FLAG_INSTR",
    "FLAG_KERNEL",
    "FLAG_WRITE",
    "STALL_L2_HIT",
    "STALL_LOCAL",
    "STALL_REMOTE_CLEAN",
    "STALL_REMOTE_DIRTY",
    "decode",
    "encode",
    "InOrderCPU",
    "OutOfOrderCPU",
]
