"""Four-wide out-of-order processor timing model (paper Section 7).

The paper's OOO configuration: 4-wide issue, four integer units, two
load/store units, 64-entry instruction window.  Its headline findings
are (a) ~1.4x (uni) / ~1.3x (MP) absolute gain over the in-order core,
driven by latency hiding rather than issue width, and (b) *identical
relative* benefits from chip-level integration.

We model the window with a latency-overlap queue rather than a full
pipeline: the core can slide up to ``window_cycles`` of execution past
an outstanding data miss before the window fills and it stalls, a
limited number of misses (MSHRs) can be outstanding at once, and a
load flagged *dependent* (pointer chase) cannot issue until the
previous miss returns — which is why OLTP, with its chains of
dependent memory operations, gains far less than SPEC-style codes.
Instruction-fetch misses stall the front end for a fixed fraction
of their latency (fetch-ahead hides the rest).
"""

from __future__ import annotations

from repro.cpu.events import NUM_STALL_CLASSES
from repro.stats.breakdown import ExecutionBreakdown


class OutOfOrderCPU:
    """Windowed latency-overlap timing model for one processor."""

    MODEL_NAME = "out-of-order"

    #: A 64-entry window retiring OLTP's limited ILP gives roughly this
    #: much slack past an outstanding data miss before the ROB fills.
    WINDOW_CYCLES = 24

    #: Outstanding-miss limit (MSHRs / load-store queue depth).
    MSHRS = 8

    #: Fraction of I-side miss latency hidden by the fetch buffer,
    #: branch prediction and fetch-ahead.  Proportional (not
    #: subtractive) hiding keeps the *relative* cost of different
    #: memory systems unchanged — which is exactly the paper's
    #: Section-7 finding about integration gains under OOO.
    FRONTEND_HIDE = 0.30

    #: Busy-time speedup of 4-wide issue on OLTP's limited ILP.  The
    #: paper (citing Ranganathan et al.) finds OLTP "does not benefit
    #: from extremely wide issue"; most of the gain is latency hiding.
    ISSUE_SPEEDUP = 1.45

    __slots__ = (
        "cpu_id",
        "busy_cycles",
        "kernel_busy_cycles",
        "stall_cycles",
        "_now",
        "_outstanding",
        "_last_completion",
    )

    def __init__(self, cpu_id: int = 0):
        self.cpu_id = cpu_id
        self.busy_cycles = 0.0
        self.kernel_busy_cycles = 0.0
        self.stall_cycles = [0.0] * NUM_STALL_CLASSES
        self._now = 0.0
        self._outstanding = []
        self._last_completion = 0.0

    def busy(self, cycles: int, kernel: bool) -> None:
        c = cycles / self.ISSUE_SPEEDUP
        self.busy_cycles += c
        if kernel:
            self.kernel_busy_cycles += c
        self._now += c

    def stall(self, cycles: int, klass: int, dependent: bool = False,
              is_instr: bool = False) -> None:
        """Account an L1-miss service of ``cycles`` at class ``klass``.

        Data misses overlap with execution up to the window's slack and
        with up to MSHRS-1 other outstanding misses; dependent loads
        serialize behind the previous miss; instruction misses stall
        the front end completely.
        """
        now = self._now
        if is_instr:
            # Front-end starvation: a fixed fraction of the fetch
            # latency is hidden; the rest stalls the pipe.
            stall = cycles * (1.0 - self.FRONTEND_HIDE)
            self._now = now + stall
            self.stall_cycles[klass] += stall
            self._last_completion = self._now
            return

        outstanding = self._outstanding
        if outstanding:
            # Retire misses that have already come back.
            outstanding = [t for t in outstanding if t > now]
            self._outstanding = outstanding

        issue = now
        if dependent and self._last_completion > issue:
            issue = self._last_completion
        if len(outstanding) >= self.MSHRS:
            earliest = min(outstanding)
            outstanding.remove(earliest)
            if earliest > issue:
                issue = earliest
        completion = issue + cycles
        outstanding.append(completion)
        self._last_completion = completion

        stall = completion - now - self.WINDOW_CYCLES
        if stall > 0:
            self.stall_cycles[klass] += stall
            self._now = now + stall

    def drain(self) -> None:
        """Wait for all outstanding misses at the end of a run."""
        if self._outstanding:
            last = max(self._outstanding)
            if last > self._now:
                # Residual drain is charged as local stall-equivalent;
                # it is negligible (at most MSHRS misses once per run).
                self.stall_cycles[1] += last - self._now
                self._now = last
            self._outstanding = []

    @property
    def now(self) -> float:
        return self._now

    def reset(self) -> None:
        self.busy_cycles = 0.0
        self.kernel_busy_cycles = 0.0
        self.stall_cycles = [0.0] * NUM_STALL_CLASSES
        # Keep _now/_outstanding: resetting statistics mid-run (warmup
        # boundary) must not rewind the pipeline itself.

    def breakdown(self) -> ExecutionBreakdown:
        s = self.stall_cycles
        return ExecutionBreakdown(
            busy=self.busy_cycles,
            kernel_busy=self.kernel_busy_cycles,
            l2_hit=s[0],
            local_stall=s[1],
            remote_clean_stall=s[2],
            remote_dirty_stall=s[3],
        )
