"""Execution-time breakdowns in the paper's reporting categories.

Every figure in the paper splits non-idle execution time into CPU
(busy), L2-hit, local-memory-stall and remote-memory-stall components,
and splits L2 misses by instruction/data and by where they were
serviced.  These dataclasses are the canonical containers for both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import MissKind


@dataclass
class ExecutionBreakdown:
    """Cycle counts per execution-time component for one CPU (or summed).

    ``busy`` includes both user and kernel instruction execution;
    ``kernel_busy`` is the kernel share of it (tracked so runs can be
    validated against the paper's ~25 % kernel time).
    """

    busy: float = 0.0
    kernel_busy: float = 0.0
    l2_hit: float = 0.0
    local_stall: float = 0.0
    remote_clean_stall: float = 0.0
    remote_dirty_stall: float = 0.0

    @property
    def remote_stall(self) -> float:
        return self.remote_clean_stall + self.remote_dirty_stall

    @property
    def total(self) -> float:
        return self.busy + self.l2_hit + self.local_stall + self.remote_stall

    @property
    def cpu_utilization(self) -> float:
        """Busy fraction of total time (the paper quotes ~17 % for Base MP)."""
        total = self.total
        return self.busy / total if total else 0.0

    def add(self, other: "ExecutionBreakdown") -> None:
        self.busy += other.busy
        self.kernel_busy += other.kernel_busy
        self.l2_hit += other.l2_hit
        self.local_stall += other.local_stall
        self.remote_clean_stall += other.remote_clean_stall
        self.remote_dirty_stall += other.remote_dirty_stall

    def normalized_to(self, baseline_total: float) -> "ExecutionBreakdown":
        """Rescale so that ``baseline_total`` maps to 100 units."""
        if baseline_total <= 0:
            raise ValueError("baseline total must be positive")
        f = 100.0 / baseline_total
        return ExecutionBreakdown(
            busy=self.busy * f,
            kernel_busy=self.kernel_busy * f,
            l2_hit=self.l2_hit * f,
            local_stall=self.local_stall * f,
            remote_clean_stall=self.remote_clean_stall * f,
            remote_dirty_stall=self.remote_dirty_stall * f,
        )

    def as_dict(self) -> dict:
        return {
            "CPU": self.busy,
            "L2Hit": self.l2_hit,
            "LocStall": self.local_stall,
            "RemStall": self.remote_stall,
            "total": self.total,
        }


@dataclass
class MissBreakdown:
    """L2 miss counts in the paper's five categories.

    The uniprocessor figures collapse this to instruction vs data; the
    multiprocessor figures use all five (I-Loc, I-Rem, D-Loc,
    D-RemClean, D-RemDirty).  RAC hits count as *local* misses — the
    paper's Figure 11 shows the RAC changing the mix, not the total.
    """

    i_local: int = 0
    i_remote: int = 0
    d_local: int = 0
    d_remote_clean: int = 0
    d_remote_dirty: int = 0

    @property
    def instruction(self) -> int:
        return self.i_local + self.i_remote

    @property
    def data(self) -> int:
        return self.d_local + self.d_remote_clean + self.d_remote_dirty

    @property
    def total(self) -> int:
        return self.instruction + self.data

    @property
    def remote(self) -> int:
        return self.i_remote + self.d_remote_clean + self.d_remote_dirty

    @property
    def dirty_share(self) -> float:
        """Fraction of all misses that are 3-hop (paper: >50 % at 8 MB MP)."""
        return self.d_remote_dirty / self.total if self.total else 0.0

    def record(self, kind: MissKind, is_instr: bool) -> None:
        if is_instr:
            if kind is MissKind.LOCAL:
                self.i_local += 1
            else:
                # Instruction lines are read-only, so 3-hop I-misses do
                # not arise; fold any remote service into I-Rem.
                self.i_remote += 1
        elif kind is MissKind.LOCAL:
            self.d_local += 1
        elif kind is MissKind.REMOTE_CLEAN:
            self.d_remote_clean += 1
        else:
            self.d_remote_dirty += 1

    def add(self, other: "MissBreakdown") -> None:
        self.i_local += other.i_local
        self.i_remote += other.i_remote
        self.d_local += other.d_local
        self.d_remote_clean += other.d_remote_clean
        self.d_remote_dirty += other.d_remote_dirty

    def normalized_to(self, baseline_total: float) -> dict:
        """Each category scaled so the baseline's total is 100 units."""
        if baseline_total <= 0:
            raise ValueError("baseline total must be positive")
        f = 100.0 / baseline_total
        return {
            "I-Loc": self.i_local * f,
            "I-Rem": self.i_remote * f,
            "D-Loc": self.d_local * f,
            "D-RemClean": self.d_remote_clean * f,
            "D-RemDirty": self.d_remote_dirty * f,
            "total": self.total * f,
        }

    def as_dict(self) -> dict:
        return {
            "I-Loc": self.i_local,
            "I-Rem": self.i_remote,
            "D-Loc": self.d_local,
            "D-RemClean": self.d_remote_clean,
            "D-RemDirty": self.d_remote_dirty,
            "total": self.total,
        }


@dataclass
class ProtocolStats:
    """Aggregate coherence-activity counters for a run."""

    upgrades: int = 0
    invalidations: int = 0
    writebacks: int = 0
    interventions: int = 0
    writes: int = 0

    @property
    def invalidations_per_write(self) -> float:
        """Paper, Section 6: ~1-in-6 without a RAC, ~1-in-3 with one."""
        return self.invalidations / self.writes if self.writes else 0.0


@dataclass
class RacStats:
    """Remote-access-cache effectiveness for a run."""

    probes: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0


@dataclass
class L1Stats:
    """First-level cache activity (for footprint sanity checks)."""

    i_refs: int = 0
    i_misses: int = 0
    d_refs: int = 0
    d_misses: int = 0

    @property
    def i_miss_rate(self) -> float:
        return self.i_misses / self.i_refs if self.i_refs else 0.0

    @property
    def d_miss_rate(self) -> float:
        return self.d_misses / self.d_refs if self.d_refs else 0.0
