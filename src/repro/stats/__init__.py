"""Measurement containers used across the simulator and experiments."""

from repro.stats.breakdown import (
    ExecutionBreakdown,
    L1Stats,
    MissBreakdown,
    ProtocolStats,
    RacStats,
)

__all__ = [
    "ExecutionBreakdown",
    "L1Stats",
    "MissBreakdown",
    "ProtocolStats",
    "RacStats",
]
