"""Machine configurations for every design point the paper studies.

A :class:`MachineConfig` captures one bar of one figure: processor
count, integration level, L2 geometry and technology, optional remote
access cache, optional OS code replication, and the CPU model.  Sizes
are given in *logical* (paper) bytes; the simulator scales them down
by the workload's scale factor (DESIGN.md Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.integrity.errors import ConfigError
from repro.params import (
    BASE_L2_ASSOC,
    BASE_L2_SIZE,
    KB,
    L1_ASSOC,
    L1_SIZE,
    LINE_SIZE,
    MB,
    IntegrationLevel,
    L2Technology,
    LatencyTable,
    latencies,
)
from repro.scenario.topology import UNIFORM, TopologySpec


def _valid_capacity(size: int, assoc: int) -> bool:
    """A cache capacity must divide evenly into ``assoc``-way sets and
    be a power of two or a multiple of 256 KB (the paper's fractional
    megabyte points, e.g. the 1.25 MB L2 of Figure 12)."""
    if size % (assoc * LINE_SIZE):
        return False
    return size & (size - 1) == 0 or size % (MB // 4) == 0


def _size_label(size: int) -> str:
    if size % MB == 0:
        return f"{size // MB}M"
    if size * 4 % MB == 0:
        return f"{size / MB:g}M"
    return f"{size // KB}K"


def cache_label(size: int, assoc: int) -> str:
    """Paper-style shorthand, e.g. ``2M8w`` for 2 MB 8-way."""
    return f"{_size_label(size)}{assoc}w"


@dataclass(frozen=True)
class MachineConfig:
    """One simulated machine design point."""

    label: str
    ncpus: int = 1
    integration: IntegrationLevel = IntegrationLevel.BASE
    l2_size: int = BASE_L2_SIZE
    l2_assoc: int = BASE_L2_ASSOC
    l2_technology: L2Technology = L2Technology.OFF_CHIP_SRAM
    cpu_model: str = "inorder"
    rac_size: Optional[int] = None
    rac_assoc: int = 8
    replicate_code: bool = False
    cores_per_node: int = 1
    victim_entries: int = 0
    #: Unified TLB entries per core; 0 models a perfect TLB (the
    #: paper's figures fold MMU behaviour into the base CPI).
    tlb_entries: int = 0
    scale: int = 32
    #: Inter-node latency structure; the uniform default reproduces
    #: the paper's flat ccNUMA bit-identically.  Also carries the
    #: base-table override hook (latency-sensitivity ablations).
    topology: TopologySpec = UNIFORM

    def __post_init__(self):
        if not self.label or not str(self.label).strip():
            raise ConfigError("label must be a non-empty string")
        if self.ncpus <= 0:
            raise ConfigError("ncpus must be positive")
        if self.l2_size <= 0 or self.l2_assoc <= 0:
            raise ConfigError("L2 geometry must be positive")
        if self.l2_size < self.l2_assoc * LINE_SIZE:
            raise ConfigError(
                f"L2 of {self.l2_size} B cannot hold {self.l2_assoc} ways "
                f"of {LINE_SIZE} B lines"
            )
        if not _valid_capacity(self.l2_size, self.l2_assoc):
            raise ConfigError(
                f"L2 size {self.l2_size} is not a power of two or a "
                f"multiple of 256 KB divisible into {self.l2_assoc}-way sets"
            )
        if self.cpu_model not in ("inorder", "ooo"):
            raise ConfigError(f"unknown cpu_model {self.cpu_model!r}")
        if self.integration.l2_on_chip and self.l2_technology is L2Technology.OFF_CHIP_SRAM:
            raise ConfigError("integrated L2 must use on-chip SRAM or DRAM")
        if not self.integration.l2_on_chip and self.l2_technology is not L2Technology.OFF_CHIP_SRAM:
            raise ConfigError("off-chip L2 must use off-chip SRAM")
        if self.cores_per_node <= 0:
            raise ConfigError("cores_per_node must be positive")
        if self.ncpus % self.cores_per_node:
            raise ConfigError(
                f"ncpus ({self.ncpus}) must be a multiple of "
                f"cores_per_node ({self.cores_per_node})"
            )
        if self.cores_per_node > 1 and not self.integration.l2_on_chip:
            raise ConfigError("chip multiprocessing requires an on-chip L2")
        if self.victim_entries < 0:
            raise ConfigError("victim_entries must be non-negative")
        if self.tlb_entries < 0:
            raise ConfigError("tlb_entries must be non-negative")
        if self.scale < 1:
            raise ConfigError("scale must be at least 1")
        if not isinstance(self.topology, TopologySpec):
            raise ConfigError(
                f"topology must be a TopologySpec, got "
                f"{type(self.topology).__name__}"
            )
        self.topology.validate_for(self.num_nodes)
        if self.rac_size is not None:
            if self.num_nodes == 1:
                raise ConfigError("a RAC only makes sense in a multiprocessor")
            if self.rac_assoc <= 0:
                raise ConfigError("rac_assoc must be positive")
            if self.rac_size < self.rac_assoc * LINE_SIZE:
                raise ConfigError(
                    f"RAC of {self.rac_size} B cannot hold {self.rac_assoc} "
                    f"ways of {LINE_SIZE} B lines"
                )
            if not _valid_capacity(self.rac_size, self.rac_assoc):
                raise ConfigError(
                    f"RAC size {self.rac_size} is not a power of two or a "
                    f"multiple of 256 KB divisible into "
                    f"{self.rac_assoc}-way sets"
                )

    @property
    def num_nodes(self) -> int:
        """Coherence nodes (chips); equals ncpus unless CMP is enabled."""
        return self.ncpus // self.cores_per_node

    @property
    def vectorizable(self) -> bool:
        """True when the machine itself permits the vectorized replay
        engine: a single coherence node with one core and none of the
        structures the numpy kernel does not model (victim buffer, TLB,
        RAC).  Run options (fault plans, per-quantum checking) can still
        veto it; :meth:`repro.core.system.System.select_engine` folds
        both in and is the dispatch's single source of truth.
        """
        return (
            self.num_nodes == 1
            and self.cores_per_node == 1
            and not self.victim_entries
            and not self.tlb_entries
            and self.rac_size is None
        )

    @property
    def mp_vectorizable(self) -> bool:
        """True when the machine permits the staged multiprocessor
        engine: several coherence nodes, one core each, and none of the
        structures the pipeline does not model (victim buffer, TLB).
        RACs are allowed — they route to the engine's stream mode.
        As with :attr:`vectorizable`, run options can still veto it in
        :meth:`repro.core.system.System.select_engine`.
        """
        return (
            self.num_nodes > 1
            and self.cores_per_node == 1
            and not self.victim_entries
            and not self.tlb_entries
        )

    # -- derived parameters -----------------------------------------------------

    @property
    def latencies(self) -> LatencyTable:
        """The base (intra-node) latency table: the topology's override
        when one is set, otherwise the Figure-3 lookup.  This is the
        single latency-resolution path — per-hop topology extras layer
        on top inside the interconnect model."""
        if self.topology.base_table is not None:
            return self.topology.base_table
        return latencies(
            self.integration,
            l2_assoc=self.l2_assoc,
            l2_technology=self.l2_technology,
        )

    def _scaled_cache(self, size: int, assoc: int) -> int:
        """Scale a capacity down, keeping it a valid multiple of ways."""
        unit = assoc * LINE_SIZE
        scaled = max(unit, size // self.scale)
        return (scaled // unit) * unit

    @property
    def scaled_l2_size(self) -> int:
        return self._scaled_cache(self.l2_size, self.l2_assoc)

    #: L1 capacities are floor-dominated at small scaled sizes (a 2 KB
    #: 2-way cache is 16 sets), which understates L1 effectiveness and
    #: overstates L2-hit traffic.  Scaling the L1 by scale/2 restores
    #: the paper's hot-footprint-to-L1 ratio; DESIGN.md Section 6.
    L1_SCALE_RELIEF = 2

    @property
    def scaled_l1_size(self) -> int:
        unit = L1_ASSOC * LINE_SIZE
        scaled = max(unit, L1_SIZE * self.L1_SCALE_RELIEF // self.scale)
        return (scaled // unit) * unit

    @property
    def scaled_rac_size(self) -> Optional[int]:
        if self.rac_size is None:
            return None
        return self._scaled_cache(self.rac_size, self.rac_assoc)

    def with_(self, **changes) -> "MachineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # -- serialization (campaign result cache; exact round trip) ----------------

    def to_dict(self) -> dict:
        """JSON-safe representation; inverse of :meth:`from_dict`."""
        return {
            "label": self.label,
            "ncpus": self.ncpus,
            "integration": self.integration.value,
            "l2_size": self.l2_size,
            "l2_assoc": self.l2_assoc,
            "l2_technology": self.l2_technology.value,
            "cpu_model": self.cpu_model,
            "rac_size": self.rac_size,
            "rac_assoc": self.rac_assoc,
            "replicate_code": self.replicate_code,
            "cores_per_node": self.cores_per_node,
            "victim_entries": self.victim_entries,
            "tlb_entries": self.tlb_entries,
            "scale": self.scale,
            "topology": self.topology.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Runs the full ``__post_init__`` validation, so a tampered or
        stale payload raises :class:`~repro.integrity.errors.ConfigError`
        rather than producing an unsimulatable machine.
        """
        topology = data.get("topology")
        return cls(
            label=data["label"],
            ncpus=data["ncpus"],
            integration=IntegrationLevel(data["integration"]),
            l2_size=data["l2_size"],
            l2_assoc=data["l2_assoc"],
            l2_technology=L2Technology(data["l2_technology"]),
            cpu_model=data["cpu_model"],
            rac_size=data["rac_size"],
            rac_assoc=data["rac_assoc"],
            replicate_code=data["replicate_code"],
            cores_per_node=data["cores_per_node"],
            victim_entries=data["victim_entries"],
            tlb_entries=data["tlb_entries"],
            scale=data["scale"],
            topology=(
                UNIFORM if topology is None
                else TopologySpec.from_dict(topology)
            ),
        )

    # -- factories for the paper's named configurations ----------------------------

    @classmethod
    def conservative_base(cls, ncpus: int = 1, *, l2_size: int = BASE_L2_SIZE,
                          l2_assoc: int = 4, scale: int = 32,
                          cpu_model: str = "inorder") -> "MachineConfig":
        """'Conservative Base': off-chip everything, unoptimized latencies."""
        return cls(
            label=f"Cons {cache_label(l2_size, l2_assoc)}",
            ncpus=ncpus,
            integration=IntegrationLevel.CONSERVATIVE_BASE,
            l2_size=l2_size,
            l2_assoc=l2_assoc,
            scale=scale,
            cpu_model=cpu_model,
        )

    @classmethod
    def base(cls, ncpus: int = 1, *, l2_size: int = BASE_L2_SIZE,
             l2_assoc: int = BASE_L2_ASSOC, scale: int = 32,
             cpu_model: str = "inorder") -> "MachineConfig":
        """'Base': aggressive off-chip design (Figure 2 defaults)."""
        return cls(
            label=f"Base {cache_label(l2_size, l2_assoc)}",
            ncpus=ncpus,
            integration=IntegrationLevel.BASE,
            l2_size=l2_size,
            l2_assoc=l2_assoc,
            scale=scale,
            cpu_model=cpu_model,
        )

    @classmethod
    def integrated_l2(cls, ncpus: int = 1, *, l2_size: int = 2 * MB,
                      l2_assoc: int = 8,
                      technology: L2Technology = L2Technology.ON_CHIP_SRAM,
                      scale: int = 32, cpu_model: str = "inorder") -> "MachineConfig":
        """On-chip L2 (SRAM ~2 MB or embedded DRAM ~8 MB), MC/CC off-chip."""
        return cls(
            label=f"L2 {cache_label(l2_size, l2_assoc)} {technology.value}",
            ncpus=ncpus,
            integration=IntegrationLevel.L2,
            l2_size=l2_size,
            l2_assoc=l2_assoc,
            l2_technology=technology,
            scale=scale,
            cpu_model=cpu_model,
        )

    @classmethod
    def integrated_l2_mc(cls, ncpus: int = 1, *, l2_size: int = 2 * MB,
                         l2_assoc: int = 8, scale: int = 32,
                         cpu_model: str = "inorder") -> "MachineConfig":
        """On-chip L2 + memory controller; CC/NR still off-chip."""
        return cls(
            label=f"L2+MC {cache_label(l2_size, l2_assoc)}",
            ncpus=ncpus,
            integration=IntegrationLevel.L2_MC,
            l2_size=l2_size,
            l2_assoc=l2_assoc,
            l2_technology=L2Technology.ON_CHIP_SRAM,
            scale=scale,
            cpu_model=cpu_model,
        )

    @classmethod
    def fully_integrated(cls, ncpus: int = 1, *, l2_size: int = 2 * MB,
                         l2_assoc: int = 8, rac_size: Optional[int] = None,
                         replicate_code: bool = False, scale: int = 32,
                         cpu_model: str = "inorder", victim_entries: int = 0,
                         ) -> "MachineConfig":
        """Alpha 21364-style full integration (L2 + MC + CC/NR on chip)."""
        return cls(
            label=f"All {cache_label(l2_size, l2_assoc)}"
            + (" +RAC" if rac_size else "")
            + (f" +VB{victim_entries}" if victim_entries else ""),
            ncpus=ncpus,
            integration=IntegrationLevel.FULL,
            l2_size=l2_size,
            l2_assoc=l2_assoc,
            l2_technology=L2Technology.ON_CHIP_SRAM,
            rac_size=rac_size,
            replicate_code=replicate_code,
            victim_entries=victim_entries,
            scale=scale,
            cpu_model=cpu_model,
        )

    @classmethod
    def chip_multiprocessor(cls, num_nodes: int = 8, *, cores_per_node: int = 2,
                            l2_size: int = 2 * MB, l2_assoc: int = 8,
                            scale: int = 32,
                            cpu_model: str = "inorder") -> "MachineConfig":
        """Fully integrated CMP: several cores share each on-chip L2.

        The paper's Section 8 points to chip multiprocessing as the
        next step after integration ("the next logical step seems to
        be to tolerate the remaining latencies by exploiting ...
        thread-level parallelism ... through techniques such as chip
        multiprocessing").  This configuration models it: the machine
        keeps ``num_nodes`` coherence nodes, each now carrying
        ``cores_per_node`` cores over the shared L2.
        """
        return cls(
            label=f"CMP{cores_per_node}x{num_nodes} {cache_label(l2_size, l2_assoc)}",
            ncpus=num_nodes * cores_per_node,
            integration=IntegrationLevel.FULL,
            l2_size=l2_size,
            l2_assoc=l2_assoc,
            l2_technology=L2Technology.ON_CHIP_SRAM,
            cores_per_node=cores_per_node,
            scale=scale,
            cpu_model=cpu_model,
        )
