"""Top-level simulator: machine configs, the replay loop, results."""

from repro.core.machine import MachineConfig, cache_label
from repro.core.results import RunResult
from repro.core.system import System, simulate

__all__ = ["MachineConfig", "cache_label", "RunResult", "System", "simulate"]
