"""Run results: everything a paper figure needs from one simulation."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List

from repro.coherence.network import MessageCounters
from repro.core.machine import MachineConfig
from repro.stats.breakdown import (
    ExecutionBreakdown,
    L1Stats,
    MissBreakdown,
    ProtocolStats,
    RacStats,
)


@dataclass
class RunResult:
    """Measured statistics for one (machine, trace) simulation.

    ``breakdown`` sums cycles over all CPUs; ``exec_time`` divides by
    the CPU count, giving the per-processor execution time the paper's
    normalized bars are built from (the workload is symmetric, so this
    equals wall-clock time for the fixed transaction count).

    The payload is engine-independent: every replay engine (``fast``,
    ``general``, ``vectorized``, ``vectorized-mp``) must produce a
    value-identical ``to_dict()`` for the same (machine, trace) pair —
    the differential and golden suites enforce it, and the campaign
    cache relies on it to serve results across engines.
    """

    machine: MachineConfig
    breakdown: ExecutionBreakdown
    per_cpu: List[ExecutionBreakdown]
    misses: MissBreakdown
    l1: L1Stats
    protocol: ProtocolStats
    rac: RacStats
    network: MessageCounters = field(default_factory=MessageCounters)
    measured_txns: int = 0
    #: Software TLB fills (0 when the machine models a perfect TLB).
    tlb_misses: int = 0
    #: L2 demand hits and victim-buffer swap-back hits during the
    #: measured phase (inputs to the miss conservation law).
    l2_hits: int = 0
    victim_hits: int = 0
    #: References replayed in the measured phase; 0 when the result was
    #: assembled by hand (verify() then skips the reference laws).
    trace_refs: int = 0

    @property
    def label(self) -> str:
        return self.machine.label

    @property
    def exec_time(self) -> float:
        """Average per-CPU non-idle execution time in cycles."""
        return self.breakdown.total / max(1, len(self.per_cpu))

    @property
    def cycles_per_txn(self) -> float:
        """System-level cost of one transaction (lower is better)."""
        if not self.measured_txns:
            return 0.0
        return self.breakdown.total / self.measured_txns

    @property
    def l2_misses(self) -> int:
        return self.misses.total

    @property
    def cpu_utilization(self) -> float:
        return self.breakdown.cpu_utilization

    @property
    def kernel_fraction(self) -> float:
        """Kernel share of busy time (paper: ~25 % of execution)."""
        if not self.breakdown.busy:
            return 0.0
        return self.breakdown.kernel_busy / self.breakdown.busy

    def verify(self) -> "RunResult":
        """Check the conservation laws over the measured statistics.

        Raises :class:`~repro.integrity.errors.InvariantViolation` when
        any law fails; returns ``self`` so calls chain.  The reference
        laws need ``trace_refs``/``l2_hits`` bookkeeping and are skipped
        for hand-assembled results (``trace_refs == 0``).
        """
        from repro.integrity.errors import InvariantViolation

        b = self.breakdown
        components = {
            "busy": b.busy,
            "kernel_busy": b.kernel_busy,
            "l2_hit": b.l2_hit,
            "local_stall": b.local_stall,
            "remote_clean_stall": b.remote_clean_stall,
            "remote_dirty_stall": b.remote_dirty_stall,
        }
        for name, value in components.items():
            if value < 0:
                raise InvariantViolation(
                    "negative-cycles",
                    f"breakdown component {name} is negative",
                    details={name: value},
                )
        if b.kernel_busy > b.busy + 1e-6:
            raise InvariantViolation(
                "kernel-exceeds-busy",
                "kernel busy time exceeds total busy time",
                details={"kernel_busy": b.kernel_busy, "busy": b.busy},
            )
        summed = ExecutionBreakdown()
        for cpu in self.per_cpu:
            summed.add(cpu)
        for name in components:
            mine, theirs = getattr(b, name), getattr(summed, name)
            if abs(mine - theirs) > 1e-6 * max(1.0, abs(mine)):
                raise InvariantViolation(
                    "breakdown-mismatch",
                    f"summed breakdown disagrees with per-CPU sum on {name}",
                    details={"total": mine, "per_cpu_sum": theirs},
                )

        if self.trace_refs:
            refs = self.l1.i_refs + self.l1.d_refs
            if refs != self.trace_refs:
                raise InvariantViolation(
                    "reference-conservation",
                    "L1 reference counts do not sum to the replayed "
                    "trace references",
                    details={"i_refs": self.l1.i_refs, "d_refs": self.l1.d_refs,
                             "trace_refs": self.trace_refs},
                )
            l1_misses = self.l1.i_misses + self.l1.d_misses
            serviced = self.l2_hits + self.victim_hits + self.misses.total
            if serviced != l1_misses:
                raise InvariantViolation(
                    "miss-conservation",
                    "L2 hits + victim hits + L2 misses do not sum to "
                    "L1 misses",
                    details={"l2_hits": self.l2_hits,
                             "victim_hits": self.victim_hits,
                             "l2_misses": self.misses.total,
                             "l1_misses": l1_misses},
                )
        return self

    # -- serialization (campaign result cache; exact round trip) ----------------

    def to_dict(self) -> dict:
        """JSON-safe representation of every measured statistic.

        The campaign result cache stores this verbatim;
        :meth:`from_dict` reverses it exactly (Python's JSON float
        encoding is round-trip exact), so a cache-served result is
        indistinguishable from the simulation that produced it.
        """
        return {
            "machine": self.machine.to_dict(),
            "breakdown": asdict(self.breakdown),
            "per_cpu": [asdict(b) for b in self.per_cpu],
            "misses": asdict(self.misses),
            "l1": asdict(self.l1),
            "protocol": asdict(self.protocol),
            "rac": asdict(self.rac),
            "network": asdict(self.network),
            "measured_txns": self.measured_txns,
            "tlb_misses": self.tlb_misses,
            "l2_hits": self.l2_hits,
            "victim_hits": self.victim_hits,
            "trace_refs": self.trace_refs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            machine=MachineConfig.from_dict(data["machine"]),
            breakdown=ExecutionBreakdown(**data["breakdown"]),
            per_cpu=[ExecutionBreakdown(**b) for b in data["per_cpu"]],
            misses=MissBreakdown(**data["misses"]),
            l1=L1Stats(**data["l1"]),
            protocol=ProtocolStats(**data["protocol"]),
            rac=RacStats(**data["rac"]),
            network=MessageCounters(**data["network"]),
            measured_txns=data["measured_txns"],
            tlb_misses=data["tlb_misses"],
            l2_hits=data["l2_hits"],
            victim_hits=data["victim_hits"],
            trace_refs=data["trace_refs"],
        )

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (paper's 'X times')."""
        if self.exec_time <= 0:
            raise ValueError("cannot compute speedup for a zero-time run")
        return other.exec_time / self.exec_time

    def summary(self) -> str:
        """One-line human-readable digest."""
        b = self.breakdown
        total = b.total or 1.0
        return (
            f"{self.label}: {self.cycles_per_txn:,.0f} cyc/txn | "
            f"CPU {100 * b.busy / total:.0f}% L2Hit {100 * b.l2_hit / total:.0f}% "
            f"Loc {100 * b.local_stall / total:.0f}% Rem {100 * b.remote_stall / total:.0f}% | "
            f"L2 misses {self.misses.total:,} (3-hop {100 * self.misses.dirty_share:.0f}%)"
        )
