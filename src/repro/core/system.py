"""The system simulator: replays a trace against one machine config.

This is the reproduction's equivalent of SimOS-Alpha's memory-system
timing loop.  For every packed reference in the trace it walks the
node's L1/L2 hierarchy, invokes the directory protocol on L2 misses
and ownership upgrades, charges the configuration's Figure-3 latencies
through the CPU timing model, and accumulates the paper's statistics.

Four replay engines implement identical semantics:

* ``_run_fast`` — the scalar common case (one core per node, no victim
  buffer).  It deliberately reaches into the cache objects' internal
  set lists: at millions of references per run, per-access object
  allocation would dominate.
* ``_run_general`` — the extended configurations (chip multiprocessing,
  victim buffers, software TLBs) via the clean
  :class:`~repro.memsys.hierarchy.NodeCaches` API.
* ``_run_vectorized`` — the numpy kernel in
  :mod:`repro.memsys.vectorized` for coherence-free uniprocessor
  configurations; selected automatically and value-identical to
  ``_run_fast`` by contract.
* ``_run_vectorized_mp`` — the staged multiprocessor pipeline in
  :mod:`repro.memsys.vectorized_mp`: a sharing-census pre-pass
  (:func:`repro.trace.census.sharing_census`) splits lines into
  provably-private and potentially-shared classes, per-quantum walks
  replay the private hierarchy in bulk, and only the compact
  shared-line event stream reaches the directory protocol
  (:class:`repro.coherence.core.CoherenceCore`), with timing charged
  per quantum by :mod:`repro.cpu.timing`.  Also value-identical to
  ``_run_fast`` by contract.

:meth:`System.select_engine` is the single source of truth for the
dispatch; ``engine=`` overrides it so every path stays reachable.  The
test suite cross-checks the engines against an independent reference
implementation (``tests/core/test_reference_model.py``) and against
each other (``tests/core/test_differential.py``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.core import KIND_TO_STALL
from repro.coherence.homemap import HomeMap
from repro.coherence.network import InterconnectModel
from repro.coherence.protocol import DirectoryProtocol
from repro.core.machine import MachineConfig
from repro.core.results import RunResult
from repro.cpu.inorder import InOrderCPU
from repro.cpu.ooo import OutOfOrderCPU
from repro.integrity.checker import Checker, CheckLevel
from repro.integrity.errors import ConfigError, StateError, TraceMismatchError
from repro.memsys.hierarchy import HierarchyLevel, NodeCaches
from repro.memsys.rac import RemoteAccessCache
from repro.obs import NULL_TRACER, current_metrics, current_tracer
from repro.params import (
    INSTRS_PER_ILINE,
    L1_ASSOC,
    LINE_SIZE,
    TLB_WALK_CYCLES,
    VICTIM_HIT_EXTRA,
)
from repro.stats.breakdown import (
    ExecutionBreakdown,
    L1Stats,
    MissBreakdown,
    ProtocolStats,
    RacStats,
)
from repro.trace.stream import is_streaming, iter_quanta

#: Replay engines accepted by :class:`System` and :func:`simulate`.
ENGINES = ("auto", "fast", "general", "vectorized", "vectorized-mp")


class System:
    """A single-use simulator instance for one machine configuration.

    ``force_general`` routes even plain configurations through the
    general loop; the two loops implement identical semantics and the
    test suite verifies it using this switch.

    ``check`` selects the integrity-checking tier (``"off"``,
    ``"end-of-run"``, ``"per-quantum"``; see
    :class:`~repro.integrity.checker.CheckLevel`).  ``fault_plan``
    deliberately corrupts state mid-run to mutation-test the checker
    (see :class:`~repro.integrity.faults.FaultPlan`).

    ``engine`` pins the replay engine: ``"auto"`` (default) applies
    :meth:`select_engine`, the explicit names force one path and raise
    :class:`~repro.integrity.errors.ConfigError` when the configuration
    cannot run on it.  All engines produce value-identical results
    wherever their domains overlap.
    """

    def __init__(self, machine: MachineConfig, force_general: bool = False,
                 *, check="off", fault_plan=None, engine: str = "auto"):
        self.machine = machine
        self.force_general = force_general
        self.checker = Checker(check)
        self.fault_plan = fault_plan
        self.engine = self.select_engine(
            machine, force_general=force_general, check=check,
            fault_plan=fault_plan, engine=engine,
        )
        self.nodes: List[NodeCaches] = [
            NodeCaches(
                machine.scaled_l2_size,
                machine.l2_assoc,
                l1_size=machine.scaled_l1_size,
                l1_assoc=L1_ASSOC,
                num_cores=machine.cores_per_node,
                victim_entries=machine.victim_entries,
                node_id=i,
            )
            for i in range(machine.num_nodes)
        ]
        cpu_cls = OutOfOrderCPU if machine.cpu_model == "ooo" else InOrderCPU
        self.cpus = [cpu_cls(i) for i in range(machine.ncpus)]
        self.racs: Optional[List[RemoteAccessCache]] = None
        if machine.scaled_rac_size is not None:
            self.racs = [
                RemoteAccessCache(machine.scaled_rac_size, machine.rac_assoc, node_id=i)
                for i in range(machine.num_nodes)
            ]
        self.misses = MissBreakdown()
        self.l1 = L1Stats()
        self.l2_hits = 0
        self.victim_hits = 0
        self.tlb_misses = 0
        self.writes = 0
        self.protocol: Optional[DirectoryProtocol] = None
        self._ran = False
        # Observability: bound per-run by run() from the process-wide
        # tracer/metrics.  The null defaults keep every engine's
        # instrumentation site a no-op when observability is off.
        self._tracer = NULL_TRACER
        self._sampler = None

    # -- engine selection ---------------------------------------------------------

    @staticmethod
    def select_engine(machine: MachineConfig, *, force_general: bool = False,
                      check="off", fault_plan=None,
                      engine: str = "auto") -> str:
        """Resolve the replay engine for a configuration.

        This is the dispatch rule ``run`` uses and the provenance the
        campaign runner records per job; it depends only on the machine
        and run options, never on the trace.
        """
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {engine!r}; choose one of {', '.join(ENGINES)}"
            )
        needs_general = bool(
            machine.cores_per_node > 1 or machine.victim_entries
            or machine.tlb_entries or force_general
        )
        if engine == "general":
            return "general"
        if engine == "fast":
            if needs_general:
                raise ConfigError(
                    "engine='fast' cannot replay CMP, victim-buffer or "
                    "TLB configurations; use engine='general'"
                )
            return "fast"
        run_ok = (
            fault_plan is None
            and CheckLevel.coerce(check) is not CheckLevel.PER_QUANTUM
        )
        vector_ok = not force_general and machine.vectorizable and run_ok
        mp_ok = not force_general and machine.mp_vectorizable and run_ok
        if engine == "vectorized":
            if not vector_ok:
                raise ConfigError(
                    "engine='vectorized' supports only single-node, "
                    "single-core machines with no victim buffer, TLB, "
                    "RAC, fault plan or per-quantum checking"
                )
            return "vectorized"
        if engine == "vectorized-mp":
            if not mp_ok:
                raise ConfigError(
                    "engine='vectorized-mp' supports only multi-node "
                    "machines with one core per node and no victim "
                    "buffer, TLB, fault plan or per-quantum checking"
                )
            return "vectorized-mp"
        if needs_general:
            return "general"
        if vector_ok:
            return "vectorized"
        if mp_ok:
            return "vectorized-mp"
        return "fast"

    # -- measurement reset at the warmup boundary --------------------------------

    def _reset_measurement(self, protocol: DirectoryProtocol,
                           net: InterconnectModel) -> None:
        self.misses = MissBreakdown()
        self.l1 = L1Stats()
        self.l2_hits = 0
        self.victim_hits = 0
        self.tlb_misses = 0
        self.writes = 0
        for cpu in self.cpus:
            cpu.reset()
        for node in self.nodes:
            node.reset_stats()
        if self.racs is not None:
            for rac in self.racs:
                rac.reset_stats()
        protocol.upgrades = 0
        protocol.invalidations = 0
        protocol.writebacks = 0
        protocol.interventions = 0
        net.counters.reset()

    def _measurement_boundary(self, protocol: DirectoryProtocol,
                              net: InterconnectModel, i_refs, i_miss,
                              d_refs, d_miss, l2hits, writes,
                              victimhits=0):
        """Cross the warmup/measurement boundary, one way for all engines.

        Flushes the engine's run-long accumulators, zeroes every
        statistic, and returns the fresh ``misses.record`` bound method
        so engines that cache it can rebind in one step.
        """
        self._flush_counters(
            i_refs, i_miss, d_refs, d_miss, l2hits, writes, victimhits
        )
        self._reset_measurement(protocol, net)
        return self.misses.record

    # -- public entry ---------------------------------------------------------------

    def _validate_trace(self, trace) -> None:
        """Reject traces this machine cannot meaningfully replay."""
        machine = self.machine
        if trace.ncpus != machine.ncpus:
            raise TraceMismatchError(
                f"trace was generated for {trace.ncpus} CPUs, machine has "
                f"{machine.ncpus}; regenerate the trace or pick a matching "
                "machine configuration"
            )
        page_lines = trace.page_bytes // LINE_SIZE
        if (trace.page_bytes % LINE_SIZE or page_lines < 1
                or page_lines & (page_lines - 1)):
            raise TraceMismatchError(
                f"page_bytes={trace.page_bytes} must be a power-of-two "
                f"multiple of the {LINE_SIZE} B line size"
            )
        if is_streaming(trace):
            # The quanta-dependent checks (emptiness, warmup range,
            # per-quantum CPU range) fire inside the stream's
            # validating chunk iterator as it is consumed.
            return
        if not trace.quanta:
            raise TraceMismatchError(
                "trace has no scheduling quanta; nothing to replay"
            )
        warmup = trace.warmup_quanta
        if not 0 <= warmup < len(trace.quanta):
            raise TraceMismatchError(
                f"warmup_quanta={warmup} leaves no measured quanta "
                f"(trace has {len(trace.quanta)}); lower the warmup or "
                "lengthen the trace"
            )
        bad = next((q.cpu for q in trace.quanta
                    if not 0 <= q.cpu < machine.ncpus), None)
        if bad is not None:
            raise TraceMismatchError(
                f"trace schedules CPU {bad}, but the machine has CPUs "
                f"0..{machine.ncpus - 1}"
            )

    def run(self, trace) -> RunResult:
        """Replay ``trace`` and return the measured statistics."""
        machine = self.machine
        self._validate_trace(trace)
        if self._ran:
            raise StateError("System instances are single-use; build a new one")
        self._ran = True

        tracer = self._tracer = current_tracer()
        metrics = current_metrics()
        if metrics.enabled and self.engine != "vectorized":
            # The vectorized uniprocessor kernel replays out of trace
            # order (batched by structure, not by quantum), so it has
            # no per-quantum sampling point; it reports end-of-run
            # aggregates only.
            self._sampler = metrics.new_series(
                label=machine.label, engine=self.engine,
                ncpus=machine.ncpus, num_nodes=machine.num_nodes,
                l2_bytes=machine.scaled_l2_size, l2_assoc=machine.l2_assoc,
            )

        replicated = None
        if machine.replicate_code:
            text_pages = trace.text_pages
            page_lines_shift = (trace.page_bytes // 64).bit_length() - 1
            replicated = lambda line: (line >> page_lines_shift) in text_pages  # noqa: E731
        homemap = HomeMap(machine.num_nodes, trace.page_bytes, replicated)
        protocol = self.protocol = DirectoryProtocol(homemap, self.nodes, self.racs)
        net = InterconnectModel(machine.latencies, machine.topology)

        with tracer.span("system.run", label=machine.label,
                         engine=self.engine, ncpus=machine.ncpus):
            with tracer.span(f"engine.{self.engine}"):
                if self.engine == "general":
                    self._run_general(trace, protocol, net)
                elif self.engine == "vectorized":
                    self._run_vectorized(trace, protocol, net)
                elif self.engine == "vectorized-mp":
                    self._run_vectorized_mp(trace, protocol, net)
                else:
                    self._run_fast(trace, protocol, net)

            for cpu in self.cpus:
                cpu.drain()
            if self.checker.enabled:
                self.checker.check_system(self, protocol)
            result = self._collect(trace, protocol, net)
            if self.checker.enabled:
                result.verify()
        return result

    # -- the vectorized uniprocessor kernel ----------------------------------------

    def _run_vectorized(self, trace, protocol: DirectoryProtocol,
                        net: InterconnectModel) -> None:
        from repro.memsys.vectorized import (
            VectorizedUnsupported,
            replay_uniprocessor,
        )

        if is_streaming(trace):
            # The kernel's structural algorithms (global argsort runs,
            # first-touch np.unique) need the whole reference stream
            # at once; a chunk iterator is accepted by collecting it.
            trace = trace.collect()
        try:
            replay_uniprocessor(self, trace, protocol, net)
        except VectorizedUnsupported:
            # Rare hand-built traces (e.g. an instruction fetch carrying
            # the write flag) fall outside the kernel's contract; the
            # scalar loop handles them with identical results.  State is
            # untouched at this point: the kernel validates before it
            # mutates anything.
            self.engine = "fast"
            self._run_fast(trace, protocol, net)

    # -- the staged multiprocessor pipeline ----------------------------------------

    def _run_vectorized_mp(self, trace, protocol: DirectoryProtocol,
                           net: InterconnectModel) -> None:
        from repro.memsys.vectorized import VectorizedUnsupported
        from repro.memsys.vectorized_mp import replay_multiprocessor

        if is_streaming(trace):
            # The sharing-census pre-pass classifies lines across the
            # whole run; like the uniprocessor kernel, it accepts a
            # chunk iterator by collecting it.
            trace = trace.collect()
        try:
            replay_multiprocessor(self, trace, protocol, net)
        except VectorizedUnsupported:
            # Same contract as the uniprocessor kernel: validation
            # happens before any mutation, so the scalar loop can take
            # over from pristine state with identical results.
            self.engine = "fast"
            self._run_fast(trace, protocol, net)

    # -- the optimized common-case loop ------------------------------------------------

    def _run_fast(self, trace, protocol: DirectoryProtocol,
                  net: InterconnectModel) -> None:
        machine = self.machine
        lat_l2hit = machine.latencies.l2_hit
        mp = machine.num_nodes > 1
        ooo = machine.cpu_model == "ooo"
        owner_get = protocol.directory._owner.get
        service_miss = protocol.service_miss
        ensure_owner = protocol.ensure_owner
        handle_eviction = protocol.handle_eviction
        service_latency = net.service_latency
        record_miss = self.misses.record
        kind_to_stall = KIND_TO_STALL
        l2_assoc = machine.l2_assoc

        nodes = self.nodes
        cpus = self.cpus
        # Integrity hooks fire only at quantum boundaries, so the
        # per-reference path below stays branch-free when disabled.
        checker = self.checker if self.checker.per_quantum else None
        # Metrics likewise: one None test per quantum when disabled.
        sampler = self._sampler
        racs = self.racs
        dir_sharers = protocol.directory._sharers
        plan = self.fault_plan if (
            self.fault_plan is not None and not self.fault_plan.applied
        ) else None
        refs_done = 0
        # Run-long counters kept as plain ints for speed.
        i_refs = i_miss = d_refs = d_miss = l2hits = writes = 0

        for qi, quantum, at_boundary, measured in iter_quanta(trace, "fast"):
            if at_boundary:
                record_miss = self._measurement_boundary(
                    protocol, net, i_refs, i_miss, d_refs, d_miss,
                    l2hits, writes,
                )
                i_refs = i_miss = d_refs = d_miss = l2hits = writes = 0

            cpu_id = quantum.cpu
            node = nodes[cpu_id]
            cpu = cpus[cpu_id]
            stall = cpu.stall
            busy = cpu.busy
            l1i = node.l1i
            l1d = node.l1d
            l2 = node.l2
            l1i_sets = l1i._sets
            l1i_n = l1i.num_sets
            l1i_assoc = l1i.assoc
            l1d_sets = l1d._sets
            l1d_n = l1d.num_sets
            l1d_assoc = l1d.assoc
            l2_sets = l2._sets
            l2_n = l2.num_sets
            l2_dirty = l2._dirty
            q_instr = 0
            q_kinstr = 0

            for ref in quantum.refs:
                flags = ref & 15
                line = ref >> 4
                if flags & 2:  # instruction fetch
                    i_refs += 1
                    q_instr += 1
                    if flags & 4:
                        q_kinstr += 1
                    if ooo:
                        busy(INSTRS_PER_ILINE, flags & 4)
                    sets = l1i_sets
                    ways = sets[line % l1i_n]
                    if line in ways:
                        if ways[0] != line:
                            ways.remove(line)
                            ways.insert(0, line)
                        continue
                    i_miss += 1
                    l1_assoc_here = l1i_assoc
                else:
                    d_refs += 1
                    write = flags & 1
                    if write:
                        writes += 1
                    sets = l1d_sets
                    ways = sets[line % l1d_n]
                    if line in ways:
                        if ways[0] != line:
                            ways.remove(line)
                            ways.insert(0, line)
                        if write:
                            l2_dirty[line % l2_n].add(line)
                            if mp and owner_get(line) != cpu_id:
                                outcome = ensure_owner(cpu_id, line)
                                if outcome is not None:
                                    stall(
                                        service_latency(outcome),
                                        kind_to_stall[outcome.kind],
                                        flags & 8,
                                        False,
                                    )
                        continue
                    d_miss += 1
                    l1_assoc_here = l1d_assoc

                # ---- L1 miss: probe the L2 --------------------------------
                write = flags & 1
                is_instr = flags & 2
                idx2 = line % l2_n
                ways2 = l2_sets[idx2]
                if line in ways2:
                    l2hits += 1
                    if ways2[0] != line:
                        ways2.remove(line)
                        ways2.insert(0, line)
                    if write:
                        l2_dirty[idx2].add(line)
                        if mp and owner_get(line) != cpu_id:
                            outcome = ensure_owner(cpu_id, line)
                            if outcome is not None:
                                stall(
                                    service_latency(outcome),
                                    kind_to_stall[outcome.kind],
                                    flags & 8,
                                    False,
                                )
                    stall(lat_l2hit, 0, flags & 8, is_instr)
                else:
                    # ---- L2 miss: fill, evict, consult the protocol --------
                    if len(ways2) >= l2_assoc:
                        victim = ways2.pop()
                        vdirty_set = l2_dirty[idx2]
                        if victim in vdirty_set:
                            vdirty_set.remove(victim)
                            vdirty = True
                        else:
                            vdirty = False
                        # Inclusion: purge the victim from the L1s.
                        vways = l1i_sets[victim % l1i_n]
                        if victim in vways:
                            vways.remove(victim)
                        vways = l1d_sets[victim % l1d_n]
                        if victim in vways:
                            vways.remove(victim)
                        handle_eviction(cpu_id, victim, vdirty)
                    ways2.insert(0, line)
                    if write:
                        l2_dirty[idx2].add(line)
                    outcome = service_miss(cpu_id, line, bool(write), bool(is_instr))
                    stall(
                        service_latency(outcome),
                        kind_to_stall[outcome.kind],
                        flags & 8,
                        is_instr,
                    )
                    record_miss(outcome.kind, bool(is_instr))

                # ---- fill the L1 (clean; dirtiness lives at the L2) ---------
                if len(ways) >= l1_assoc_here:
                    ways.pop()
                ways.insert(0, line)

            if not ooo and q_instr:
                busy(q_instr * INSTRS_PER_ILINE, False)
                if q_kinstr:
                    cpu.kernel_busy_cycles += q_kinstr * INSTRS_PER_ILINE

            if plan is not None:
                refs_done += len(quantum.refs)
                if refs_done >= plan.at_ref:
                    plan.apply(self, protocol)
                    plan = None
            if checker is not None:
                checker.check_system(self, protocol)
            if sampler is not None and measured:
                if racs is not None:
                    rp = sum(r.probes for r in racs)
                    rh = sum(r.hits for r in racs)
                else:
                    rp = rh = 0
                sampler.sample(qi, self.misses, i_refs, len(dir_sharers),
                               rp, rh)

        if plan is not None:
            plan.apply(self, protocol)
        self._flush_counters(i_refs, i_miss, d_refs, d_miss, l2hits, writes)

    # -- the general loop (CMP / victim buffers) -----------------------------------------

    def _run_general(self, trace, protocol: DirectoryProtocol,
                     net: InterconnectModel) -> None:
        machine = self.machine
        lat_l2hit = machine.latencies.l2_hit
        lat_victim = lat_l2hit + VICTIM_HIT_EXTRA
        cores = machine.cores_per_node
        mp = machine.num_nodes > 1
        ooo = machine.cpu_model == "ooo"
        owner_get = protocol.directory._owner.get
        kind_to_stall = KIND_TO_STALL
        i_refs = i_miss = d_refs = d_miss = l2hits = victimhits = writes = 0
        # Per-core software-filled TLBs (LRU over physical pages).
        tlb_entries = machine.tlb_entries
        page_shift = (trace.page_bytes // 64).bit_length() - 1
        from collections import OrderedDict
        tlbs = [OrderedDict() for _ in range(machine.ncpus)] if tlb_entries else None
        tlb_miss_count = 0
        checker = self.checker if self.checker.per_quantum else None
        sampler = self._sampler
        racs = self.racs
        dir_sharers = protocol.directory._sharers
        plan = self.fault_plan if (
            self.fault_plan is not None and not self.fault_plan.applied
        ) else None
        refs_done = 0

        for qi, quantum, at_boundary, measured in iter_quanta(trace,
                                                              "general"):
            if at_boundary:
                self._measurement_boundary(
                    protocol, net, i_refs, i_miss, d_refs, d_miss,
                    l2hits, writes, victimhits,
                )
                i_refs = i_miss = d_refs = d_miss = l2hits = victimhits = writes = 0
                # Warmup TLB walks were discarded with the rest of the
                # warmup cycles; discard their count too.
                tlb_miss_count = 0

            cpu_id = quantum.cpu
            node_id = cpu_id // cores
            core = cpu_id % cores
            node = self.nodes[node_id]
            cpu = self.cpus[cpu_id]
            tlb = tlbs[cpu_id] if tlbs is not None else None
            q_instr = 0
            q_kinstr = 0

            for ref in quantum.refs:
                flags = ref & 15
                line = ref >> 4
                write = bool(flags & 1)
                is_instr = bool(flags & 2)
                if tlb is not None:
                    page = line >> page_shift
                    if page in tlb:
                        tlb.move_to_end(page)
                    else:
                        # Software fill: PALcode instructions execute,
                        # charged as kernel busy time.
                        tlb_miss_count += 1
                        cpu.busy(TLB_WALK_CYCLES, True)
                        tlb[page] = True
                        if len(tlb) > tlb_entries:
                            tlb.popitem(last=False)
                if is_instr:
                    i_refs += 1
                    q_instr += 1
                    if flags & 4:
                        q_kinstr += 1
                    if ooo:
                        cpu.busy(INSTRS_PER_ILINE, flags & 4)
                else:
                    d_refs += 1
                    if write:
                        writes += 1

                result = node.access(line, write, is_instr, core)
                level = result.level
                if result.victim is not None:
                    protocol.handle_eviction(node_id, result.victim, result.victim_dirty)

                if level is HierarchyLevel.MISS:
                    if is_instr:
                        i_miss += 1
                    else:
                        d_miss += 1
                    outcome = protocol.service_miss(node_id, line, write, is_instr)
                    cpu.stall(
                        net.service_latency(outcome),
                        kind_to_stall[outcome.kind],
                        flags & 8,
                        is_instr,
                    )
                    self.misses.record(outcome.kind, is_instr)
                    continue

                if level is not HierarchyLevel.L1:
                    if is_instr:
                        i_miss += 1
                    else:
                        d_miss += 1
                # Ownership upgrades stall before the hit latency, in
                # the same order as the fast loop — the OOO model is
                # order-sensitive, so the engines must agree on it.
                if write and mp and owner_get(line) != node_id:
                    outcome = protocol.ensure_owner(node_id, line)
                    if outcome is not None:
                        cpu.stall(
                            net.service_latency(outcome),
                            kind_to_stall[outcome.kind],
                            flags & 8,
                            False,
                        )
                if level is HierarchyLevel.L2:
                    l2hits += 1
                    cpu.stall(lat_l2hit, 0, flags & 8, is_instr)
                elif level is HierarchyLevel.VICTIM:
                    victimhits += 1
                    cpu.stall(lat_victim, 0, flags & 8, is_instr)

            if not ooo and q_instr:
                cpu.busy(q_instr * INSTRS_PER_ILINE, False)
                if q_kinstr:
                    cpu.kernel_busy_cycles += q_kinstr * INSTRS_PER_ILINE

            if plan is not None:
                refs_done += len(quantum.refs)
                if refs_done >= plan.at_ref:
                    plan.apply(self, protocol)
                    plan = None
            if checker is not None:
                checker.check_system(self, protocol)
            if sampler is not None and measured:
                if racs is not None:
                    rp = sum(r.probes for r in racs)
                    rh = sum(r.hits for r in racs)
                else:
                    rp = rh = 0
                sampler.sample(qi, self.misses, i_refs, len(dir_sharers),
                               rp, rh)

        if plan is not None:
            plan.apply(self, protocol)
        self._flush_counters(
            i_refs, i_miss, d_refs, d_miss, l2hits, writes, victimhits
        )
        self.tlb_misses += tlb_miss_count

    # -- result assembly -----------------------------------------------------------------

    def _flush_counters(self, i_refs, i_miss, d_refs, d_miss, l2hits, writes,
                        victimhits=0) -> None:
        self.l1.i_refs += i_refs
        self.l1.i_misses += i_miss
        self.l1.d_refs += d_refs
        self.l1.d_misses += d_miss
        self.l2_hits += l2hits
        self.victim_hits += victimhits
        self.writes += writes

    def _collect(self, trace, protocol: DirectoryProtocol,
                 net: InterconnectModel) -> RunResult:
        per_cpu = [cpu.breakdown() for cpu in self.cpus]
        total = ExecutionBreakdown()
        for b in per_cpu:
            total.add(b)
        protocol_stats = ProtocolStats(
            upgrades=protocol.upgrades,
            invalidations=protocol.invalidations,
            writebacks=protocol.writebacks,
            interventions=protocol.interventions,
            writes=self.writes,
        )
        rac_stats = RacStats()
        if self.racs is not None:
            rac_stats.probes = sum(r.probes for r in self.racs)
            rac_stats.hits = sum(r.hits for r in self.racs)
        # For a materialized trace this is the post-warmup reference
        # sum; a consumed stream reports the identical count from its
        # validating iterator's accounting.
        trace_refs = trace.measured_refs
        return RunResult(
            machine=self.machine,
            breakdown=total,
            per_cpu=per_cpu,
            misses=self.misses,
            l1=self.l1,
            protocol=protocol_stats,
            rac=rac_stats,
            network=net.counters,
            measured_txns=getattr(trace, "measured_txns", 0),
            tlb_misses=self.tlb_misses,
            l2_hits=self.l2_hits,
            victim_hits=self.victim_hits,
            trace_refs=trace_refs,
        )


def simulate(machine: MachineConfig, trace, *, force_general: bool = False,
             check="off", fault_plan=None, engine: str = "auto") -> RunResult:
    """Convenience wrapper: build a System, replay ``trace``, return stats.

    ``check``, ``fault_plan`` and ``engine`` pass through to
    :class:`System`.
    """
    return System(machine, force_general,
                  check=check, fault_plan=fault_plan, engine=engine).run(trace)
