"""The always-on job service: queue, dedup, cache, journal, workers.

:class:`JobService` is the transport-agnostic core behind the HTTP API
(:mod:`repro.service.http`).  It promotes the campaign runner's batch
pipeline to a persistent server loop while reusing every piece of the
substrate unchanged:

* submissions land in a **bounded queue** (over capacity →
  :class:`~repro.integrity.errors.QueueFullError`, the backpressure
  signal the transport turns into a 503);
* the **content-addressed identity** of a job is its service id, so
  identical in-flight submissions deduplicate structurally — the
  second submitter attaches to the first's entry and no simulation
  runs twice;
* the :class:`~repro.runner.cache.ResultCache` and
  :class:`~repro.runner.journal.CampaignJournal` are consulted at
  submit time, so warm submissions complete synchronously in
  O(cache lookup) without ever touching the queue;
* cold jobs are **journaled at acceptance** (an fsynced ``accept``
  record) and again at completion, so a SIGKILLed server restarted on
  the same journal serves finished jobs from it and re-queues the
  unfinished remainder — the resumed run's results are bit-identical
  to an uninterrupted one;
* a dispatcher thread drains the queue in batches into the existing
  :class:`~repro.runner.supervisor.SupervisedExecutor`, inheriting its
  crash-respawn, per-job timeout, bounded-retry, and checksum
  machinery unchanged.

Shutdown is graceful by default: :meth:`JobService.close` stops
accepting, drains the queue and the in-flight batch, then tears the
pool down — the SIGTERM path of ``repro-oltp serve``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.results import RunResult
from repro.core.system import System
from repro.integrity.errors import (
    QueueFullError,
    ServiceUnavailableError,
)
from repro.obs import current_metrics, current_tracer
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob
from repro.runner.journal import CampaignJournal
from repro.runner.supervisor import RetryPolicy, SupervisedExecutor
from repro.runner.telemetry import SOURCE_CACHE, SOURCE_JOURNAL, SOURCE_SIMULATED
from repro.runner.tracestore import TraceStore, default_trace_store
from repro.service.state import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    JobEntry,
)
from repro.version import version_info


@dataclass
class ServiceCounters:
    """Monotonic counters for one service lifetime."""

    submitted: int = 0       # every submission seen (incl. duplicates)
    accepted: int = 0        # distinct jobs enqueued for simulation
    dedup_hits: int = 0      # submissions attached to an existing entry
    cache_hits: int = 0      # entries answered from the result cache
    journal_hits: int = 0    # entries answered from the journal
    simulated: int = 0       # entries completed through the worker pool
    failed: int = 0          # entries that failed terminally
    rejected_full: int = 0   # submissions refused: queue at capacity
    rejected_draining: int = 0  # submissions refused: shutting down
    recovered: int = 0       # jobs re-queued from journal accept records

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "dedup_hits": self.dedup_hits,
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "simulated": self.simulated,
            "failed": self.failed,
            "rejected_full": self.rejected_full,
            "rejected_draining": self.rejected_draining,
            "recovered": self.recovered,
        }


class JobService:
    """A long-running simulation job service over the campaign substrate.

    ``workers`` sizes the supervised pool; ``queue_limit`` bounds the
    number of distinct jobs waiting for a worker (running and finished
    entries do not count).  ``cache`` and ``journal`` are optional —
    without them every distinct submission simulates and nothing
    survives a restart.  Supervision knobs (``job_timeout``, ``retry``
    / ``max_retries``, ``max_respawns``) pass straight through to the
    :class:`~repro.runner.supervisor.SupervisedExecutor`.

    Thread-safe: transports may call :meth:`submit` / :meth:`get` /
    :meth:`stats` from any number of threads.
    """

    def __init__(self, workers: int = 2,
                 cache: Optional[ResultCache] = None,
                 journal: Optional[CampaignJournal] = None,
                 trace_store: Optional[TraceStore] = None,
                 queue_limit: int = 1024,
                 job_timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 max_retries: Optional[int] = None,
                 max_respawns: int = 3,
                 batch_limit: Optional[int] = None,
                 shared_memory: bool = True):
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.workers = max(1, int(workers))
        self.cache = cache
        self.journal = journal
        self.trace_store = trace_store or default_trace_store()
        self.queue_limit = int(queue_limit)
        #: Jobs handed to the executor per dispatch cycle; bounded so a
        #: long batch cannot starve late submissions for its whole
        #: duration, large enough to keep every worker busy.
        self.batch_limit = (
            max(1, int(batch_limit)) if batch_limit else self.workers * 4
        )
        if retry is None:
            retry = RetryPolicy() if max_retries is None else RetryPolicy(
                max_retries=max_retries)
        elif max_retries is not None:
            raise ValueError("pass either retry or max_retries, not both")
        self._executor = SupervisedExecutor(
            self.workers, self.trace_store,
            job_timeout=job_timeout, retry=retry,
            max_respawns=max_respawns,
        )
        #: Same contract as the campaign runner: each distinct
        #: workload is published to shared memory once and every
        #: worker replays the one mapping; a failed publish falls back
        #: to the per-worker archive path for that workload.
        self.shared_memory = shared_memory
        self._arena = None
        self.counters = ServiceCounters()
        self.started_at = time.time()
        self._entries: Dict[str, JobEntry] = {}
        self._queue: Deque[str] = deque()
        self._cv = threading.Condition()
        self._running = 0          # jobs inside the current batch
        self._draining = False     # no new submissions
        self._shutdown = False     # dispatcher may exit once idle
        self._closed = False
        self._dispatcher: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "JobService":
        """Recover journaled work and start the dispatcher thread."""
        if self._dispatcher is not None:
            return self
        self._recover()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="service-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        return self

    def _recover(self) -> None:
        """Rebuild the job table from the journal's accept records.

        This is the restart half of the WAL contract: every job the
        previous process promised a client (fsynced accept record)
        reappears under the same content hash — finished ones born
        done from their journaled result, unfinished ones re-queued to
        simulate again — so clients polling across the restart see
        their job complete instead of a 404.
        """
        if self.journal is None:
            return
        metrics = current_metrics()
        with self._cv:
            for job in self.journal.accepted_jobs():
                entry = self._admit(job)
                entry.recovered = True
                if not entry.finished:
                    self.counters.recovered += 1
                    metrics.count("service.recovered")

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> bool:
        """Stop the service; returns True when fully drained.

        ``drain=True`` (the SIGTERM path) refuses new submissions,
        waits for the queue and the in-flight batch to finish (bounded
        by ``timeout`` seconds when given), then shuts the pool and
        journal down.  ``drain=False`` abandons queued jobs — they
        stay journaled as accepted, so a restart picks them up.
        """
        with self._cv:
            if self._closed:
                return True
            self._draining = True
            drained = True
            if drain:
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while self._queue or self._running:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            drained = False
                            break
                    self._cv.wait(
                        0.1 if remaining is None else min(0.1, remaining)
                    )
            else:
                drained = not (self._queue or self._running)
            self._shutdown = True
            self._closed = True
            self._cv.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        self._executor.close()
        if self._arena is not None:
            self._arena.cleanup()
            self._arena = None
        if self.journal is not None:
            self.journal.close()
        return drained

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ------------------------------------------------------------

    def submit(self, job: SimJob) -> JobEntry:
        """Accept one job; returns its (possibly pre-existing) entry.

        Warm paths complete before returning: a duplicate hash attaches
        to the existing entry, and a cache/journal hit is born done.
        Cold jobs are journaled as accepted, enqueued, and picked up by
        the dispatcher.  Raises
        :class:`~repro.integrity.errors.QueueFullError` when the
        bounded queue is at capacity and
        :class:`~repro.integrity.errors.ServiceUnavailableError` once
        draining has begun.
        """
        metrics = current_metrics()
        metrics.count("service.submitted")
        with self._cv:
            self.counters.submitted += 1
            job_hash = job.content_hash()
            entry = self._entries.get(job_hash)
            if entry is not None:
                entry.submissions += 1
                self.counters.dedup_hits += 1
                metrics.count("service.dedup_hits")
                return entry
            if self._draining:
                self.counters.rejected_draining += 1
                metrics.count("service.rejected")
                raise ServiceUnavailableError(
                    "service is draining; not accepting new jobs"
                )
            return self._admit(job, job_hash)

    def submit_many(self, jobs: Sequence[SimJob]) -> List[JobEntry]:
        """Submit a batch; entries come back in submission order."""
        return [self.submit(job) for job in jobs]

    def _admit(self, job: SimJob,
               job_hash: Optional[str] = None) -> JobEntry:
        """Create the entry for a first-seen hash (lock held by caller
        or single-threaded recovery)."""
        metrics = current_metrics()
        job_hash = job_hash or job.content_hash()
        entry = JobEntry(
            job=job, job_hash=job_hash,
            engine=System.select_engine(job.machine, check=job.check),
        )
        known = self._lookup_known(job)
        if known is not None:
            result, source = known
            entry.mark_done(result, source)
            self._entries[job_hash] = entry
            return entry
        if len(self._queue) >= self.queue_limit:
            self.counters.rejected_full += 1
            metrics.count("service.rejected")
            raise QueueFullError(
                f"submission queue is full ({self.queue_limit} jobs)"
            )
        if self.journal is not None:
            self.journal.accept(job)
        self._entries[job_hash] = entry
        self._queue.append(job_hash)
        self.counters.accepted += 1
        metrics.count("service.accepted")
        self._cv.notify_all()
        return entry

    def _lookup_known(self, job: SimJob):
        """Journal-then-cache lookup, mirroring the campaign runner."""
        metrics = current_metrics()
        if self.journal is not None:
            result = self.journal.lookup(job)
            if result is not None:
                self.counters.journal_hits += 1
                metrics.count("service.journal_hits")
                return result, SOURCE_JOURNAL
        if self.cache is not None:
            result = self.cache.load(job)
            if result is not None:
                self.counters.cache_hits += 1
                metrics.count("service.cache_hits")
                return result, SOURCE_CACHE
        return None

    # -- queries ---------------------------------------------------------------

    def get(self, job_hash: str) -> Optional[JobEntry]:
        """The entry for a content hash, or ``None``."""
        with self._cv:
            return self._entries.get(job_hash)

    def wait(self, job_hash: str,
             timeout: Optional[float] = None) -> Optional[JobEntry]:
        """Block until the entry finishes (or ``timeout`` elapses)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                entry = self._entries.get(job_hash)
                if entry is None or entry.finished:
                    return entry
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return entry
                self._cv.wait(
                    0.25 if remaining is None else min(0.25, remaining)
                )

    def stats(self) -> dict:
        """The ``GET /stats`` payload: queue, utilization, substrate."""
        with self._cv:
            by_status = {s: 0 for s in
                         (STATUS_QUEUED, STATUS_RUNNING,
                          STATUS_DONE, STATUS_FAILED)}
            for entry in self._entries.values():
                by_status[entry.status] += 1
            running = self._running
            queue_depth = len(self._queue)
            counters = self.counters.to_dict()
        payload = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "queue_depth": queue_depth,
            "queue_limit": self.queue_limit,
            "running": running,
            "utilization": round(min(running, self.workers)
                                 / self.workers, 4),
            "draining": self._draining,
            "jobs": by_status,
            "counters": counters,
            "resilience": self._executor.stats.to_dict(),
        }
        if self.cache is not None:
            payload["cache"] = {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "rejected": self.cache.stats.rejected,
                "hit_rate": round(self.cache.stats.hit_rate, 4),
            }
        if self.journal is not None:
            payload["journal"] = self.journal.stats.to_dict()
        metrics = current_metrics()
        if getattr(metrics, "enabled", False):
            payload["metrics"] = metrics.to_dict()
        return payload

    def health(self) -> dict:
        """The ``GET /healthz`` payload: liveness plus build identity."""
        return {
            "ok": True,
            "version": version_info(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "draining": self._draining,
        }

    # -- dispatch --------------------------------------------------------------

    def _take_batch(self) -> Optional[List[JobEntry]]:
        """Next batch of queued entries; ``None`` means exit."""
        with self._cv:
            while not self._queue and not self._shutdown:
                self._cv.wait(0.1)
            if self._shutdown:
                # On a graceful drain the queue is already empty here;
                # on drain=False the remainder stays journaled as
                # accepted, so a restart picks it up.
                return None
            take = min(len(self._queue), self.batch_limit)
            batch = []
            for _ in range(take):
                entry = self._entries[self._queue.popleft()]
                entry.mark_running()
                batch.append(entry)
            self._running = len(batch)
            return batch

    def _publish_shared(self, specs) -> Optional[dict]:
        """Spec → shared-memory handle map for a batch (best effort)."""
        if not self.shared_memory:
            return None
        if self._arena is None:
            from repro.runner.shm import SharedTraceArena

            self._arena = SharedTraceArena()
        handles = {}
        for spec in specs:
            try:
                handles[spec] = self._arena.publish(spec, self.trace_store)
            except Exception:
                current_metrics().count("service.shm_fallbacks")
        return handles or None

    def _dispatch_loop(self) -> None:
        tracer = current_tracer()
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            t0 = time.perf_counter()
            try:
                # Materialize each distinct workload into the shared
                # archive once (the campaign runner's invariant), so
                # workers load it instead of racing to generate it.
                specs = {entry.job.spec for entry in batch}
                if self.trace_store.spill_dir:
                    for spec in specs:
                        self.trace_store.ensure_archived(spec)
                outcomes = self._executor.run(
                    [entry.job for entry in batch],
                    on_result=self._on_result,
                    shm_handles=self._publish_shared(specs),
                )
            except Exception as exc:  # defensive: never kill the loop
                with self._cv:
                    for entry in batch:
                        if not entry.finished:
                            entry.mark_failed({
                                "kind": "error",
                                "message": (
                                    f"dispatch failed: "
                                    f"{type(exc).__name__}: {exc}"
                                ),
                                "attempts": entry.attempts,
                            })
                            self.counters.failed += 1
                    self._running = 0
                    self._cv.notify_all()
                continue
            metrics = current_metrics()
            with self._cv:
                for outcome in outcomes:
                    entry = self._entries[outcome.job.content_hash()]
                    if outcome.failure is not None:
                        entry.mark_failed(outcome.failure.to_dict(),
                                          attempts=outcome.attempts)
                        self.counters.failed += 1
                        metrics.count("service.failed")
                    else:
                        entry.attempts = outcome.attempts
                self._running = 0
                self._cv.notify_all()
            if tracer.enabled:
                tracer.add_span(
                    "service.batch", t0, time.perf_counter() - t0,
                    jobs=len(batch),
                )

    def _on_result(self, job: SimJob, result: RunResult,
                   seconds: float, obs) -> None:
        """Executor completion callback: persist, then publish.

        Persisting first preserves the campaign invariant — once a
        client can observe ``done``, a kill cannot un-finish the job.
        """
        if obs is not None:  # pragma: no cover - service runs w/o obs
            current_tracer().absorb(obs["spans"])
            current_metrics().absorb(obs["metrics"])
        if self.cache is not None:
            self.cache.store(job, result)
        with self._cv:
            if self.journal is not None:
                self.journal.append(job, result)
            entry = self._entries[job.content_hash()]
            entry.mark_done(result, SOURCE_SIMULATED, seconds=seconds)
            self.counters.simulated += 1
            self._cv.notify_all()
        current_metrics().count("service.simulated")
        current_metrics().count("service.sim_seconds", seconds)
