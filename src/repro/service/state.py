"""The service's job table: one entry per distinct content hash.

A job's identity in the service is its content hash — the same
SHA-256 the result cache and journal key on — so deduplication is
structural: submitting a spec whose hash is already known (queued,
running, or finished) returns the existing entry instead of creating
a second one; the later submitter "attaches" to the first's outcome
and only the ``submissions`` counter grows.

An entry walks ``queued → running → done | failed``; entries answered
from the result cache or the journal are born ``done``.  Every field a
client can act on is exposed through :meth:`JobEntry.status_dict`,
which is exactly what ``GET /jobs/<id>`` returns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.results import RunResult
from repro.runner.jobs import SimJob

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

STATUSES = (STATUS_QUEUED, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)

#: Where a finished entry's result came from.  ``simulated`` went
#: through the worker pool; ``cache``/``journal`` were answered at
#: submit time; ``recovered`` marks a job re-queued from the journal's
#: accept records after a restart (it becomes ``simulated`` once run).
SOURCE_RECOVERED = "recovered"


@dataclass
class JobEntry:
    """One distinct job travelling through the service."""

    job: SimJob
    job_hash: str
    engine: str = ""
    status: str = STATUS_QUEUED
    source: str = ""
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Worker attempts consumed (0 until the supervisor reports).
    attempts: int = 0
    #: How many times this hash has been submitted (dedup accounting).
    submissions: int = 1
    #: Worker-side simulation seconds (0 for cache/journal answers).
    seconds: float = 0.0
    result: Optional[RunResult] = None
    failure: Optional[dict] = None
    #: True when the entry was re-queued from journal accept records.
    recovered: bool = False

    @property
    def finished(self) -> bool:
        return self.status in (STATUS_DONE, STATUS_FAILED)

    def mark_running(self) -> None:
        self.status = STATUS_RUNNING
        self.started_at = time.time()

    def mark_done(self, result: RunResult, source: str,
                  seconds: float = 0.0, attempts: int = 0) -> None:
        self.status = STATUS_DONE
        self.result = result
        self.source = source
        self.seconds = seconds
        if attempts:
            self.attempts = attempts
        self.finished_at = time.time()

    def mark_failed(self, failure: dict, attempts: int = 0) -> None:
        self.status = STATUS_FAILED
        self.failure = dict(failure)
        if attempts:
            self.attempts = attempts
        self.finished_at = time.time()

    def status_dict(self) -> dict:
        """The client-facing status payload (``GET /jobs/<id>``)."""
        payload = {
            "id": self.job_hash,
            "label": self.job.label,
            "status": self.status,
            "engine": self.engine,
            "submissions": self.submissions,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            payload["started_at"] = self.started_at
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
        if self.finished:
            payload["source"] = self.source
            payload["seconds"] = round(self.seconds, 6)
            payload["attempts"] = self.attempts
        if self.failure is not None:
            payload["failure"] = dict(self.failure)
        if self.recovered:
            payload["recovered"] = True
        return payload
