"""Async load generator for the job service (``repro-oltp loadgen``).

Drives thousands of concurrent submissions against a running service
using only the standard library: each of ``concurrency`` workers holds
one persistent HTTP/1.1 keep-alive connection (``asyncio``'s
``open_connection``) and pulls submissions off a shared schedule, so
the client side imposes no artificial serialization.

A run has two phases:

1. **prime** (unmeasured) — the warm corpus is submitted once and
   driven to completion, so the measured phase's "warm" submissions
   genuinely dedup/cache-hit;
2. **measure** — a deterministic interleaving of warm repeats and
   fresh cold jobs (``mix`` sets the ratio) is pushed at full
   concurrency; every submission records two latencies:

   * ``submit_accept`` — POST round-trip until the service acknowledged
     (queued/done) the job;
   * ``submit_done`` — until polling ``GET /jobs/<id>`` observed a
     terminal state.

The report (:func:`render` for humans, JSON via ``--report``) gives
per-phase, per-class nearest-rank percentiles (p50/p90/p99/max),
overall throughput, and the full status-code histogram — the CI smoke
asserts every response was 2xx and that warm p99 stays under cold p50.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.integrity.errors import ConfigError
from repro.runner.jobs import SimJob

#: Terminal statuses a poller stops on.
_TERMINAL = ("done", "failed")


def parse_mix(mix: str) -> Tuple[int, int]:
    """``"80:20"`` → ``(80, 20)`` (warm:cold weights)."""
    try:
        warm_s, _, cold_s = mix.partition(":")
        warm, cold = int(warm_s), int(cold_s)
    except ValueError:
        raise ConfigError(
            f"bad mix {mix!r}; expected WARM:COLD integers like 80:20"
        ) from None
    if warm < 0 or cold < 0 or warm + cold == 0:
        raise ConfigError(f"bad mix {mix!r}; weights must be >= 0, not both 0")
    return warm, cold


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(-(-q * len(ordered) // 100)))  # ceil, 1-based
    return ordered[min(rank, len(ordered)) - 1]


def summarize(samples: List[float]) -> dict:
    """p50/p90/p99/max/mean summary of a latency series (seconds)."""
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "mean": round(sum(samples) / len(samples), 6),
        "p50": round(percentile(samples, 50), 6),
        "p90": round(percentile(samples, 90), 6),
        "p99": round(percentile(samples, 99), 6),
        "max": round(max(samples), 6),
    }


class LoadClient:
    """One persistent HTTP/1.1 connection speaking the service's JSON.

    Reconnects transparently (once per request) if the server closed
    the connection between requests.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:  # pragma: no cover - teardown race
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      payload=None) -> Tuple[int, dict]:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Connection: keep-alive\r\n"
        )
        if body:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        head += "\r\n"
        request = head.encode() + body
        for attempt in (0, 1):
            try:
                if self._writer is None:
                    await self._connect()
                assert self._reader is not None and self._writer is not None
                self._writer.write(request)
                await self._writer.drain()
                return await self._read_response()
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _read_response(self) -> Tuple[int, dict]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(data) if data else {})


@dataclass
class LoadStats:
    """Shared accumulator all workers write into."""

    accept: Dict[str, List[float]] = field(default_factory=dict)
    done: Dict[str, List[float]] = field(default_factory=dict)
    status_codes: Dict[int, int] = field(default_factory=dict)
    transport_errors: int = 0
    job_failures: int = 0

    def code(self, status: int) -> None:
        self.status_codes[status] = self.status_codes.get(status, 0) + 1

    def sample(self, kind: str, accept_s: float, done_s: float) -> None:
        self.accept.setdefault(kind, []).append(accept_s)
        self.done.setdefault(kind, []).append(done_s)

    @property
    def all_2xx(self) -> bool:
        return (
            self.transport_errors == 0
            and all(200 <= c < 300 for c in self.status_codes)
        )


async def _drive_one(client: LoadClient, kind: str, spec: dict,
                     stats: LoadStats, measured: bool,
                     poll_timeout: float) -> None:
    t0 = time.perf_counter()
    try:
        status, payload = await client.request("POST", "/jobs", spec)
    except (ConnectionError, OSError):
        stats.transport_errors += 1
        return
    accept_s = time.perf_counter() - t0
    stats.code(status)
    if status != 200:
        return
    job = payload["jobs"][0]
    job_id = job["id"]
    delay = 0.004
    deadline = t0 + poll_timeout
    while job.get("status") not in _TERMINAL:
        if time.perf_counter() > deadline:
            stats.transport_errors += 1
            return
        await asyncio.sleep(delay)
        delay = min(delay * 1.6, 0.25)
        try:
            status, job = await client.request("GET", f"/jobs/{job_id}")
        except (ConnectionError, OSError):
            stats.transport_errors += 1
            return
        stats.code(status)
        if status != 200:
            return
    done_s = time.perf_counter() - t0
    if job.get("status") == "failed":
        stats.job_failures += 1
    if measured:
        stats.sample(kind, accept_s, done_s)


async def _run_schedule(host: str, port: int,
                        schedule: List[Tuple[str, dict]],
                        concurrency: int, stats: LoadStats,
                        measured: bool, poll_timeout: float) -> None:
    """Pull the schedule through ``concurrency`` keep-alive workers."""
    queue: asyncio.Queue = asyncio.Queue()
    for item in schedule:
        queue.put_nowait(item)

    async def worker() -> None:
        client = LoadClient(host, port)
        try:
            while True:
                try:
                    kind, spec = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await _drive_one(client, kind, spec, stats, measured,
                                 poll_timeout)
        finally:
            await client.close()

    workers = min(concurrency, len(schedule)) or 1
    await asyncio.gather(*(worker() for _ in range(workers)))


def build_schedule(warm_jobs: List[SimJob], cold_jobs: List[SimJob],
                   requests: int, mix: Tuple[int, int]
                   ) -> List[Tuple[str, dict]]:
    """Deterministic warm/cold interleaving of ``requests`` submissions.

    Warm submissions cycle the (already primed) warm corpus; cold
    submissions consume fresh perturbations in order.  The mix is
    reduced to smallest terms (80:20 → a 5-slot period of 4 warm then
    1 cold), so the ratio holds even for short runs.
    """
    warm_w, cold_w = mix
    divisor = math.gcd(warm_w, cold_w) or 1
    warm_w, cold_w = warm_w // divisor, cold_w // divisor
    period = warm_w + cold_w
    schedule: List[Tuple[str, dict]] = []
    warm_i = cold_i = 0
    for slot in range(requests):
        cold_turn = cold_w and (slot % period) >= warm_w
        if cold_turn and cold_i < len(cold_jobs):
            schedule.append(("cold", cold_jobs[cold_i].to_dict()))
            cold_i += 1
        elif warm_jobs:
            schedule.append(("warm", warm_jobs[warm_i % len(warm_jobs)]
                             .to_dict()))
            warm_i += 1
        elif cold_i < len(cold_jobs):
            schedule.append(("cold", cold_jobs[cold_i].to_dict()))
            cold_i += 1
    return schedule


def generate(url: str, warm_jobs: List[SimJob], cold_jobs: List[SimJob],
             requests: int = 200, concurrency: int = 32,
             mix: Tuple[int, int] = (80, 20),
             poll_timeout: float = 300.0,
             prime: bool = True) -> dict:
    """Run one load-generation session; returns the report dict."""
    parts = urlsplit(url if "//" in url else f"http://{url}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80

    prime_stats = LoadStats()
    if prime and warm_jobs:
        asyncio.run(_run_schedule(
            host, port, [("prime", j.to_dict()) for j in warm_jobs],
            concurrency, prime_stats, measured=False,
            poll_timeout=poll_timeout,
        ))

    stats = LoadStats()
    schedule = build_schedule(warm_jobs, cold_jobs, requests, mix)
    t0 = time.perf_counter()
    asyncio.run(_run_schedule(host, port, schedule, concurrency, stats,
                              measured=True, poll_timeout=poll_timeout))
    elapsed = time.perf_counter() - t0

    completed = sum(len(v) for v in stats.done.values())
    kinds = sorted(set(stats.accept) | set(stats.done))
    report = {
        "url": f"http://{host}:{port}",
        "requests": len(schedule),
        "concurrency": concurrency,
        "mix": {"warm": mix[0], "cold": mix[1]},
        "primed": len(warm_jobs) if prime else 0,
        "elapsed_seconds": round(elapsed, 6),
        "throughput_jobs_per_sec": round(
            completed / elapsed, 3) if elapsed > 0 else 0.0,
        "phases": {
            "submit_accept": {
                kind: summarize(stats.accept.get(kind, []))
                for kind in kinds
            },
            "submit_done": {
                kind: summarize(stats.done.get(kind, []))
                for kind in kinds
            },
        },
        "status_codes": {
            str(code): n for code, n in sorted(stats.status_codes.items())
        },
        "prime_status_codes": {
            str(code): n
            for code, n in sorted(prime_stats.status_codes.items())
        },
        "transport_errors": (
            stats.transport_errors + prime_stats.transport_errors
        ),
        "job_failures": stats.job_failures + prime_stats.job_failures,
        "ok": (
            stats.all_2xx and prime_stats.all_2xx
            and stats.job_failures + prime_stats.job_failures == 0
            and completed == len(schedule)
        ),
    }
    return report


def render(report: dict) -> str:
    """Human-readable summary of a load-generation report."""
    lines = [
        f"loadgen against {report['url']}: "
        f"{report['requests']} requests at concurrency "
        f"{report['concurrency']} "
        f"(mix warm:cold = {report['mix']['warm']}:{report['mix']['cold']}, "
        f"primed {report['primed']})",
        f"  throughput: {report['throughput_jobs_per_sec']} jobs/s "
        f"over {report['elapsed_seconds']}s",
    ]
    for phase in ("submit_accept", "submit_done"):
        for kind, summary in sorted(report["phases"][phase].items()):
            if not summary.get("count"):
                continue
            lines.append(
                f"  {phase:>13} {kind:<5} n={summary['count']:<5} "
                f"p50={summary['p50'] * 1e3:.1f}ms "
                f"p90={summary['p90'] * 1e3:.1f}ms "
                f"p99={summary['p99'] * 1e3:.1f}ms "
                f"max={summary['max'] * 1e3:.1f}ms"
            )
    codes = ", ".join(
        f"{code}:{n}" for code, n in report["status_codes"].items()
    )
    lines.append(
        f"  status codes: {codes or 'none'}; "
        f"transport errors: {report['transport_errors']}; "
        f"job failures: {report['job_failures']}"
    )
    lines.append(f"  verdict: {'OK' if report['ok'] else 'DEGRADED'}")
    return "\n".join(lines)
