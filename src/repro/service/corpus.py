"""Job corpora for the load generator and the service benchmarks.

Two sources of :class:`~repro.runner.jobs.SimJob` specs:

* :func:`figure_jobs` — the real reproduction workload: the exact
  configurations the figure drivers enumerate (the Figure 5/6 off-chip
  sweeps, the Figure 10 integration ladders), against the same
  :class:`~repro.runner.tracestore.TraceSpec` the drivers would use.
  Submitting these against a populated campaign cache is the *warm*
  half of a load-generator mix.

* :func:`perturbed_jobs` — an unbounded stream of distinct-by-hash
  jobs for the *cold* half.  Each perturbation varies the off-chip L2
  geometry over the paper's valid design points (256 KB-multiple
  capacities, power-of-two associativities) and tags the config label
  with its index, so every job has a unique content hash while all of
  them replay the **same single trace** — generating load never costs
  a second trace build, and per-job simulation cost stays flat no
  matter how many cold jobs a run asks for.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.machine import MachineConfig, cache_label
from repro.experiments.common import Settings, trace_spec
from repro.integrity.errors import ConfigError
from repro.params import MB
from repro.runner.jobs import SimJob

#: Figures the corpus can enumerate (driver-config sweeps).
CORPUS_FIGURES = ("fig5", "fig6", "fig10")

#: L2 capacities the cold perturbations cycle through — modest sizes
#: so cold-job simulation cost stays uniform (multiples of 256 KB,
#: all valid under the machine model's capacity rule).
_PERTURB_SIZES = tuple((MB // 4) * k for k in (1, 2, 3, 4, 5, 6, 8, 12))
_PERTURB_ASSOCS = (1, 2, 4, 8)


def _figure_configs(figure: str, settings: Settings):
    """(ncpus, labelled configs) for one figure id."""
    from repro.experiments.integration import ladder_configs
    from repro.experiments.offchip import sweep_configs

    if figure == "fig5":
        return [(1, sweep_configs(1, settings.scale))]
    if figure == "fig6":
        return [(8, sweep_configs(8, settings.scale))]
    if figure == "fig10":
        return [
            (1, ladder_configs(1, settings.scale)),
            (8, ladder_configs(8, settings.scale)),
        ]
    raise ConfigError(
        f"unknown corpus figure {figure!r}; "
        f"pick from {', '.join(CORPUS_FIGURES)}"
    )


def figure_jobs(figures: Sequence[str] = ("fig5",),
                settings: Optional[Settings] = None) -> List[SimJob]:
    """The figure-driver jobs for the given figure ids, quick-sized.

    These are byte-for-byte the jobs ``repro-oltp campaign`` runs for
    the same figures — same specs, same hashes — so a load generator
    pointed at a campaign cache directory gets genuine warm hits.
    """
    settings = settings or Settings.quick()
    jobs: List[SimJob] = []
    seen = set()
    for figure in figures:
        for ncpus, configs in _figure_configs(figure, settings):
            spec = trace_spec(ncpus, settings)
            for _, machine in configs:
                job = SimJob(spec=spec, machine=machine,
                             check=settings.check)
                job_hash = job.content_hash()
                if job_hash not in seen:  # fig10 ladders overlap fig5/6
                    seen.add(job_hash)
                    jobs.append(job)
    return jobs


def perturbed_jobs(count: int, settings: Optional[Settings] = None,
                   start: int = 0) -> List[SimJob]:
    """``count`` distinct-by-hash cold jobs sharing one trace.

    Perturbation ``i`` pairs an L2 capacity and associativity from the
    valid design grid and stamps ``i`` into the config label, which
    participates in the content hash — so the stream of distinct jobs
    is unbounded while every job replays the same uniprocessor trace
    at the same cost.  ``start`` offsets the index, letting successive
    load-generator runs draw non-overlapping cold corpora.
    """
    settings = settings or Settings.quick()
    spec = trace_spec(1, settings)
    jobs = []
    for i in range(start, start + count):
        size = _PERTURB_SIZES[i % len(_PERTURB_SIZES)]
        assoc = _PERTURB_ASSOCS[(i // len(_PERTURB_SIZES))
                                % len(_PERTURB_ASSOCS)]
        machine = MachineConfig.base(
            1, l2_size=size, l2_assoc=assoc, scale=settings.scale,
        ).with_(label=f"perturb-{i} {cache_label(size, assoc)}")
        jobs.append(SimJob(spec=spec, machine=machine,
                           check=settings.check))
    return jobs
