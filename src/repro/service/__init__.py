"""Campaign service mode: an always-on simulation job service.

This package promotes the batch campaign pipeline to a long-running
server: :class:`~repro.service.core.JobService` owns the bounded
queue, structural dedup, cache/journal warm paths and the supervised
worker pool; :mod:`repro.service.http` exposes it over a stdlib-only
HTTP/JSON API (``repro-oltp serve``); :mod:`repro.service.loadgen`
drives it with thousands of concurrent submissions
(``repro-oltp loadgen``); :mod:`repro.service.corpus` supplies the
warm (figure-driver) and cold (perturbed) job corpora both use.
"""

from repro.service.core import JobService, ServiceCounters
from repro.service.corpus import figure_jobs, perturbed_jobs
from repro.service.http import ServiceHTTPServer, run_server
from repro.service.state import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    JobEntry,
)

__all__ = [
    "JobService",
    "ServiceCounters",
    "ServiceHTTPServer",
    "run_server",
    "figure_jobs",
    "perturbed_jobs",
    "JobEntry",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "STATUS_DONE",
    "STATUS_FAILED",
]
