"""The service's HTTP/JSON API — stdlib only, keep-alive, threaded.

Endpoints (all JSON in, JSON out)::

    POST /jobs            submit one job spec, a list, or {"jobs": [...]}
                          → 200 {"count": N, "jobs": [<status>, ...]}
    GET  /jobs/<id>       → 200 <status>           (404 unknown)
    GET  /jobs/<id>/result→ 200 {"id", "label", "result": <RunResult>}
                            409 not finished, 410 failed, 404 unknown
    GET  /healthz         → 200 {"ok", "version", "uptime_seconds"}
    GET  /stats           → 200 queue/worker/cache/journal/resilience

A job spec is the wire form of :class:`~repro.runner.jobs.SimJob`
(``{"trace": {...}, "machine": {...}, "check": "off"}``); the returned
``id`` is its content hash, so ids are stable across restarts and
identical submissions share one id.  A spec of the form
``{"scenario": "<name>", ...}`` expands server-side into the named
scenario's integration-ladder jobs (optional ``scale``/``txns``/
``seed``/``check`` keys size them).

The error taxonomy crosses the wire as
``{"error": {"type": <ReproError class>, "message": ...}}`` with the
HTTP status carrying the retry semantics: **400** for a malformed or
invalid spec (:class:`~repro.integrity.errors.ConfigError` — do not
retry), **503** for backpressure
(:class:`~repro.integrity.errors.QueueFullError`) or drain
(:class:`~repro.integrity.errors.ServiceUnavailableError` — retry
later), **500** for anything unexpected.

Transport: ``http.server.ThreadingHTTPServer`` (one thread per
connection, HTTP/1.1 keep-alive, explicit ``Content-Length`` on every
response) — no dependencies beyond the standard library.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Optional
from urllib.parse import urlsplit

from repro.integrity.errors import (
    ConfigError,
    QueueFullError,
    ReproError,
    ServiceUnavailableError,
)
from repro.obs import current_metrics, current_tracer
from repro.runner.jobs import SimJob
from repro.service.core import JobService
from repro.service.state import STATUS_DONE, STATUS_FAILED

#: Largest request body accepted (a 10k-job batch is ~8 MB).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Largest number of job specs per POST.
MAX_BATCH_JOBS = 4096


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`JobService`."""

    daemon_threads = True
    # The default listen backlog (5) drops simultaneous connects from
    # a high-concurrency load generator on the floor, surfacing as
    # exactly-1 s SYN-retransmit latency spikes.
    request_queue_size = 256

    def __init__(self, address, service: JobService,
                 verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-oltp-service"
    # Headers and body go out as separate small writes; without
    # TCP_NODELAY, Nagle + delayed ACK turns every response into a
    # ~40 ms stall on loopback.
    disable_nagle_algorithm = True

    # -- plumbing --------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        metrics = current_metrics()
        metrics.count("service.http.requests")
        metrics.count(f"service.http.{code // 100}xx")

    def _send_error_json(self, code: int, exc: BaseException) -> None:
        self._send_json(code, {
            "error": {"type": type(exc).__name__, "message": str(exc)},
        })

    def _traced(self, handler) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            return self._dispatch(handler)
        t0 = time.perf_counter()
        try:
            self._dispatch(handler)
        finally:
            tracer.add_span(
                "service.request", t0, time.perf_counter() - t0,
                method=self.command, path=self.path,
            )

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except BrokenPipeError:  # client went away mid-response
            self.close_connection = True
        except ConfigError as exc:
            self._send_error_json(400, exc)
        except (QueueFullError, ServiceUnavailableError) as exc:
            self._send_error_json(503, exc)
        except ReproError as exc:
            self._send_error_json(500, exc)
        except Exception as exc:  # never leak a traceback over the wire
            self._send_error_json(500, exc)

    # -- routes ----------------------------------------------------------------

    def do_POST(self) -> None:
        self._traced(self._post)

    def do_GET(self) -> None:
        self._traced(self._get)

    def _post(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/jobs":
            self._send_json(404, {"error": {
                "type": "NotFound", "message": f"no such endpoint {path!r}",
            }})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise ConfigError("missing or invalid Content-Length") from None
        if length <= 0:
            raise ConfigError("POST /jobs needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ConfigError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ConfigError(f"request body is not JSON: {exc}") from None
        if isinstance(payload, dict) and "jobs" in payload:
            specs = payload["jobs"]
        elif isinstance(payload, list):
            specs = payload
        else:
            specs = [payload]
        if not isinstance(specs, list) or not specs:
            raise ConfigError("submit one job object or a non-empty list")
        if len(specs) > MAX_BATCH_JOBS:
            raise ConfigError(
                f"batch of {len(specs)} exceeds {MAX_BATCH_JOBS} jobs"
            )
        # Validate the whole batch before accepting any of it, so a 400
        # never leaves a partial submission behind.  A spec carrying a
        # "scenario" key expands server-side into that scenario's
        # ladder of ordinary jobs.
        from repro.scenario.registry import jobs_for_scenario_spec

        jobs = []
        for spec in specs:
            if isinstance(spec, dict) and "scenario" in spec:
                jobs.extend(jobs_for_scenario_spec(spec))
            else:
                jobs.append(SimJob.from_dict(spec))
        if len(jobs) > MAX_BATCH_JOBS:
            raise ConfigError(
                f"batch expands to {len(jobs)} jobs, exceeding "
                f"{MAX_BATCH_JOBS}"
            )
        entries = self.server.service.submit_many(jobs)
        self._send_json(200, {
            "count": len(entries),
            "jobs": [entry.status_dict() for entry in entries],
        })

    def _get(self) -> None:
        service = self.server.service
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/healthz":
            self._send_json(200, service.health())
            return
        if path == "/stats":
            self._send_json(200, service.stats())
            return
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "jobs" or len(parts) not in (2, 3):
            self._send_json(404, {"error": {
                "type": "NotFound", "message": f"no such endpoint {path!r}",
            }})
            return
        entry = service.get(parts[1])
        if entry is None:
            self._send_json(404, {"error": {
                "type": "UnknownJob",
                "message": f"no job with id {parts[1]!r}",
            }})
            return
        if len(parts) == 2:
            self._send_json(200, entry.status_dict())
            return
        if parts[2] != "result":
            self._send_json(404, {"error": {
                "type": "NotFound", "message": f"no such endpoint {path!r}",
            }})
            return
        if entry.status == STATUS_DONE:
            assert entry.result is not None
            self._send_json(200, {
                "id": entry.job_hash,
                "label": entry.job.label,
                "source": entry.source,
                "result": entry.result.to_dict(),
            })
        elif entry.status == STATUS_FAILED:
            self._send_json(410, {
                "id": entry.job_hash,
                "error": {
                    "type": "JobFailed",
                    "message": (entry.failure or {}).get(
                        "message", "job failed"),
                    **{k: v for k, v in (entry.failure or {}).items()
                       if k in ("kind", "attempts")},
                },
            })
        else:
            self._send_json(409, {
                "id": entry.job_hash,
                "status": entry.status,
                "error": {
                    "type": "NotFinished",
                    "message": f"job is {entry.status}; poll again",
                },
            })


def run_server(service: JobService, host: str = "127.0.0.1",
               port: int = 8077, *,
               drain_timeout: Optional[float] = 30.0,
               verbose: bool = False,
               stream: Optional[IO[str]] = None,
               stop_event: Optional[threading.Event] = None,
               install_signals: bool = True) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    Prints one machine-greppable line when the socket is bound
    (``service listening on http://host:port``) so wrappers can wait
    for readiness and discover an ephemeral ``--port 0``.  On the
    first SIGTERM or SIGINT the service stops accepting, finishes the
    queued and in-flight jobs (bounded by ``drain_timeout``), and the
    process exits 0 on a clean drain, 1 when the timeout forced it.
    """
    stream = stream if stream is not None else sys.stdout
    stop = stop_event or threading.Event()
    httpd = ServiceHTTPServer((host, port), service, verbose=verbose)
    service.start()

    if install_signals:
        def _request_stop(signum, frame):
            stop.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    serve_thread = threading.Thread(
        target=httpd.serve_forever, name="service-http", daemon=True,
        kwargs={"poll_interval": 0.1},
    )
    serve_thread.start()
    print(
        f"service listening on http://{host}:{httpd.port} "
        f"workers={service.workers} queue_limit={service.queue_limit}",
        file=stream, flush=True,
    )
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:  # pragma: no cover - signal handler path
        pass
    print("service draining (no new submissions)...", file=stream,
          flush=True)
    drained = service.close(drain=True, timeout=drain_timeout)
    httpd.shutdown()
    serve_thread.join(timeout=5.0)
    httpd.server_close()
    c = service.counters
    print(
        f"service summary: submitted={c.submitted} accepted={c.accepted} "
        f"simulated={c.simulated} cache_hits={c.cache_hits} "
        f"journal_hits={c.journal_hits} dedup_hits={c.dedup_hits} "
        f"failed={c.failed} recovered={c.recovered} "
        f"drained={'yes' if drained else 'TIMEOUT'}",
        file=stream, flush=True,
    )
    return 0 if drained else 1
