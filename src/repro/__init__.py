"""repro — reproduction of Barroso et al., "Impact of Chip-Level
Integration on Performance of OLTP Workloads" (HPCA 2000).

Public API quickstart::

    from repro import MachineConfig, build_trace, simulate

    trace = build_trace(ncpus=1, txns=500)
    base = simulate(MachineConfig.base(), trace)
    soc = simulate(MachineConfig.integrated_l2(), trace)
    print(soc.speedup_over(base))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.machine import MachineConfig, cache_label
from repro.core.results import RunResult
from repro.core.system import System, simulate
from repro.integrity import (
    Checker,
    CheckLevel,
    ConfigError,
    FaultKind,
    FaultPlan,
    InvariantViolation,
    ReproError,
    TraceFormatError,
    TraceMismatchError,
)
from repro.params import (
    IntegrationLevel,
    L2Technology,
    LatencyTable,
    MissKind,
    latencies,
)
from repro.trace.generator import OltpTrace, build_trace

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "cache_label",
    "RunResult",
    "System",
    "simulate",
    "IntegrationLevel",
    "L2Technology",
    "LatencyTable",
    "MissKind",
    "latencies",
    "OltpTrace",
    "build_trace",
    "Checker",
    "CheckLevel",
    "ConfigError",
    "FaultKind",
    "FaultPlan",
    "InvariantViolation",
    "ReproError",
    "TraceFormatError",
    "TraceMismatchError",
    "__version__",
]
