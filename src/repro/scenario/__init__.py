"""Scenario subsystem: composable workload mixes × machine topologies.

A *scenario* names one point in the two-axis space the paper's
single experiment occupies one corner of:

* :class:`~repro.scenario.workload.WorkloadSpec` — which transactions
  arrive (mix, skew, burstiness);
* :class:`~repro.scenario.topology.TopologySpec` — how far apart the
  nodes are (uniform ccNUMA, hardware islands, chiplet tables).

``repro.scenario.registry`` holds the named catalogue behind
``repro-oltp scenario list/describe/run``.

This package's ``__init__`` only pulls in the two spec modules —
they are dependency-free leaves that ``repro.core.machine`` imports.
The registry (which imports machines and trace specs) loads lazily
via module ``__getattr__`` so the import graph stays acyclic.
"""

from __future__ import annotations

from repro.scenario.topology import TOPOLOGY_KINDS, UNIFORM, TopologySpec
from repro.scenario.workload import (
    BASELINE_WORKLOAD,
    TXN_KINDS,
    WorkloadSpec,
    ZipfSampler,
)

__all__ = [
    "TOPOLOGY_KINDS",
    "TXN_KINDS",
    "UNIFORM",
    "BASELINE_WORKLOAD",
    "TopologySpec",
    "WorkloadSpec",
    "ZipfSampler",
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
]

_REGISTRY_EXPORTS = ("Scenario", "all_scenarios", "get_scenario",
                     "scenario_names", "describe_scenario")


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from repro.scenario import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
