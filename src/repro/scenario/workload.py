"""Workload-mix definitions: what transactions a scenario runs.

The paper measures exactly one workload — TPC-B, uniform account
choice, one transaction shape.  A :class:`WorkloadSpec` generalizes
that along the axes OLTP studies actually vary:

* **mix** — fractions of transaction kinds per arrival.  ``tpcb`` is
  the paper's read-modify-write banking transaction; ``balance`` is a
  read-only point query (TPC-C-style payment/balance inquiry);
  ``scan`` is a short read-only range scan (the analytics tail of a
  mixed workload).
* **skew** — Zipf(theta) account selection inside the chosen branch
  (theta 0 = uniform, the TPC-B rule).  Hot accounts concentrate on
  low row ids, so skew concentrates misses on a few blocks — the
  access-pattern axis that drives coherence traffic.
* **local_account_prob** — the TPC-B remote-account rule (0.85 in the
  spec); lowering it makes cross-branch (and on an MP, cross-node)
  traffic dominate.
* **burst** — arrival burstiness: the same server is dispatched
  ``burst`` consecutive transactions before the scheduler re-draws,
  modelling bursty arrivals / connection pools instead of the
  baseline's per-transaction uniform server draw.

The **baseline spec is draw-for-draw identical** to the pre-scenario
code: a single-kind mix consumes no mix draw, ``skew=0`` uses the
original ``randrange`` account draw, ``burst=1`` keeps the
per-transaction server draw — so baseline traces (and everything
downstream: goldens, job hashes' results, figure CSVs) are
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import random
from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.integrity.errors import ConfigError

#: Transaction kinds a mix may reference.
TXN_KINDS = ("tpcb", "balance", "scan")

#: TPC-B probability that the account belongs to the teller's branch
#: (kept in sync with :data:`repro.oltp.txn.LOCAL_ACCOUNT_PROB`; the
#: duplication avoids a scenario→oltp import edge).
DEFAULT_LOCAL_ACCOUNT_PROB = 0.85

#: Tolerance when checking that mix fractions sum to 1.
MIX_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class WorkloadSpec:
    """One named transaction-mix definition."""

    name: str = "tpcb"
    mix: Tuple[Tuple[str, float], ...] = (("tpcb", 1.0),)
    skew: float = 0.0
    local_account_prob: float = DEFAULT_LOCAL_ACCOUNT_PROB
    burst: int = 1

    def __post_init__(self):
        if not self.name or not str(self.name).strip():
            raise ConfigError("workload name must be a non-empty string")
        # Normalize wire payloads (lists of lists) into hashable tuples.
        object.__setattr__(
            self, "mix",
            tuple((str(k), float(f)) for k, f in self.mix))
        if not self.mix:
            raise ConfigError("workload mix must not be empty")
        seen = set()
        for kind, frac in self.mix:
            if kind not in TXN_KINDS:
                raise ConfigError(
                    f"unknown transaction kind {kind!r}; expected one of "
                    f"{TXN_KINDS}"
                )
            if kind in seen:
                raise ConfigError(f"transaction kind {kind!r} repeated in mix")
            seen.add(kind)
            if frac <= 0:
                raise ConfigError(
                    f"mix fraction for {kind!r} must be positive, got {frac}"
                )
        total = sum(frac for _, frac in self.mix)
        if abs(total - 1.0) > MIX_SUM_TOLERANCE:
            raise ConfigError(
                f"mix fractions must sum to 1, got {total!r}"
            )
        if self.skew < 0:
            raise ConfigError("skew (Zipf theta) must be non-negative")
        if not 0 < self.local_account_prob <= 1:
            raise ConfigError("local_account_prob must be in (0, 1]")
        if self.burst < 1:
            raise ConfigError("burst must be at least 1")

    # -- queries -------------------------------------------------------------

    @property
    def is_baseline(self) -> bool:
        """True when generation is draw-for-draw the paper's TPC-B."""
        return (
            self.mix == (("tpcb", 1.0),)
            and self.skew == 0.0
            and self.local_account_prob == DEFAULT_LOCAL_ACCOUNT_PROB
            and self.burst == 1
        )

    def fraction(self, kind: str) -> float:
        for k, frac in self.mix:
            if k == kind:
                return frac
        return 0.0

    def draw_kind(self, rng: random.Random) -> str:
        """Draw a transaction kind; single-kind mixes consume no draw
        (the baseline draw-sequence contract)."""
        if len(self.mix) == 1:
            return self.mix[0][0]
        r = rng.random()
        acc = 0.0
        for kind, frac in self.mix:
            acc += frac
            if r < acc:
                return kind
        return self.mix[-1][0]

    @property
    def tag(self) -> str:
        """Short filesystem/cache-key-safe identity; empty for the
        baseline so existing trace-archive keys stay unchanged."""
        if self.is_baseline:
            return ""
        digest = hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True,
                       separators=(",", ":")).encode()
        ).hexdigest()[:8]
        slug = "".join(c if c.isalnum() else "-" for c in self.name)
        return f"{slug}-{digest}"

    def summary(self) -> str:
        """One-line human description for ``scenario describe``."""
        mix = "+".join(f"{int(round(frac * 100))}%{kind}"
                       for kind, frac in self.mix)
        parts = [mix]
        if self.skew:
            parts.append(f"zipfθ={self.skew:g}")
        if self.local_account_prob != DEFAULT_LOCAL_ACCOUNT_PROB:
            parts.append(f"local={self.local_account_prob:g}")
        if self.burst > 1:
            parts.append(f"burst={self.burst}")
        return ", ".join(parts)

    # -- serialization (trace meta + job hashing; exact round trip) ----------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "mix": [[kind, frac] for kind, frac in self.mix],
            "skew": self.skew,
            "local_account_prob": self.local_account_prob,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(
            name=data["name"],
            mix=tuple((k, f) for k, f in data["mix"]),
            skew=data.get("skew", 0.0),
            local_account_prob=data.get(
                "local_account_prob", DEFAULT_LOCAL_ACCOUNT_PROB),
            burst=data.get("burst", 1),
        )


#: Shared default instance — the paper's workload.
BASELINE_WORKLOAD = WorkloadSpec()


@lru_cache(maxsize=64)
def _zipf_cdf(n: int, theta: float) -> Tuple[float, ...]:
    """Cumulative Zipf(theta) distribution over ranks 0..n-1.

    Pure-python and deterministic (no float ordering surprises: the
    sum is accumulated left to right), so two processes building the
    same workload sample identically.
    """
    weights = [1.0 / (k + 1) ** theta for k in range(n)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    cdf[-1] = 1.0
    return tuple(cdf)


class ZipfSampler:
    """Seed-deterministic Zipf(theta) rank sampler over ``n`` items.

    Rank 0 is the hottest item.  One uniform draw per sample
    (inverse-CDF via bisection), so the consumed rng sequence is
    exactly one ``random()`` call per transaction.
    """

    def __init__(self, n: int, theta: float):
        if n < 1:
            raise ConfigError("ZipfSampler needs at least one item")
        if theta < 0:
            raise ConfigError("Zipf theta must be non-negative")
        self.n = n
        self.theta = theta
        self._cdf = _zipf_cdf(n, theta) if theta > 0 else None

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        if self._cdf is None:
            return int(u * self.n)
        return bisect_right(self._cdf, u)

    def expected_fraction(self, rank: int) -> float:
        """Theoretical probability mass of ``rank`` (tests)."""
        if self._cdf is None:
            return 1.0 / self.n
        lo = self._cdf[rank - 1] if rank else 0.0
        return self._cdf[rank] - lo
