"""Inter-node topology models: where the paper's uniform ccNUMA ends.

The paper folds all interconnect structure into the per-class
latencies of Figure 3 — every remote node is equally far away.  A
:class:`TopologySpec` keeps that as the ``uniform`` default while
letting a scenario describe machines where distance matters:

* ``uniform`` — today's flat ccNUMA; every remote hop costs the same.
  Bit-identical to the pre-topology code path by construction.
* ``islands`` — "hardware islands" (OLTP on Hardware Islands,
  PAPERS.md): nodes are grouped into symmetric islands with fast
  intra-island links; crossing islands adds a fixed per-hop penalty.
* ``chiplet`` — chiplet/3D-stacked packages (Simulation-Driven
  Evaluation of Chiplet-Based Architectures, PAPERS.md): the one-way
  extra cost is a table indexed by inter-node distance, so near
  chiplets are cheap and far ones grow linearly (or however the table
  says).

A spec also owns the *base* latency table resolution: when
``base_table`` is set it replaces the Figure-3 lookup outright — this
is the one latency-override path, used by the latency-sensitivity
ablation (the old ``MachineConfig.latency_override`` special case).

Extras are *one-way* cycle counts between two nodes;
:meth:`hop_extra` is symmetric and zero on the diagonal.  The
interconnect model composes them per protocol hop: 2-hop misses pay
the requester↔home round trip, 3-hop misses pay the
requester→home→owner→requester triangle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple

from repro.integrity.errors import ConfigError
from repro.params import LatencyTable

#: The recognised topology kinds.
TOPOLOGY_KINDS = ("uniform", "islands", "chiplet")


@dataclass(frozen=True)
class TopologySpec:
    """Inter-node distance model plus optional base-table override."""

    kind: str = "uniform"
    #: ``islands``: nodes per island (consecutive node ids).
    group_size: int = 1
    #: ``islands``: one-way extra cycles for an island-crossing hop.
    island_extra: int = 0
    #: ``chiplet``: one-way extra cycles by inter-node distance;
    #: entry 0 (distance 0) must be 0, distances past the end clamp
    #: to the last entry.
    distance_extra: Tuple[int, ...] = ()
    #: When set, replaces the Figure-3 base table entirely (the
    #: latency-sensitivity ablation hook).
    base_table: Optional[LatencyTable] = None

    def __post_init__(self):
        if self.kind not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{TOPOLOGY_KINDS}"
            )
        if self.kind == "islands":
            if self.group_size < 1:
                raise ConfigError("islands topology needs group_size >= 1")
            if self.island_extra < 0:
                raise ConfigError("island_extra must be non-negative")
        if self.kind == "chiplet":
            if not self.distance_extra:
                raise ConfigError(
                    "chiplet topology needs a non-empty distance_extra table"
                )
            if self.distance_extra[0] != 0:
                raise ConfigError(
                    "distance_extra[0] is the same-node distance and must be 0"
                )
            if any(x < 0 for x in self.distance_extra):
                raise ConfigError("distance_extra entries must be non-negative")
        if not isinstance(self.distance_extra, tuple):
            # Tolerate list input (wire payloads); normalize to a tuple
            # so the spec stays hashable.
            object.__setattr__(self, "distance_extra",
                               tuple(self.distance_extra))

    # -- structure queries ---------------------------------------------------

    @property
    def is_flat(self) -> bool:
        """True when every remote hop costs the same as today —
        the engines' uniform fast paths stay exactly valid."""
        if self.kind == "islands":
            return self.island_extra == 0
        if self.kind == "chiplet":
            return all(x == 0 for x in self.distance_extra)
        return True

    def validate_for(self, num_nodes: int) -> None:
        """Check the spec fits a machine with ``num_nodes`` nodes."""
        if self.kind == "islands" and num_nodes % self.group_size:
            raise ConfigError(
                f"islands topology with group_size={self.group_size} does "
                f"not tile {num_nodes} nodes evenly"
            )

    def hop_extra(self, a: int, b: int) -> int:
        """One-way extra cycles for a message from node ``a`` to ``b``."""
        if a == b:
            return 0
        if self.kind == "islands":
            if a // self.group_size != b // self.group_size:
                return self.island_extra
            return 0
        if self.kind == "chiplet":
            dist = min(abs(a - b), len(self.distance_extra) - 1)
            return self.distance_extra[dist]
        return 0

    def summary(self) -> str:
        """One-line human description for ``scenario describe``."""
        if self.kind == "islands":
            return (f"hardware islands of {self.group_size} nodes, "
                    f"+{self.island_extra} cycles/hop across islands")
        if self.kind == "chiplet":
            table = ",".join(str(x) for x in self.distance_extra)
            return f"chiplet package, per-distance extras [{table}]"
        return "uniform ccNUMA (paper Figure 3)"

    # -- serialization (job hashing; exact round trip) -----------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "group_size": self.group_size,
            "island_extra": self.island_extra,
            "distance_extra": list(self.distance_extra),
            "base_table": (
                None if self.base_table is None else asdict(self.base_table)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        table = data.get("base_table")
        return cls(
            kind=data.get("kind", "uniform"),
            group_size=data.get("group_size", 1),
            island_extra=data.get("island_extra", 0),
            distance_extra=tuple(data.get("distance_extra") or ()),
            base_table=None if table is None else LatencyTable(**table),
        )

    # -- factories -----------------------------------------------------------

    @classmethod
    def uniform(cls, base_table: Optional[LatencyTable] = None) -> "TopologySpec":
        """Today's flat ccNUMA; ``base_table`` overrides Figure 3."""
        return cls(base_table=base_table)

    @classmethod
    def islands(cls, group_size: int, island_extra: int) -> "TopologySpec":
        """Symmetric node groups with an inter-island hop penalty."""
        return cls(kind="islands", group_size=group_size,
                   island_extra=island_extra)

    @classmethod
    def chiplet(cls, distance_extra: Tuple[int, ...]) -> "TopologySpec":
        """Per-distance extra-latency table (chiplet/3D packages)."""
        return cls(kind="chiplet", distance_extra=tuple(distance_extra))


#: Shared default instance — the paper's machine.
UNIFORM = TopologySpec()
