"""The scenario registry: named workload × topology design points.

A :class:`Scenario` binds a :class:`~repro.scenario.workload.WorkloadSpec`
to a :class:`~repro.scenario.topology.TopologySpec` and a processor
count, and names the combination.  The name is the only handle users
need: ``repro-oltp scenario run zipf-uni`` runs it, ``repro-oltp
campaign islands-mp8`` schedules it through the cached campaign
runner, and a service submission of ``{"scenario": "bursty-mp8"}``
expands to the same jobs server-side.

Every scenario resolves to the *integration ladder* the paper sweeps —
the Base off-chip design, the on-chip L2+MC midpoint, and the fully
integrated chip — all replaying the scenario's single trace.  Job
identity flows entirely through the ordinary content-hash machinery
(the workload rides in the trace payload, the topology in the machine
payload), so scenario results cache and deduplicate exactly like
figure results, with stable hashes across processes.

``tpcb-uni`` / ``tpcb-mp8`` are the paper's own baseline points: their
workload tag is empty and their topology is flat, so they hash and
replay bit-identically to the pre-scenario figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.integrity.errors import ConfigError
from repro.scenario.topology import UNIFORM, TopologySpec
from repro.scenario.workload import BASELINE_WORKLOAD, WorkloadSpec

#: Default per-run transaction counts for service-side expansion and
#: other callers with no Settings in hand; mirror ``Settings.quick()``
#: (the service corpus default) so ad-hoc submissions stay cheap.
QUICK_SCALE = 64
QUICK_UNI_TXNS = 120
QUICK_MP_TXNS = 320
DEFAULT_SEED = 7


@dataclass(frozen=True)
class Scenario:
    """One named, serializable workload × topology design point."""

    name: str
    description: str
    ncpus: int = 1
    workload: WorkloadSpec = BASELINE_WORKLOAD
    topology: TopologySpec = UNIFORM
    #: Logical RAC bytes added to the fully integrated rung (0 = none);
    #: only meaningful for multiprocessor scenarios.
    rac_bytes: int = 0

    def __post_init__(self):
        if not self.name or not str(self.name).strip():
            raise ConfigError("scenario name must be a non-empty string")
        if not isinstance(self.workload, WorkloadSpec):
            raise ConfigError(
                f"scenario workload must be a WorkloadSpec, got "
                f"{type(self.workload).__name__}"
            )
        if not isinstance(self.topology, TopologySpec):
            raise ConfigError(
                f"scenario topology must be a TopologySpec, got "
                f"{type(self.topology).__name__}"
            )
        if self.ncpus < 1:
            raise ConfigError("scenario ncpus must be at least 1")
        if self.rac_bytes < 0:
            raise ConfigError("scenario rac_bytes must be non-negative")
        if self.rac_bytes and self.ncpus == 1:
            raise ConfigError("a RAC only makes sense in a multiprocessor")
        # The ladder runs one core per node, so nodes == ncpus here.
        self.topology.validate_for(self.ncpus)

    # -- materialization -------------------------------------------------------

    def machines(self, scale: int) -> List[Tuple[str, "object"]]:
        """The scenario's integration ladder as ``(label, machine)`` rows.

        Base off-chip → on-chip L2+MC → fully integrated (plus a RAC
        variant when the scenario carries one), every rung on the
        scenario's topology.
        """
        from repro.core.machine import MachineConfig

        rungs = [
            MachineConfig.base(self.ncpus, scale=scale),
            MachineConfig.integrated_l2_mc(self.ncpus, scale=scale),
            MachineConfig.fully_integrated(self.ncpus, scale=scale),
        ]
        if self.rac_bytes:
            rungs.append(MachineConfig.fully_integrated(
                self.ncpus, scale=scale, rac_size=self.rac_bytes))
        rungs = [m.with_(topology=self.topology) for m in rungs]
        return [(m.label, m) for m in rungs]

    def trace_spec(self, *, scale: int = QUICK_SCALE,
                   txns: Optional[int] = None,
                   seed: int = DEFAULT_SEED) -> "object":
        """The scenario's workload trace as a cacheable TraceSpec."""
        from repro.runner.tracestore import TraceSpec

        if txns is None:
            txns = QUICK_UNI_TXNS if self.ncpus == 1 else QUICK_MP_TXNS
        return TraceSpec(ncpus=self.ncpus, scale=scale, txns=txns,
                         seed=seed, workload=self.workload)

    def jobs(self, *, scale: int = QUICK_SCALE, txns: Optional[int] = None,
             seed: int = DEFAULT_SEED, check: str = "off") -> List["object"]:
        """The scenario's ladder as content-addressed simulation jobs."""
        from repro.runner.jobs import SimJob

        spec = self.trace_spec(scale=scale, txns=txns, seed=seed)
        return [SimJob(spec=spec, machine=machine, check=check)
                for _, machine in self.machines(scale)]

    def summary(self) -> str:
        """One-line shape summary for listings."""
        return (f"{self.ncpus} cpu{'s' if self.ncpus > 1 else ''}, "
                f"{self.workload.summary()}, {self.topology.summary()}")

    # -- serialization (exact round trip) --------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "ncpus": self.ncpus,
            "workload": self.workload.to_dict(),
            "topology": self.topology.to_dict(),
            "rac_bytes": self.rac_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        try:
            return cls(
                name=data["name"],
                description=data.get("description", ""),
                ncpus=int(data.get("ncpus", 1)),
                workload=(
                    BASELINE_WORKLOAD if data.get("workload") is None
                    else WorkloadSpec.from_dict(data["workload"])
                ),
                topology=(
                    UNIFORM if data.get("topology") is None
                    else TopologySpec.from_dict(data["topology"])
                ),
                rac_bytes=int(data.get("rac_bytes", 0)),
            )
        except ConfigError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed scenario spec: {exc}") from None


# -- registry ------------------------------------------------------------------

_SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry; duplicate names are an error."""
    if scenario.name in _SCENARIOS:
        raise ConfigError(f"scenario {scenario.name!r} is already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> Tuple[str, ...]:
    """Every registered scenario name, in registration order."""
    return tuple(_SCENARIOS)


def all_scenarios() -> Tuple[Scenario, ...]:
    return tuple(_SCENARIOS.values())


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name.

    Unknown names fail fast with a :class:`ConfigError` that lists the
    registered names, so a typo in a CLI target or a service submission
    surfaces the full menu instead of a bare key error.
    """
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        known = ", ".join(scenario_names())
        raise ConfigError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        )
    return scenario


def describe_scenario(name: str) -> str:
    """Multi-line human description of one scenario."""
    scenario = get_scenario(name)
    lines = [
        f"scenario {scenario.name}: {scenario.description}",
        f"  processors: {scenario.ncpus}",
        f"  workload:   {scenario.workload.summary()}",
        f"  topology:   {scenario.topology.summary()}",
        "  ladder:",
    ]
    for label, _ in scenario.machines(scale=QUICK_SCALE):
        lines.append(f"    - {label}")
    return "\n".join(lines)


def jobs_for_scenario_spec(spec: dict) -> List["object"]:
    """Expand a service-side ``{"scenario": name, ...}`` submission.

    Optional keys ``scale``, ``txns``, ``seed`` and ``check`` size the
    run (defaults mirror the quick service corpus).  Every malformed
    field maps to :class:`ConfigError` so the HTTP layer can answer 400
    without accepting any of the batch.
    """
    name = spec.get("scenario")
    if not isinstance(name, str):
        raise ConfigError("scenario spec needs a string 'scenario' name")
    scenario = get_scenario(name)
    try:
        scale = int(spec.get("scale", QUICK_SCALE))
        txns = None if spec.get("txns") is None else int(spec["txns"])
        seed = int(spec.get("seed", DEFAULT_SEED))
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"malformed scenario spec: {exc}") from None
    check = spec.get("check", "off")
    try:
        return scenario.jobs(scale=scale, txns=txns, seed=seed, check=check)
    except ValueError as exc:  # SimJob rejects unknown check levels
        raise ConfigError(str(exc)) from None


# -- built-in scenarios --------------------------------------------------------

#: Logical bytes of the paper's 8 MB remote access cache.
_RAC_8MB = 8 * 1024 * 1024

register(Scenario(
    "tpcb-uni",
    "paper baseline: uniform TPC-B on one processor",
))
register(Scenario(
    "tpcb-mp8",
    "paper baseline: uniform TPC-B on the 8-CPU flat ccNUMA",
    ncpus=8,
))
register(Scenario(
    "zipf-uni",
    "Zipf-skewed account accesses (theta=0.8) on one processor",
    workload=WorkloadSpec(name="zipf", skew=0.8),
))
register(Scenario(
    "islands-mp8",
    "hardware islands: 8 nodes in two 4-node groups, +120 cycles "
    "across the group boundary",
    ncpus=8,
    topology=TopologySpec.islands(group_size=4, island_extra=120),
))
register(Scenario(
    "tpcc-mix-mp8",
    "TPC-C-style mix (50% tpcb updates, 38% balance lookups, "
    "12% scans) on 8 CPUs",
    ncpus=8,
    workload=WorkloadSpec(
        name="tpcc-mix",
        mix=(("tpcb", 0.5), ("balance", 0.38), ("scan", 0.12)),
    ),
))
register(Scenario(
    "read-heavy-uni",
    "read-heavy mix (70% balance lookups, 30% scans) on one processor",
    workload=WorkloadSpec(
        name="read-heavy",
        mix=(("balance", 0.7), ("scan", 0.3)),
    ),
))
register(Scenario(
    "bursty-mp8",
    "bursty arrivals: each server runs 4-transaction bursts on 8 CPUs",
    ncpus=8,
    workload=WorkloadSpec(name="bursty", burst=4),
))
register(Scenario(
    "chiplet-mp8",
    "chiplet latency table: +60 cycles one hop out, +140 beyond, "
    "with the paper's 8 MB RAC rung",
    ncpus=8,
    topology=TopologySpec.chiplet(distance_extra=(0, 60, 140)),
    rac_bytes=_RAC_8MB,
))
