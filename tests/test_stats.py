"""Tests for the measurement containers in repro.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.params import MissKind
from repro.stats.breakdown import (
    ExecutionBreakdown,
    L1Stats,
    MissBreakdown,
    ProtocolStats,
    RacStats,
)


class TestExecutionBreakdown:
    def test_totals(self):
        b = ExecutionBreakdown(busy=10, l2_hit=20, local_stall=30,
                               remote_clean_stall=15, remote_dirty_stall=25)
        assert b.remote_stall == 40
        assert b.total == 100
        assert b.cpu_utilization == 0.1

    def test_empty_utilization(self):
        assert ExecutionBreakdown().cpu_utilization == 0.0

    def test_add(self):
        a = ExecutionBreakdown(busy=1, kernel_busy=1, l2_hit=2)
        a.add(ExecutionBreakdown(busy=3, local_stall=4))
        assert a.busy == 4 and a.l2_hit == 2 and a.local_stall == 4

    def test_normalized_to(self):
        b = ExecutionBreakdown(busy=50, l2_hit=150)
        n = b.normalized_to(400)
        assert n.busy == 12.5 and n.l2_hit == 37.5
        assert n.total == 50

    def test_normalized_rejects_zero(self):
        with pytest.raises(ValueError):
            ExecutionBreakdown().normalized_to(0)

    def test_as_dict(self):
        d = ExecutionBreakdown(busy=1, l2_hit=2, local_stall=3,
                               remote_dirty_stall=4).as_dict()
        assert d == {"CPU": 1, "L2Hit": 2, "LocStall": 3, "RemStall": 4, "total": 10}


class TestMissBreakdown:
    def test_record_all_kinds(self):
        m = MissBreakdown()
        m.record(MissKind.LOCAL, True)
        m.record(MissKind.REMOTE_CLEAN, True)
        m.record(MissKind.LOCAL, False)
        m.record(MissKind.REMOTE_CLEAN, False)
        m.record(MissKind.REMOTE_DIRTY, False)
        assert m.i_local == 1 and m.i_remote == 1
        assert m.d_local == 1 and m.d_remote_clean == 1 and m.d_remote_dirty == 1
        assert m.instruction == 2 and m.data == 3 and m.total == 5
        assert m.remote == 3

    def test_instruction_dirty_folds_into_remote(self):
        m = MissBreakdown()
        m.record(MissKind.REMOTE_DIRTY, True)
        assert m.i_remote == 1

    def test_dirty_share(self):
        m = MissBreakdown(d_remote_dirty=3, d_local=1)
        assert m.dirty_share == 0.75
        assert MissBreakdown().dirty_share == 0.0

    def test_normalized(self):
        m = MissBreakdown(i_local=5, d_remote_dirty=15)
        n = m.normalized_to(40)
        assert n["I-Loc"] == 12.5 and n["D-RemDirty"] == 37.5 and n["total"] == 50

    def test_normalized_rejects_zero(self):
        with pytest.raises(ValueError):
            MissBreakdown().normalized_to(0)

    def test_add(self):
        a = MissBreakdown(i_local=1)
        a.add(MissBreakdown(i_local=2, d_local=3))
        assert a.i_local == 3 and a.d_local == 3

    @given(st.lists(st.tuples(
        st.sampled_from(list(MissKind)), st.booleans()), max_size=100))
    def test_total_equals_records(self, events):
        m = MissBreakdown()
        for kind, instr in events:
            m.record(kind, instr)
        assert m.total == len(events)
        assert m.instruction + m.data == m.total


class TestSmallStats:
    def test_protocol_invalidations_per_write(self):
        p = ProtocolStats(invalidations=5, writes=20)
        assert p.invalidations_per_write == 0.25
        assert ProtocolStats().invalidations_per_write == 0.0

    def test_rac_hit_rate(self):
        r = RacStats(probes=10, hits=3)
        assert r.hit_rate == 0.3
        assert RacStats().hit_rate == 0.0

    def test_l1_miss_rates(self):
        l1 = L1Stats(i_refs=100, i_misses=25, d_refs=50, d_misses=10)
        assert l1.i_miss_rate == 0.25
        assert l1.d_miss_rate == 0.2
        assert L1Stats().i_miss_rate == 0.0
        assert L1Stats().d_miss_rate == 0.0
