"""Shared fixtures: tiny traces and machines sized for fast tests."""

from __future__ import annotations

import pytest

from repro.core.machine import MachineConfig
from repro.oltp.config import WorkloadConfig
from repro.trace.generator import build_trace

#: Scale used throughout the test suite: small enough that a full
#: engine+simulator round trip takes well under a second.
TEST_SCALE = 128


@pytest.fixture(scope="session")
def uni_trace():
    """A small uniprocessor OLTP trace shared by read-only tests."""
    return build_trace(ncpus=1, scale=TEST_SCALE, txns=60, warmup_txns=30, seed=11)


@pytest.fixture(scope="session")
def mp_trace():
    """A small 4-CPU OLTP trace shared by read-only tests."""
    return build_trace(ncpus=4, scale=TEST_SCALE, txns=160, warmup_txns=64, seed=11)


@pytest.fixture(scope="session")
def mp8_trace():
    """A small 8-CPU OLTP trace (the paper's MP size)."""
    return build_trace(ncpus=8, scale=TEST_SCALE, txns=240, warmup_txns=96, seed=11)


@pytest.fixture
def small_config():
    """Workload config at test scale (uniprocessor)."""
    return WorkloadConfig.build(ncpus=1, scale=TEST_SCALE, seed=11)


@pytest.fixture
def mp_config():
    return WorkloadConfig.build(ncpus=4, scale=TEST_SCALE, seed=11)


def test_machine(ncpus: int = 1, **kwargs) -> MachineConfig:
    """A Base machine at test scale with overridable fields."""
    kwargs.setdefault("scale", TEST_SCALE)
    return MachineConfig.base(ncpus, **kwargs)
