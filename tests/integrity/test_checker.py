"""The invariant checker: level coercion, clean runs, and detection."""

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import System, simulate
from repro.integrity import CheckLevel, Checker, ConfigError, InvariantViolation
from repro.trace.generator import build_trace
from repro.trace.synthetic import make_trace, sweep_refs


@pytest.fixture(scope="module")
def mp_trace():
    return build_trace(ncpus=4, scale=256, txns=40, warmup_txns=10, seed=11)


class TestCheckLevel:
    def test_coerce_strings(self):
        assert CheckLevel.coerce("off") is CheckLevel.OFF
        assert CheckLevel.coerce("end-of-run") is CheckLevel.END_OF_RUN
        assert CheckLevel.coerce("per-quantum") is CheckLevel.PER_QUANTUM

    def test_coerce_underscores(self):
        assert CheckLevel.coerce("per_quantum") is CheckLevel.PER_QUANTUM

    def test_coerce_enum_passthrough(self):
        assert CheckLevel.coerce(CheckLevel.END_OF_RUN) is CheckLevel.END_OF_RUN

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigError):
            CheckLevel.coerce("sometimes")

    def test_flags(self):
        assert not Checker("off").enabled
        assert Checker("end-of-run").enabled
        assert not Checker("end-of-run").per_quantum
        assert Checker("per-quantum").per_quantum


class TestCleanRuns:
    @pytest.mark.parametrize("level", ["end-of-run", "per-quantum"])
    def test_multiprocessor_clean(self, mp_trace, level):
        machine = MachineConfig.fully_integrated(4, scale=256)
        result = simulate(machine, mp_trace, check=level)
        assert result.trace_refs > 0

    def test_uniprocessor_clean(self, mp_trace):
        trace = build_trace(ncpus=1, scale=256, txns=25, seed=11)
        simulate(MachineConfig.base(1, scale=256), trace, check="per-quantum")

    def test_rac_and_victim_clean(self, mp_trace):
        machine = MachineConfig.fully_integrated(
            4, scale=256, rac_size=64 * 1024, victim_entries=8
        )
        simulate(machine, mp_trace, check="per-quantum")

    def test_checks_run_counted(self, mp_trace):
        system = System(MachineConfig.base(4, scale=256), check="per-quantum")
        system.run(mp_trace)
        # One check per quantum plus the end-of-run check.
        assert system.checker.checks_run == len(mp_trace.quanta) + 1

    def test_off_runs_no_checks(self, mp_trace):
        system = System(MachineConfig.base(4, scale=256), check="off")
        system.run(mp_trace)
        assert system.checker.checks_run == 0


class TestDetection:
    """Hand-planted corruption is found by a direct check_system call."""

    def _ran_system(self):
        machine = MachineConfig.base(2, l2_size=8192, l2_assoc=2, scale=1)
        trace = make_trace(
            2,
            [(0, sweep_refs(0, 64)), (1, sweep_refs(64, 64)),
             (0, sweep_refs(0, 64, write=True))],
            page_bytes=256,
        )
        system = System(machine, check="end-of-run")
        system.run(trace)
        return system

    def test_inclusion_violation_found(self):
        system = self._ran_system()
        node = system.nodes[0]
        l2_lines = set(node.l2.resident_lines())
        missing = max(l2_lines) + 1
        node.l1ds[0].fill(missing)
        with pytest.raises(InvariantViolation) as exc_info:
            system.checker.check_system(system, system.protocol)
        assert exc_info.value.invariant == "l1-l2-inclusion"
        assert exc_info.value.node == 0

    def test_overfull_set_found(self):
        system = self._ran_system()
        l2 = system.nodes[1].l2
        target = next(i for i, ways in enumerate(l2._sets) if ways)
        line = l2._sets[target][0]
        l2._sets[target].extend(line + l2.num_sets * (k + 1) for k in range(3))
        with pytest.raises(InvariantViolation) as exc_info:
            system.checker.check_system(system, system.protocol)
        assert exc_info.value.invariant in ("set-occupancy",
                                            "directory-missing-copy")

    def test_dirty_nonresident_found(self):
        system = self._ran_system()
        l2 = system.nodes[0].l2
        target = next(i for i, ways in enumerate(l2._sets) if ways)
        ghost = l2._sets[target][0] + l2.num_sets * 64
        l2._dirty[target].add(ghost)
        with pytest.raises(InvariantViolation) as exc_info:
            system.checker.check_system(system, system.protocol)
        assert exc_info.value.invariant == "dirty-not-resident"
