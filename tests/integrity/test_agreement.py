"""Property test: fast and general loops agree *and* stay invariant-clean.

The two replay loops are the highest-risk duplication in the codebase.
Running both under per-quantum checking on randomized traces asserts
not just equal statistics (the metamorphic tests do that) but that
every intermediate machine state both loops pass through is legal.
"""

import random

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import System
from repro.cpu.events import encode
from repro.trace.synthetic import make_trace


def _random_trace(seed, ncpus=4):
    rng = random.Random(seed)
    body = []
    for _ in range(80):
        refs = []
        for _ in range(rng.randint(1, 35)):
            instr = rng.random() < 0.35
            refs.append(encode(
                rng.randrange(500),
                write=not instr and rng.random() < 0.4,
                instr=instr,
                kernel=rng.random() < 0.25,
            ))
        body.append((rng.randrange(ncpus), refs))
    return make_trace(ncpus, body, page_bytes=256,
                      warmup_quanta=rng.randrange(20))


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_loops_agree_under_per_quantum_checking(seed):
    machine = MachineConfig.base(4, l2_size=8192, l2_assoc=2, scale=1)
    fast_sys = System(machine, check="per-quantum")
    fast = fast_sys.run(_random_trace(seed))
    general_sys = System(machine, force_general=True, check="per-quantum")
    general = general_sys.run(_random_trace(seed))

    assert fast_sys.checker.checks_run > 1
    assert general_sys.checker.checks_run == fast_sys.checker.checks_run
    assert fast.breakdown.total == general.breakdown.total
    assert fast.misses.as_dict() == general.misses.as_dict()
    assert fast.l1.i_refs == general.l1.i_refs
    assert fast.l1.d_refs == general.l1.d_refs
    assert fast.l2_hits == general.l2_hits
    assert fast.trace_refs == general.trace_refs


@pytest.mark.parametrize("seed", [11, 12])
def test_uniprocessor_agreement(seed):
    machine = MachineConfig.integrated_l2_mc(l2_size=16384, l2_assoc=4, scale=1)
    fast = System(machine, check="per-quantum").run(_random_trace(seed, ncpus=1))
    general = System(machine, force_general=True,
                     check="per-quantum").run(_random_trace(seed, ncpus=1))
    assert fast.breakdown.total == general.breakdown.total
    assert fast.misses.as_dict() == general.misses.as_dict()
