"""SelftestReport: structured checks and the machine-readable dict."""

from __future__ import annotations

import json

from repro.integrity.selftest import SelftestReport


def sample_report() -> SelftestReport:
    report = SelftestReport()
    report.section("trace generation:")
    report.ok("trace builds")
    report.ok("checksums stable")
    report.section("coherence:")
    report.fail("dirty line count drifted")
    return report


class TestChecks:
    def test_checks_mirror_lines_with_sections(self):
        report = sample_report()
        assert report.checks == [
            {"section": "trace generation", "status": "ok",
             "message": "trace builds"},
            {"section": "trace generation", "status": "ok",
             "message": "checksums stable"},
            {"section": "coherence", "status": "fail",
             "message": "dirty line count drifted"},
        ]

    def test_failures_and_verdict(self):
        report = sample_report()
        assert report.failures == 1
        assert report.passed is False
        assert "FAIL" in report.render()

    def test_clean_report_passes(self):
        report = SelftestReport()
        report.section("x:")
        report.ok("fine")
        assert report.passed is True
        assert report.render().endswith("PASSED")


class TestToDict:
    def test_shape_and_json_round_trip(self):
        data = json.loads(json.dumps(sample_report().to_dict()))
        assert data["passed"] is False
        assert data["failures"] == 1
        assert len(data["checks"]) == 3
        assert data["checks"][0]["status"] == "ok"

    def test_carries_build_identity(self):
        data = sample_report().to_dict()
        assert set(data["version"]) >= {
            "package", "code_version", "trace_format",
            "cache_format", "journal_format",
        }
