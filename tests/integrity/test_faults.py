"""Fault injection: every fault class must be caught by the checker.

This is a mutation test of the checker itself — an invariant checker
that passes clean runs but misses planted corruption is vacuous.
"""

import random

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.cpu.events import encode
from repro.integrity import FaultKind, FaultPlan, InvariantViolation
from repro.integrity.errors import FaultInjectionError
from repro.trace.synthetic import make_trace


def _trace(ncpus=4, quanta=60, seed=3):
    rng = random.Random(seed)
    body = []
    for _ in range(quanta):
        refs = []
        for _ in range(rng.randint(10, 30)):
            instr = rng.random() < 0.3
            refs.append(encode(rng.randrange(300),
                               write=not instr and rng.random() < 0.4,
                               instr=instr))
        body.append((rng.randrange(ncpus), refs))
    return make_trace(ncpus, body, page_bytes=256)


MACHINE = MachineConfig.base(4, l2_size=8192, l2_assoc=2, scale=1)

# The invariant(s) each fault class legitimately trips.  A fault may
# cascade (e.g. an LRU move is seen first as a set-index mismatch).
EXPECTED = {
    FaultKind.PROTOCOL_STATE: {"directory-stale-copy", "dirty-without-ownership",
                               "owner-not-sharer"},
    FaultKind.DROP_INVALIDATION: {"directory-missing-copy"},
    FaultKind.LRU_CORRUPT: {"set-index", "set-occupancy", "directory-missing-copy"},
    FaultKind.DUPLICATE_LINE: {"duplicate-line", "set-occupancy"},
    FaultKind.DIRTY_ORPHAN: {"dirty-not-resident"},
    FaultKind.INCLUSION_BREAK: {"l1-l2-inclusion"},
}


class TestFaultPlanValidation:
    def test_string_kind_coerced(self):
        plan = FaultPlan("lru-corrupt")
        assert plan.kind is FaultKind.LRU_CORRUPT

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan("meltdown")

    def test_negative_ref_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(FaultKind.LRU_CORRUPT, at_ref=-1)


class TestDetection:
    @pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
    def test_every_fault_detected(self, kind):
        plan = FaultPlan(kind, at_ref=100, seed=9)
        with pytest.raises(InvariantViolation) as exc_info:
            simulate(MACHINE, _trace(), check="per-quantum", fault_plan=plan)
        assert plan.applied, "fault was never injected"
        assert exc_info.value.invariant in EXPECTED[kind]

    @pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
    def test_detected_at_end_of_run_too(self, kind):
        # at_ref beyond the trace: the fault lands after the replay
        # loop, so it cannot be masked by later evictions.
        plan = FaultPlan(kind, at_ref=10**9, seed=9)
        with pytest.raises(InvariantViolation):
            simulate(MACHINE, _trace(), check="end-of-run", fault_plan=plan)

    def test_violation_carries_forensics(self):
        plan = FaultPlan(FaultKind.LRU_CORRUPT, at_ref=50, seed=2)
        with pytest.raises(InvariantViolation) as exc_info:
            simulate(MACHINE, _trace(), check="per-quantum", fault_plan=plan)
        forensics = exc_info.value.forensics
        assert forensics["invariant"]
        assert "node" in forensics

    def test_deterministic_target(self):
        messages = set()
        for _ in range(2):
            plan = FaultPlan(FaultKind.DUPLICATE_LINE, at_ref=80, seed=4)
            with pytest.raises(InvariantViolation) as exc_info:
                simulate(MACHINE, _trace(), check="per-quantum", fault_plan=plan)
            messages.add(str(exc_info.value))
        assert len(messages) == 1

    def test_unchecked_run_misses_the_fault(self):
        # The point of the checker: without it the corruption is silent.
        plan = FaultPlan(FaultKind.DIRTY_ORPHAN, at_ref=100, seed=9)
        result = simulate(MACHINE, _trace(), check="off", fault_plan=plan)
        assert plan.applied
        assert result.trace_refs > 0
