"""The error taxonomy: hierarchy, back-compat bases, and forensics."""

import pytest

from repro.integrity import (
    ConfigError,
    InvariantViolation,
    ReproError,
    TraceFormatError,
    TraceMismatchError,
)
from repro.integrity.errors import FaultInjectionError, StateError


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (ConfigError, TraceFormatError, TraceMismatchError,
                    InvariantViolation, StateError, FaultInjectionError):
            assert issubclass(cls, ReproError)

    def test_config_error_is_value_error(self):
        # Pre-taxonomy callers caught ValueError; that must keep working.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(TraceFormatError, ValueError)
        assert issubclass(TraceMismatchError, ValueError)

    def test_state_error_is_runtime_error(self):
        assert issubclass(StateError, RuntimeError)
        assert issubclass(FaultInjectionError, RuntimeError)

    def test_catching_repro_error_catches_all(self):
        with pytest.raises(ReproError):
            raise TraceFormatError("bad archive")


class TestInvariantViolation:
    def test_message_carries_forensics(self):
        exc = InvariantViolation(
            "l1-l2-inclusion", "line missing from L2",
            node=3, cache="n3c1.l1d", set_index=7, line=0x2A,
        )
        text = str(exc)
        assert "invariant 'l1-l2-inclusion' violated" in text
        assert "node=3" in text
        assert "cache=n3c1.l1d" in text
        assert "set=7" in text
        assert "line=0x2a" in text

    def test_forensics_dict(self):
        exc = InvariantViolation("set-occupancy", "9 lines in 8-way set",
                                 node=0, cache="n0.l2", set_index=12)
        f = exc.forensics
        assert f["invariant"] == "set-occupancy"
        assert f["node"] == 0
        assert f["cache"] == "n0.l2"
        assert f["set"] == 12
        assert "line" not in f

    def test_extra_details_appear(self):
        exc = InvariantViolation("reference-conservation", "off by 3",
                                 details={"expected": 100, "actual": 97})
        assert "expected" in str(exc)
        assert exc.forensics["expected"] == 100
