"""The public API surface: exports exist and __all__ lists are honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.memsys",
    "repro.coherence",
    "repro.cpu",
    "repro.oltp",
    "repro.trace",
    "repro.stats",
    "repro.experiments",
    "repro.integrity",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_top_level_quickstart_names():
    import repro

    for symbol in ("MachineConfig", "build_trace", "simulate", "RunResult",
                   "IntegrationLevel", "LatencyTable"):
        assert hasattr(repro, symbol)


def test_version_is_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_public_docstrings_exist():
    """Every public module and exported class carries a docstring."""
    for name in PACKAGES:
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if isinstance(obj, type) or callable(obj):
                assert getattr(obj, "__doc__", None), (
                    f"{name}.{symbol} lacks a docstring"
                )
