"""Tests for the TPC-B database: balances, layout, consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oltp.database import TpcbDatabase
from repro.oltp.schema import TpcbScale


def make(scale=64):
    return TpcbDatabase(TpcbScale.paper(scale))


class TestSegments:
    def test_segments_are_disjoint_and_ordered(self):
        db = make()
        lay = db.layout
        assert lay.account_base == 0
        assert lay.account_base < lay.teller_base < lay.branch_base < lay.history_base

    def test_history_wraps_in_window(self):
        db = make()
        rows = db.scale.history_rows_per_block
        window = db.layout.history_blocks
        blk_first, _ = db.history_block(0)
        blk_wrapped, _ = db.history_block(rows * window)
        assert blk_first == blk_wrapped

    def test_block_addressing_within_segments(self):
        db = make()
        blk, off = db.account_block(0)
        assert blk == db.layout.account_base and off == 0
        blk, _ = db.teller_block(0)
        assert blk == db.layout.teller_base
        blk, _ = db.branch_block(0)
        assert blk == db.layout.branch_base


class TestBalances:
    def test_apply_account(self):
        db = make()
        assert db.apply_account(5, 100) == 100
        assert db.apply_account(5, -40) == 60

    def test_apply_all_three(self):
        db = make()
        db.apply_account(1, 10)
        db.apply_teller(2, 10)
        db.apply_branch(0, 10)
        assert db.account_balance[1] == 10
        assert db.teller_balance[2] == 10
        assert db.branch_balance[0] == 10

    def test_history_count_monotonic(self):
        db = make()
        assert db.append_history() == 0
        assert db.append_history() == 1
        assert db.history_count == 2


class TestConsistency:
    def test_fresh_database_is_consistent(self):
        make().check_consistency()

    def test_consistent_after_matched_updates(self):
        db = make()
        aid = 7
        branch = db.scale.branch_of_account(aid)
        db.apply_account(aid, 500)
        db.apply_teller(3, 500)
        db.apply_branch(branch, 500)
        db.check_consistency()

    def test_detects_unbalanced_branch(self):
        db = make()
        db.apply_account(0, 500)
        db.apply_teller(0, 500)
        db.apply_branch(1, 500)  # wrong branch: account 0 is branch 0
        with pytest.raises(AssertionError):
            db.check_consistency()

    def test_detects_global_imbalance(self):
        db = make()
        db.apply_account(0, 500)
        with pytest.raises(AssertionError):
            db.check_consistency()

    @given(st.lists(
        st.tuples(st.integers(0, 999), st.integers(0, 399),
                  st.integers(-9999, 9999)),
        max_size=60,
    ))
    @settings(max_examples=40, deadline=None)
    def test_random_matched_updates_stay_consistent(self, txns):
        db = make(scale=256)
        naccts = db.scale.accounts
        for acct, teller, delta in txns:
            acct %= naccts
            branch = db.scale.branch_of_account(acct)
            db.apply_account(acct, delta)
            db.apply_teller(teller, delta)
            db.apply_branch(branch, delta)
            db.append_history()
        db.check_consistency()
        assert db.history_count == len(txns)
