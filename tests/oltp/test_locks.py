"""Tests for the lock manager and latches."""

import pytest

from repro.oltp.locks import (
    LATCHES,
    NUM_CHAIN_LATCHES,
    NUM_LATCH_SLOTS,
    LockConflictError,
    LockManager,
    chain_latch_slot,
)


class TestLatches:
    def test_latch_by_name(self):
        lm = LockManager()
        lm.latch("redo_allocation")
        assert lm.stats.latch_gets == 1

    def test_unknown_latch_raises(self):
        with pytest.raises(ValueError):
            LockManager().latch("no_such_latch")

    def test_chain_latch_slots_follow_parents(self):
        slots = {chain_latch_slot(b) for b in range(200)}
        assert min(slots) == len(LATCHES)
        assert max(slots) < NUM_LATCH_SLOTS
        assert len(slots) == NUM_CHAIN_LATCHES


class TestEnqueues:
    def test_acquire_and_release(self):
        lm = LockManager()
        lm.acquire("account", 5, owner=1)
        assert lm.holder_of("account", 5) == 1
        assert lm.release_all(1) == 1
        assert lm.holder_of("account", 5) is None

    def test_reacquire_same_owner_ok(self):
        lm = LockManager()
        lm.acquire("teller", 2, owner=9)
        lm.acquire("teller", 2, owner=9)
        assert lm.locks_held == 1

    def test_conflict_raises(self):
        lm = LockManager()
        lm.acquire("branch", 0, owner=1)
        with pytest.raises(LockConflictError):
            lm.acquire("branch", 0, owner=2)
        assert lm.stats.conflicts == 1

    def test_release_all_only_drops_owner_locks(self):
        lm = LockManager()
        lm.acquire("account", 1, owner=1)
        lm.acquire("account", 2, owner=2)
        lm.release_all(1)
        assert lm.holder_of("account", 2) == 2
        assert lm.locks_held == 1

    def test_release_with_no_locks(self):
        assert LockManager().release_all(3) == 0

    def test_distinct_kinds_do_not_conflict(self):
        lm = LockManager()
        lm.acquire("account", 7, owner=1)
        lm.acquire("teller", 7, owner=2)  # same id, different kind
        assert lm.locks_held == 2

    def test_slot_hash_in_range(self):
        lm = LockManager(num_lock_slots=64)
        for rid in range(500):
            assert 0 <= lm._slot_of(("account", rid)) < 64

    def test_stats_accumulate(self):
        lm = LockManager()
        lm.acquire("account", 1, owner=1)
        lm.acquire("teller", 1, owner=1)
        lm.release_all(1)
        assert lm.stats.acquires == 2
        assert lm.stats.releases == 2
