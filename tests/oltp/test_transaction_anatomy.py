"""The anatomy of one TPC-B transaction, as seen by the tracer.

This is the engine's behavioural contract: the ordered sequence of
code paths and structure touches a transaction performs.  If the
engine changes shape (phases added, reordered or dropped), this test
fails loudly — the trace layer's realism rests on this sequence.
"""

from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import OracleEngine
from repro.oltp.tracing import EngineTracer
from repro.oltp.txn import TpcbTransaction


class SequenceTracer(EngineTracer):
    def __init__(self):
        self.events = []

    def on_switch(self, process):
        self.events.append(("switch", process.kind))

    def on_code(self, routine, units=1):
        self.events.append(("code", routine))

    def on_meta(self, struct, index, write, dependent=False):
        self.events.append(("meta", struct, write))

    def on_frame(self, frame_id, offset, nbytes, write, dependent=False):
        self.events.append(("frame", write))

    def on_pga(self, offset, nbytes, write):
        self.events.append(("pga", write))

    def on_log(self, offset, nbytes, write):
        self.events.append(("log", write))

    def on_syscall(self, name, payload_bytes=0, obj=0):
        self.events.append(("syscall", name))

    def on_txn_boundary(self, committed):
        self.events.append(("boundary", committed))


def run_one_txn():
    tracer = SequenceTracer()
    config = WorkloadConfig.build(ncpus=1, scale=128, seed=5)
    engine = OracleEngine(config, tracer)
    engine.prewarm()
    tracer.events.clear()
    engine.run_one(0, TpcbTransaction(0, teller_id=7, account_id=100, delta=50))
    return tracer.events


def code_sequence(events):
    return [e[1] for e in events if e[0] == "code"]


def test_transaction_phase_order():
    codes = code_sequence(run_one_txn())
    # Dispatch, SQL layer, then three index-searched row updates, a
    # history insert, and the commit.
    must_appear_in_order = [
        "ctx_switch", "sql_parse", "sql_execute",
        "idx_search", "buf_get", "row_update",   # account
        "idx_search", "buf_get", "row_update",   # teller
        "idx_search", "buf_get", "row_update",   # branch
        "buf_get", "row_insert",                  # history
        "txn_commit", "ctx_switch",
    ]
    it = iter(codes)
    for expected in must_appear_in_order:
        assert any(c == expected for c in it), (
            f"phase {expected!r} missing or out of order in {codes}"
        )


def test_pipe_roundtrip_brackets_the_transaction():
    events = run_one_txn()
    syscalls = [e[1] for e in events if e[0] == "syscall"]
    assert syscalls[0] == "pipe_read"
    assert "pipe_write" in syscalls
    assert syscalls.index("pipe_read") < syscalls.index("pipe_write")


def test_three_updates_touch_rows_read_then_write():
    events = run_one_txn()
    frames = [e for e in events if e[0] == "frame"]
    # Each of the four row operations reads then writes (the insert
    # only writes) plus one read per index-descent level.
    writes = [f for f in frames if f[1]]
    reads = [f for f in frames if not f[1]]
    assert len(writes) >= 4
    assert len(reads) >= 3 * 2  # at least the three row reads + descents


def test_redo_generated_before_commit_marker():
    events = run_one_txn()
    log_writes = [i for i, e in enumerate(events) if e[0] == "log" and e[1]]
    commit = next(i for i, e in enumerate(events)
                  if e == ("code", "txn_commit"))
    # Redo for the updates precedes the commit, and the commit marker
    # itself is a log write after it.
    assert any(i < commit for i in log_writes)
    assert any(i > commit for i in log_writes)


def test_locks_taken_before_rows_and_released_by_commit():
    events = run_one_txn()
    lock_writes = [i for i, e in enumerate(events)
                   if e[0] == "meta" and e[1] == "lock" and e[2]]
    first_frame_write = next(i for i, e in enumerate(events)
                             if e[0] == "frame" and e[1])
    assert lock_writes[0] < first_frame_write
    boundary = next(i for i, e in enumerate(events) if e[0] == "boundary")
    assert lock_writes[-1] < boundary


def test_undo_slot_claimed_and_committed():
    events = run_one_txn()
    txnslots = [e for e in events if e[0] == "meta" and e[1] == "txnslot"]
    assert len(txnslots) >= 3  # claim, commit mark, peer check
    assert txnslots[0][2] is True  # the claim is a write


def test_boundary_reported_once():
    events = run_one_txn()
    boundaries = [e for e in events if e[0] == "boundary"]
    assert boundaries == [("boundary", 1)]
