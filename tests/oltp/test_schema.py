"""Tests for TPC-B schema scaling and block layout."""

import pytest

from repro.oltp.schema import BLOCK_SIZE, BRANCHES, TELLERS_PER_BRANCH, TpcbScale


class TestPaperScaling:
    def test_unscaled_matches_spec(self):
        s = TpcbScale.paper(1)
        assert s.branches == 40
        assert s.tellers == 400
        assert s.accounts == 4_000_000
        assert s.account_row_bytes == 100

    def test_branches_and_tellers_do_not_scale(self):
        s = TpcbScale.paper(32)
        assert s.branches == BRANCHES
        assert s.tellers_per_branch == TELLERS_PER_BRANCH

    def test_accounts_scale(self):
        assert TpcbScale.paper(32).accounts == 40 * (100_000 // 32)

    def test_row_bytes_scale_with_floor(self):
        s = TpcbScale.paper(32)
        assert s.account_row_bytes == 16
        assert s.teller_row_bytes == 8
        s = TpcbScale.paper(4)
        assert s.account_row_bytes == 25

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            TpcbScale.paper(0)


class TestLayout:
    def test_rows_per_block(self):
        s = TpcbScale.paper(1)
        assert s.account_rows_per_block == BLOCK_SIZE // 100

    def test_account_location_roundtrip(self):
        s = TpcbScale.paper(8)
        rows = s.account_rows_per_block
        blk, off = s.account_location(rows + 3)
        assert blk == 1
        assert off == 3 * s.account_row_bytes

    def test_block_counts_cover_all_rows(self):
        s = TpcbScale.paper(16)
        last_blk, _ = s.account_location(s.accounts - 1)
        assert last_blk == s.account_blocks - 1
        last_blk, _ = s.teller_location(s.tellers - 1)
        assert last_blk == s.teller_blocks - 1

    def test_offsets_stay_inside_block(self):
        s = TpcbScale.paper(32)
        for aid in range(0, s.accounts, 997):
            _, off = s.account_location(aid)
            assert 0 <= off < BLOCK_SIZE


class TestOwnership:
    def test_branch_of_teller(self):
        s = TpcbScale.paper(1)
        assert s.branch_of_teller(0) == 0
        assert s.branch_of_teller(10) == 1
        assert s.branch_of_teller(399) == 39

    def test_branch_of_account(self):
        s = TpcbScale.paper(1)
        assert s.branch_of_account(0) == 0
        assert s.branch_of_account(100_000) == 1
