"""Tests for the SGA block buffer pool."""

import pytest

from repro.oltp.bufferpool import BufferPool
from repro.oltp.tracing import EngineTracer


class RecordingTracer(EngineTracer):
    """Collects hook calls for assertion."""

    def __init__(self):
        self.meta = []
        self.syscalls = []
        self.code = []

    def on_meta(self, struct, index, write, dependent=False):
        self.meta.append((struct, index, write, dependent))

    def on_syscall(self, name, payload_bytes=0, obj=0):
        self.syscalls.append(name)

    def on_code(self, routine, units=1):
        self.code.append(routine)


class TestPoolBasics:
    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_first_get_is_a_miss(self):
        pool = BufferPool(8)
        pool.get(42, for_write=False)
        assert pool.stats.gets == 1
        assert pool.stats.hits == 0
        assert pool.stats.disk_reads == 1

    def test_second_get_hits(self):
        pool = BufferPool(8)
        f1 = pool.get(42, False)
        f2 = pool.get(42, False)
        assert f1 == f2
        assert pool.stats.hits == 1

    def test_distinct_blocks_get_distinct_frames(self):
        pool = BufferPool(8)
        frames = {pool.get(b, False) for b in range(5)}
        assert len(frames) == 5

    def test_write_marks_dirty(self):
        pool = BufferPool(8)
        frame = pool.get(42, True)
        assert pool.is_dirty(frame)

    def test_read_does_not_mark_dirty(self):
        pool = BufferPool(8)
        frame = pool.get(42, False)
        assert not pool.is_dirty(frame)


class TestReplacement:
    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.get(1, False)
        pool.get(2, False)
        pool.get(1, False)      # 1 is now MRU
        pool.get(3, False)      # evicts 2
        assert pool.frame_holding(2) is None
        assert pool.frame_holding(1) is not None

    def test_dirty_victim_writes_to_disk(self):
        pool = BufferPool(1)
        pool.get(1, True)
        pool.get(2, False)
        assert pool.stats.disk_writes == 1

    def test_resident_blocks_bounded_by_frames(self):
        pool = BufferPool(4)
        for b in range(20):
            pool.get(b, False)
        assert pool.resident_blocks == 4


class TestDbwr:
    def test_flush_clears_dirty(self):
        pool = BufferPool(8)
        f = pool.get(1, True)
        pool.get(2, True)
        flushed = pool.flush_frames(10)
        assert flushed == 2
        assert not pool.is_dirty(f)
        assert pool.stats.disk_writes == 2

    def test_flush_respects_batch_limit(self):
        pool = BufferPool(8)
        for b in range(5):
            pool.get(b, True)
        assert pool.flush_frames(2) == 2
        assert len(pool.dirty_frames) == 3

    def test_flush_empty_pool(self):
        assert BufferPool(8).flush_frames(4) == 0


class TestTracing:
    def test_hit_traces_latch_hash_and_header(self):
        t = RecordingTracer()
        pool = BufferPool(8, t)
        pool.get(42, False)
        t.meta.clear()
        t.syscalls.clear()
        pool.get(42, False)
        structs = [m[0] for m in t.meta]
        assert "latch" in structs
        assert "buf_hash" in structs
        assert "buf_header" in structs
        assert not t.syscalls  # no I/O on a hit

    def test_header_write_churn_on_every_pin(self):
        t = RecordingTracer()
        pool = BufferPool(8, t)
        pool.get(42, False)
        t.meta.clear()
        pool.get(42, False)  # read pin still writes the header
        assert ("buf_header", 0, True, False) in [
            (s, i, w, d) for s, i, w, d in t.meta if s == "buf_header" and w
        ] or any(s == "buf_header" and w for s, i, w, d in t.meta)

    def test_miss_traces_disk_read(self):
        t = RecordingTracer()
        pool = BufferPool(8, t)
        pool.get(42, False)
        assert "disk_read" in t.syscalls

    def test_hash_lookup_is_dependent(self):
        t = RecordingTracer()
        pool = BufferPool(8, t)
        pool.get(42, False)
        hash_probes = [m for m in t.meta if m[0] == "buf_hash"]
        assert hash_probes and hash_probes[0][3] is True

    def test_deterministic_bucket(self):
        pool = BufferPool(64)
        assert pool._bucket_of(42) == pool._bucket_of(42)
        assert 0 <= pool._bucket_of(42) < pool.num_buckets
