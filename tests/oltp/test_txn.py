"""Tests for TPC-B transaction generation."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oltp.schema import TpcbScale
from repro.oltp.txn import LOCAL_ACCOUNT_PROB, MAX_DELTA, generate_transaction

SCALE = TpcbScale.paper(64)


def gen(n, seed=1):
    rng = random.Random(seed)
    return [generate_transaction(rng, SCALE, i) for i in range(n)]


class TestProfile:
    def test_ids_in_range(self):
        for txn in gen(500):
            assert 0 <= txn.teller_id < SCALE.tellers
            assert 0 <= txn.account_id < SCALE.accounts
            assert txn.delta != 0
            assert abs(txn.delta) <= MAX_DELTA

    def test_txn_ids_sequential(self):
        txns = gen(50)
        assert [t.txn_id for t in txns] == list(range(50))

    def test_local_account_rule_85_15(self):
        txns = gen(4000)
        local = sum(
            1 for t in txns
            if SCALE.branch_of_account(t.account_id) == SCALE.branch_of_teller(t.teller_id)
        )
        assert abs(local / len(txns) - LOCAL_ACCOUNT_PROB) < 0.03

    def test_remote_branch_never_equals_home(self):
        # When the account is remote it must be a *different* branch.
        for txn in gen(4000, seed=3):
            home = SCALE.branch_of_teller(txn.teller_id)
            acct_branch = SCALE.branch_of_account(txn.account_id)
            assert 0 <= acct_branch < SCALE.branches
            # (equality allowed: that's the 85% local case)

    def test_deltas_symmetric(self):
        txns = gen(4000, seed=5)
        positive = sum(1 for t in txns if t.delta > 0)
        assert abs(positive / len(txns) - 0.5) < 0.03

    def test_tellers_roughly_uniform(self):
        txns = gen(8000, seed=7)
        counts = Counter(t.teller_id % 40 for t in txns)
        expect = len(txns) / 40
        assert all(abs(c - expect) < expect * 0.5 for c in counts.values())

    def test_branch_id_is_accounts_branch(self):
        for txn in gen(100):
            assert txn.branch_id(SCALE) == SCALE.branch_of_account(txn.account_id)


class TestSingleBranch:
    def test_single_branch_always_local(self):
        scale = TpcbScale(1, 10, 1000)
        rng = random.Random(0)
        for i in range(50):
            txn = generate_transaction(rng, scale, i)
            assert scale.branch_of_account(txn.account_id) == 0


@given(st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_generation_is_deterministic(seed):
    a = generate_transaction(random.Random(seed), SCALE, 0)
    b = generate_transaction(random.Random(seed), SCALE, 0)
    assert a == b
