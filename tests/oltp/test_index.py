"""Unit and property tests for the B+-tree index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oltp.index import BPlusTree, Node


class TestBulkLoad:
    def test_empty(self):
        t = BPlusTree.build([])
        assert len(t) == 0
        assert t.lookup(5) == (None, [0])

    def test_single_leaf(self):
        t = BPlusTree.build([(i, i * 2) for i in range(10)], fanout=16)
        assert t.height == 1
        assert t.num_blocks == 1
        assert t.lookup(7) == (14, [0])

    def test_two_levels(self):
        t = BPlusTree.build([(i, i) for i in range(100)], fanout=16)
        assert t.height == 2
        t.check_invariants()

    def test_deep_tree(self):
        # 1000 keys at fanout 8: 125 leaves -> 16 -> 2 -> root = height 4.
        t = BPlusTree.build([(i, -i) for i in range(1000)], fanout=8)
        assert t.height == 4
        t.check_invariants()
        for key in (0, 1, 511, 999):
            value, path = t.lookup(key)
            assert value == -key
            assert len(path) == 4
            assert path[0] == 0  # root is block 0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree.build([(2, 0), (1, 0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            BPlusTree.build([(1, 0), (1, 1)])

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=2)

    def test_every_key_findable(self):
        keys = list(range(0, 5000, 3))
        t = BPlusTree.build([(k, k + 1) for k in keys], fanout=32)
        for k in keys:
            assert t.lookup(k)[0] == k + 1

    def test_absent_keys_return_none(self):
        t = BPlusTree.build([(k, k) for k in range(0, 100, 2)], fanout=8)
        for k in range(1, 100, 2):
            value, path = t.lookup(k)
            assert value is None
            assert len(path) == t.height

    def test_block_numbering_breadth_first(self):
        t = BPlusTree.build([(i, i) for i in range(200)], fanout=8)
        # Root block 0; each level's blocks contiguous and increasing.
        assert t.root.block == 0
        blocks = set()
        queue = [t.root]
        while queue:
            node = queue.pop()
            assert node.block not in blocks
            blocks.add(node.block)
            if not node.leaf:
                queue.extend(node.children)
        assert blocks == set(range(t.num_blocks))


class TestRangeScan:
    def test_scan_inclusive(self):
        t = BPlusTree.build([(i, i * 10) for i in range(50)], fanout=8)
        assert t.range_scan(10, 13) == [(10, 100), (11, 110), (12, 120), (13, 130)]

    def test_scan_across_leaves(self):
        t = BPlusTree.build([(i, i) for i in range(100)], fanout=8)
        out = t.range_scan(0, 99)
        assert out == [(i, i) for i in range(100)]

    def test_scan_empty_range(self):
        t = BPlusTree.build([(i, i) for i in range(0, 100, 10)], fanout=8)
        assert t.range_scan(11, 19) == []


class TestInsert:
    def test_insert_into_empty(self):
        t = BPlusTree(fanout=4)
        t.insert(5, 50)
        assert t.lookup(5)[0] == 50
        t.check_invariants()

    def test_insert_splits_leaf(self):
        t = BPlusTree(fanout=4)
        for k in range(10):
            t.insert(k, k)
            t.check_invariants()
        assert t.height >= 2
        assert len(t) == 10

    def test_insert_duplicate_raises(self):
        t = BPlusTree(fanout=4)
        t.insert(1, 1)
        with pytest.raises(KeyError):
            t.insert(1, 2)

    def test_insert_into_bulk_loaded(self):
        t = BPlusTree.build([(k, k) for k in range(0, 100, 2)], fanout=8)
        for k in range(1, 100, 2):
            t.insert(k, k)
        t.check_invariants()
        assert len(t) == 100
        assert all(t.lookup(k)[0] == k for k in range(100))


@given(st.sets(st.integers(0, 10_000), min_size=1, max_size=400),
       st.sampled_from([4, 8, 32, 128]))
@settings(max_examples=50, deadline=None)
def test_bulk_load_lookup_property(keys, fanout):
    pairs = [(k, k ^ 0xFF) for k in sorted(keys)]
    t = BPlusTree.build(pairs, fanout=fanout)
    t.check_invariants()
    assert len(t) == len(keys)
    for k in keys:
        value, path = t.lookup(k)
        assert value == k ^ 0xFF
        assert len(path) == t.height


@given(st.lists(st.integers(0, 2_000), unique=True, min_size=1, max_size=120),
       st.sampled_from([4, 8]))
@settings(max_examples=40, deadline=None)
def test_incremental_insert_property(keys, fanout):
    t = BPlusTree(fanout=fanout)
    for k in keys:
        t.insert(k, k * 3)
    t.check_invariants()
    assert len(t) == len(keys)
    for k in keys:
        assert t.lookup(k)[0] == k * 3


@given(st.sets(st.integers(0, 3_000), min_size=2, max_size=300))
@settings(max_examples=30, deadline=None)
def test_range_scan_matches_sorted_filter(keys):
    pairs = [(k, k) for k in sorted(keys)]
    t = BPlusTree.build(pairs, fanout=8)
    lo, hi = min(keys), max(keys)
    mid_lo, mid_hi = lo + (hi - lo) // 4, hi - (hi - lo) // 4
    expected = [(k, k) for k in sorted(keys) if mid_lo <= k <= mid_hi]
    assert t.range_scan(mid_lo, mid_hi) == expected
