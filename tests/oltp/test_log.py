"""Tests for the redo log buffer and LGWR flushing."""

import pytest

from repro.oltp.log import RedoLog
from repro.oltp.tracing import EngineTracer


class LogTracer(EngineTracer):
    def __init__(self):
        self.log_refs = []
        self.syscalls = []

    def on_log(self, offset, nbytes, write):
        self.log_refs.append((offset, nbytes, write))

    def on_syscall(self, name, payload_bytes=0, obj=0):
        self.syscalls.append((name, payload_bytes))


class TestAppend:
    def test_append_advances_pointer(self):
        log = RedoLog(1024)
        assert log.append(100) == 0
        assert log.append(100) == 100
        assert log.unflushed_bytes == 200

    def test_append_rejects_empty(self):
        with pytest.raises(ValueError):
            RedoLog(1024).append(0)

    def test_rejects_zero_size_buffer(self):
        with pytest.raises(ValueError):
            RedoLog(0)

    def test_records_do_not_span_wrap(self):
        log = RedoLog(256)
        log.append(200)
        log.flush()
        start = log.append(100)  # 56 bytes left at top: must wrap
        assert start == 0
        assert log.stats.wraps == 1

    def test_overrun_raises(self):
        log = RedoLog(256)
        log.append(200)
        with pytest.raises(RuntimeError):
            log.append(100)  # LGWR has not flushed


class TestFlush:
    def test_flush_covers_unflushed_bytes(self):
        log = RedoLog(1024)
        log.append(100)
        log.append(50)
        assert log.flush() == 150
        assert log.unflushed_bytes == 0

    def test_flush_empty_is_zero(self):
        assert RedoLog(1024).flush() == 0

    def test_flush_after_wrap_reads_both_segments(self):
        t = LogTracer()
        log = RedoLog(256, t)
        log.append(200)
        log.flush()
        log.append(40)   # offsets 200..240
        log.append(100)  # wraps to 0
        t.log_refs.clear()
        log.flush()
        reads = [r for r in t.log_refs if not r[2]]
        assert len(reads) == 2  # split at the wrap point
        assert reads[0][0] == 200  # tail of the buffer first
        assert reads[1][0] == 0    # then the wrapped head
        assert log.unflushed_bytes == 0

    def test_flush_issues_disk_write(self):
        t = LogTracer()
        log = RedoLog(1024, t)
        log.append(64)
        log.flush()
        assert ("disk_write", 64) in t.syscalls


class TestTracing:
    def test_appends_trace_writes(self):
        t = LogTracer()
        log = RedoLog(1024, t)
        log.append(96)
        assert t.log_refs == [(0, 96, True)]

    def test_stats(self):
        log = RedoLog(1024)
        log.append(64)
        log.append(64)
        log.flush()
        assert log.stats.appends == 2
        assert log.stats.bytes_appended == 128
        assert log.stats.flushes == 1
        assert log.stats.bytes_flushed == 128
