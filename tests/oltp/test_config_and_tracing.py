"""Tests for workload configuration scaling rules and tracer plumbing."""

import pytest

from repro.oltp.config import WorkloadConfig
from repro.oltp.tracing import EngineTracer, NullTracer, ProcessContext


class TestWorkloadConfig:
    def test_paper_defaults(self):
        cfg = WorkloadConfig.build(ncpus=8, scale=32)
        assert cfg.num_servers == 64
        assert cfg.servers_per_cpu == 8
        assert cfg.tpcb.branches == 40

    def test_scaling_divides_big_footprints(self):
        # Scales chosen away from the size floors.
        small = WorkloadConfig.build(scale=16)
        big = WorkloadConfig.build(scale=4)
        assert big.text_hot_bytes == 4 * small.text_hot_bytes
        assert big.buffer_frames == 4 * small.buffer_frames
        assert big.log_buffer_bytes == 4 * small.log_buffer_bytes

    def test_floors_prevent_degeneracy(self):
        cfg = WorkloadConfig.build(scale=100_000)
        assert cfg.pga_hot_bytes >= 512
        assert cfg.buffer_frames >= 256
        assert cfg.lock_slots >= 64
        assert cfg.index_entry_bytes >= 2

    def test_index_entry_bytes_scale(self):
        assert WorkloadConfig.build(scale=1).index_entry_bytes == 16
        assert WorkloadConfig.build(scale=4).index_entry_bytes == 4
        assert WorkloadConfig.build(scale=32).index_entry_bytes == 2

    @pytest.mark.parametrize("kwargs", [
        {"ncpus": 0}, {"scale": 0}, {"ncpus": 2, "servers_per_cpu": 0},
    ])
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig.build(**kwargs)

    def test_frozen(self):
        cfg = WorkloadConfig.build()
        with pytest.raises(Exception):
            cfg.scale = 5


class TestProcessContext:
    def test_pga_defaults_to_index(self):
        p = ProcessContext("server", 3, cpu=1)
        assert p.pga_id == 3

    def test_explicit_pga(self):
        p = ProcessContext("lgwr", 0, cpu=2, pga_id=64)
        assert p.pga_id == 64

    def test_repr_mentions_kind_and_cpu(self):
        assert "server#3" in repr(ProcessContext("server", 3, cpu=1))


class TestNullTracer:
    def test_all_hooks_are_noops(self):
        t = NullTracer()
        t.on_switch(ProcessContext("server", 0, 0))
        t.on_code("sql_parse", units=2)
        t.on_frame(0, 0, 64, True)
        t.on_meta("latch", 0, True, dependent=True)
        t.on_pga(0, 64, False)
        t.on_log(0, 64, True)
        t.on_syscall("pipe_read", 128, obj=3)
        t.on_txn_boundary(1)

    def test_base_tracer_is_subclassable_piecemeal(self):
        hits = []

        class OnlyCode(EngineTracer):
            def on_code(self, routine, units=1):
                hits.append(routine)

        t = OnlyCode()
        t.on_code("sql_parse")
        t.on_frame(0, 0, 64, True)  # inherited no-op
        assert hits == ["sql_parse"]
