"""Tests for the OLTP engine: execution, daemons, invariants."""

import pytest

from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import OracleEngine
from repro.oltp.tracing import EngineTracer
from repro.oltp.txn import TpcbTransaction


def make_engine(ncpus=1, tracer=None, seed=3):
    config = WorkloadConfig.build(ncpus=ncpus, scale=128, seed=seed)
    return OracleEngine(config, tracer)


class CountingTracer(EngineTracer):
    def __init__(self):
        self.switches = []
        self.routines = []
        self.boundaries = 0

    def on_switch(self, process):
        self.switches.append((process.kind, process.index, process.cpu))

    def on_code(self, routine, units=1):
        self.routines.append(routine)

    def on_txn_boundary(self, committed):
        self.boundaries = committed


class TestExecution:
    def test_run_commits_requested_count(self):
        engine = make_engine()
        assert engine.run(25) == 25
        assert engine.stats.committed == 25

    def test_database_consistent_after_run(self):
        engine = make_engine()
        engine.run(60)
        engine.db.check_consistency()

    def test_history_rows_match_commits(self):
        engine = make_engine()
        engine.run(30)
        assert engine.db.history_count == 30

    def test_locks_released_after_each_txn(self):
        engine = make_engine()
        engine.run(20)
        assert engine.locks.locks_held == 0

    def test_run_one_executes_specific_txn(self):
        engine = make_engine()
        txn = TpcbTransaction(txn_id=0, teller_id=3, account_id=11, delta=250)
        engine.run_one(0, txn)
        assert engine.db.account_balance[11] == 250
        assert engine.db.teller_balance[3] == 250
        branch = engine.config.tpcb.branch_of_account(11)
        assert engine.db.branch_balance[branch] == 250

    def test_deterministic_given_seed(self):
        a, b = make_engine(seed=9), make_engine(seed=9)
        a.run(40)
        b.run(40)
        assert (a.db.account_balance == b.db.account_balance).all()
        assert a.stats.remote_account_txns == b.stats.remote_account_txns

    def test_remote_account_txns_tracked(self):
        engine = make_engine()
        engine.run(400)
        frac = engine.stats.remote_account_txns / 400
        assert 0.05 < frac < 0.30  # around the 15% TPC-B remote rate


class TestDaemons:
    def test_lgwr_runs_every_commit_batch(self):
        engine = make_engine()
        engine.run(engine.config.commit_batch * 5)
        assert engine.stats.lgwr_activations == 5

    def test_lgwr_keeps_log_from_overrunning(self):
        engine = make_engine()
        engine.run(300)  # would overrun the buffer without LGWR
        assert engine.log.unflushed_bytes < engine.log.size

    def test_dbwr_activates(self):
        engine = make_engine()
        engine.run(engine.config.dbwr_interval * 3)
        assert engine.stats.dbwr_activations == 3

    def test_daemon_cpus_rotate(self):
        tracer = CountingTracer()
        engine = make_engine(ncpus=4, tracer=tracer)
        engine.run(120)
        daemon_cpus = {c for kind, _, c in tracer.switches if kind in ("lgwr", "dbwr")}
        assert len(daemon_cpus) > 1


class TestScheduling:
    def test_servers_bound_to_cpus_round_robin(self):
        engine = make_engine(ncpus=4)
        assert [s.cpu for s in engine.servers[:8]] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_all_servers_get_work(self):
        tracer = CountingTracer()
        engine = make_engine(tracer=tracer)
        engine.run(200)
        used = {i for kind, i, _ in tracer.switches if kind == "server"}
        assert used == set(range(engine.config.num_servers))

    def test_txn_boundaries_reported(self):
        tracer = CountingTracer()
        engine = make_engine(tracer=tracer)
        engine.run(12)
        assert tracer.boundaries == 12


class TestPrewarm:
    def test_prewarm_loads_all_segments(self):
        engine = make_engine()
        resident = engine.prewarm()
        layout = engine.db.layout
        assert resident == min(layout.total_blocks, engine.pool.num_frames)

    def test_prewarm_produces_no_trace(self):
        tracer = CountingTracer()
        engine = make_engine(tracer=tracer)
        engine.prewarm()
        assert not tracer.routines

    def test_post_prewarm_runs_mostly_hit_the_pool(self):
        engine = make_engine()
        engine.prewarm()
        engine.pool.stats.gets = engine.pool.stats.hits = 0
        engine.run(100)
        assert engine.pool.stats.hit_rate > 0.95
