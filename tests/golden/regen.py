"""Golden-fixture regeneration: ``python -m tests.golden.regen``.

The golden tests (``tests/golden/test_golden.py``) replay two tiny
*frozen* traces — checked-in JSON, not regenerated per run — and
compare the full ``RunResult.to_dict()`` payload against checked-in
expectations.  Any semantic drift in the replay engines, the miss
taxonomy, the latency tables or the stat plumbing fails the test.

When a change is *supposed* to shift the numbers (a modelling fix, a
latency-table change), regenerate the expectations and commit the
diff alongside the change so review sees exactly what moved::

    PYTHONPATH=src python -m tests.golden.regen

The traces themselves are regenerated too, but from fixed seeds and a
pinned generator configuration; if the trace JSON diffs, the *trace
generator's* semantics moved, which is itself worth flagging in the
change description.

The goldens replay fully materialized traces only.  The streaming
path needs no fixtures of its own: ``stream_trace`` is pinned
chunk-for-chunk against ``build_trace`` by
``tests/trace/test_stream_properties.py``, and chunked replay is held
to the materialized engines' exact payloads by the streaming
differential cells in ``tests/core/test_differential.py`` — so these
goldens transitively freeze the streamed results too.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.params import MB
from repro.scenario import get_scenario
from repro.trace.generator import OltpTrace, build_trace
from repro.trace.synthetic import make_trace

HERE = Path(__file__).resolve().parent


def _scenario_workload(name: str):
    """The registered scenario's workload, so the golden stays pinned
    to the same spec users run (a registry edit without regeneration
    is flagged by the fixture-sync test)."""
    return get_scenario(name).workload


def _scenario_topology(name: str):
    return get_scenario(name).topology


#: The frozen workloads: tiny OLTP runs — one uniprocessor (replayed
#: by the vectorized engine under auto-selection), one 2-CPU
#: multiprocessor (staged pipeline, full coherence), one 8-node
#: RAC configuration (the pipeline's stream mode), plus two scenario
#: points: the Zipf-skewed uniprocessor workload and the
#: hardware-islands 8-node topology (stream mode via non-flat
#: routing).
CASES = {
    "uni": {
        "machine": lambda: MachineConfig.base(1, scale=128),
        "trace": lambda: build_trace(ncpus=1, scale=128, txns=12,
                                     warmup_txns=30, seed=41),
    },
    "mp": {
        "machine": lambda: MachineConfig.fully_integrated(2, scale=128),
        "trace": lambda: build_trace(ncpus=2, scale=128, txns=16,
                                     warmup_txns=30, seed=43),
    },
    "mp8rac": {
        "machine": lambda: MachineConfig.fully_integrated(
            8, scale=128, rac_size=8 * MB
        ),
        "trace": lambda: build_trace(ncpus=8, scale=128, txns=24,
                                     warmup_txns=30, seed=47),
    },
    "zipf_uni": {
        "machine": lambda: MachineConfig.base(1, scale=128),
        "trace": lambda: build_trace(
            ncpus=1, scale=128, txns=12, warmup_txns=30, seed=53,
            workload=_scenario_workload("zipf-uni"),
        ),
    },
    "islands_mp8": {
        "machine": lambda: MachineConfig.fully_integrated(
            8, scale=128
        ).with_(topology=_scenario_topology("islands-mp8")),
        "trace": lambda: build_trace(ncpus=8, scale=128, txns=24,
                                     warmup_txns=30, seed=59),
    },
}


def trace_to_dict(trace: OltpTrace) -> dict:
    """JSON-safe frozen form of everything the replay consumes."""
    return {
        "ncpus": trace.ncpus,
        "scale": trace.scale,
        "page_bytes": trace.page_bytes,
        "text_pages": sorted(trace.text_pages),
        "warmup_quanta": trace.warmup_quanta,
        "measured_txns": trace.measured_txns,
        "quanta": [[q.cpu, list(q.refs)] for q in trace.quanta],
    }


def trace_from_dict(data: dict) -> OltpTrace:
    """Rebuild a frozen trace; exact inverse of :func:`trace_to_dict`."""
    return make_trace(
        data["ncpus"],
        [(cpu, refs) for cpu, refs in data["quanta"]],
        page_bytes=data["page_bytes"],
        text_pages=frozenset(data["text_pages"]),
        warmup_quanta=data["warmup_quanta"],
        measured_txns=data["measured_txns"],
        scale=data["scale"],
    )


def trace_path(name: str) -> Path:
    return HERE / f"{name}_trace.json"


def expected_path(name: str) -> Path:
    return HERE / f"{name}_expected.json"


def regenerate() -> None:
    for name, case in CASES.items():
        trace = case["trace"]()
        payload = trace_to_dict(trace)
        trace_path(name).write_text(
            json.dumps(payload, indent=None, separators=(",", ":"),
                       sort_keys=True) + "\n"
        )
        # Simulate the *frozen* form, exactly as the test will.
        result = simulate(case["machine"](), trace_from_dict(payload))
        expected_path(name).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"regenerated {name}: {trace.total_refs} refs, "
              f"{len(payload['quanta'])} quanta")


if __name__ == "__main__":
    regenerate()
