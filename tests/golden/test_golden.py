"""Golden-regression tests: frozen traces, frozen RunResults.

Fails on any unflagged semantic drift anywhere in the replay stack —
engines, miss taxonomy, latency tables, stat plumbing.  If the drift
is intentional, regenerate and commit the fixture diff::

    PYTHONPATH=src python -m tests.golden.regen

See ``tests/golden/regen.py`` for what is frozen and why.
"""

import json

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import System, simulate

from tests.golden import regen

REGEN_HINT = (
    "golden fixture drifted; if intentional, regenerate with "
    "`PYTHONPATH=src python -m tests.golden.regen` and commit the diff"
)


def load_case(name):
    trace = regen.trace_from_dict(
        json.loads(regen.trace_path(name).read_text())
    )
    expected = json.loads(regen.expected_path(name).read_text())
    machine = MachineConfig.from_dict(expected["machine"])
    return machine, trace, expected


@pytest.mark.parametrize("name", sorted(regen.CASES))
def test_golden_runresult_exact(name):
    machine, trace, expected = load_case(name)
    got = simulate(machine, trace).to_dict()
    assert got == expected, REGEN_HINT


@pytest.mark.parametrize("name", ["uni", "zipf_uni"])
def test_golden_uni_identical_across_engines(name):
    """The frozen uniprocessor expectations hold for all
    uniprocessor-capable engines, not just the auto-selected one
    (zipf_uni pins the Zipf-skewed scenario workload)."""
    machine, trace, expected = load_case(name)
    for engine in ("fast", "general", "vectorized"):
        got = System(machine, engine=engine).run(trace).to_dict()
        assert got == expected, f"engine={engine}: {REGEN_HINT}"


@pytest.mark.parametrize("name", ["mp", "mp8rac", "islands_mp8"])
def test_golden_mp_identical_across_engines(name):
    """The frozen multiprocessor expectations hold bit-for-bit for
    every MP-capable engine — in particular the staged
    ``vectorized-mp`` pipeline must reproduce the scalar engines'
    payloads exactly (the mp8rac case exercises its stream mode, and
    islands_mp8 the non-flat topology routing)."""
    machine, trace, expected = load_case(name)
    for engine in ("fast", "general", "vectorized-mp"):
        got = System(machine, engine=engine).run(trace).to_dict()
        assert got == expected, f"engine={engine}: {REGEN_HINT}"


def test_fixtures_are_in_sync_with_regen_config():
    """The checked-in machine payloads match the regen script's CASES,
    so a config edit without regeneration is flagged immediately."""
    for name, case in regen.CASES.items():
        expected = json.loads(regen.expected_path(name).read_text())
        assert expected["machine"] == case["machine"]().to_dict(), (
            f"{name}: {REGEN_HINT}"
        )
