"""Stateful (model-based) testing of the directory protocol.

Hypothesis drives random sequences of reads, writes, upgrades, and
evictions across four nodes, checking after every step that:

* the directory's structural invariants hold;
* directory presence exactly matches cache contents;
* at most one node ever holds a line dirty;
* an owned line is held by exactly its owner;
* miss classification agrees with an independent oracle that tracks
  only "who last wrote this line and has it still" state.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.coherence.homemap import HomeMap
from repro.coherence.protocol import DirectoryProtocol
from repro.memsys.hierarchy import HierarchyLevel, NodeCaches
from repro.params import MissKind

NNODES = 4
PAGE = 256  # 4 lines/page: line L has home (L // 4) % 4
LINES = st.integers(0, 31)
NODES = st.integers(0, NNODES - 1)


class ProtocolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.nodes = [
            NodeCaches(1024, 2, l1_size=256, l1_assoc=2, node_id=i)
            for i in range(NNODES)
        ]
        self.protocol = DirectoryProtocol(HomeMap(NNODES, PAGE), self.nodes)
        # Oracle state: node that holds the line dirty, if any.
        self.dirty_at = {}

    # -- operations ----------------------------------------------------------

    def _access(self, node: int, line: int, write: bool):
        result = self.nodes[node].access(line, write, False)
        if result.victim is not None:
            self.protocol.handle_eviction(node, result.victim, result.victim_dirty)
            if self.dirty_at.get(result.victim) == node:
                del self.dirty_at[result.victim]
        if result.level is HierarchyLevel.MISS:
            outcome = self.protocol.service_miss(node, line, write, False)
            return outcome
        if write:
            self.protocol.ensure_owner(node, line)
        return None

    @rule(node=NODES, line=LINES)
    def read(self, node, line):
        expected_dirty_elsewhere = (
            line in self.dirty_at and self.dirty_at[line] != node
            and not self.nodes[node].holds(line)
        )
        outcome = self._access(node, line, False)
        if outcome is not None and expected_dirty_elsewhere:
            assert outcome.kind is MissKind.REMOTE_DIRTY
        if outcome is not None:
            # After a read service, no node holds the line dirty.
            self.dirty_at.pop(line, None)

    @rule(node=NODES, line=LINES)
    def write(self, node, line):
        self._access(node, line, True)
        self.dirty_at[line] = node

    @rule(node=NODES, line=LINES)
    def evict(self, node, line):
        """Force a line out of a node (capacity pressure stand-in)."""
        if not self.nodes[node].holds(line):
            return
        dirty = self.nodes[node].invalidate(line)
        self.protocol.handle_eviction(node, line, dirty)
        if self.dirty_at.get(line) == node:
            del self.dirty_at[line]

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def directory_structurally_sound(self):
        self.protocol.directory.check_invariants()

    @invariant()
    def directory_matches_caches(self):
        directory = self.protocol.directory
        for node_id, node in enumerate(self.nodes):
            for line in node.l2.resident_lines():
                assert directory.is_cached_by(line, node_id)
        for line in range(32):
            for sharer in directory.sharers(line):
                assert self.nodes[sharer].holds(line)

    @invariant()
    def single_dirty_holder(self):
        for line in range(32):
            dirty_holders = [
                i for i, n in enumerate(self.nodes) if n.holds_dirty(line)
            ]
            assert len(dirty_holders) <= 1
            if dirty_holders:
                assert self.protocol.directory.owner(line) == dirty_holders[0]

    @invariant()
    def owner_is_sole_holder(self):
        for line in range(32):
            owner = self.protocol.directory.owner(line)
            if owner is not None:
                holders = [i for i, n in enumerate(self.nodes) if n.holds(line)]
                assert holders == [owner]


ProtocolMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)
TestProtocolStateMachine = ProtocolMachine.TestCase
