"""Protocol engine tests: miss classification, interventions, RAC."""

import pytest

from repro.coherence.homemap import HomeMap
from repro.coherence.protocol import DirectoryProtocol
from repro.memsys.hierarchy import NodeCaches
from repro.memsys.rac import RemoteAccessCache
from repro.params import MissKind

PAGE = 256  # 4 lines per page

# With 4 nodes and 4-line pages: lines 0..3 home 0, 4..7 home 1, etc.
LINE_HOME0 = 0
LINE_HOME1 = 4
LINE_HOME2 = 8


def build(nnodes=4, racs=False, l2_size=4096, l2_assoc=2):
    nodes = [
        NodeCaches(l2_size, l2_assoc, l1_size=512, l1_assoc=2, node_id=i)
        for i in range(nnodes)
    ]
    rac_list = [RemoteAccessCache(2048, 2, node_id=i) for i in range(nnodes)] if racs else None
    protocol = DirectoryProtocol(HomeMap(nnodes, PAGE), nodes, rac_list)
    return protocol, nodes, rac_list


def miss(protocol, nodes, node, line, write=False, instr=False):
    """Mimic the simulator: fill caches, notify protocol of evictions."""
    result = nodes[node].access(line, write, instr)
    if result.victim is not None:
        protocol.handle_eviction(node, result.victim, result.victim_dirty)
    return protocol.service_miss(node, line, write, instr)


class TestReadClassification:
    def test_local_read(self):
        p, n, _ = build()
        out = miss(p, n, 0, LINE_HOME0)
        assert out.kind is MissKind.LOCAL

    def test_remote_clean_read(self):
        p, n, _ = build()
        out = miss(p, n, 0, LINE_HOME1)
        assert out.kind is MissKind.REMOTE_CLEAN

    def test_remote_dirty_read_3hop(self):
        p, n, _ = build()
        miss(p, n, 1, LINE_HOME2, write=True)   # node 1 dirties the line
        out = miss(p, n, 0, LINE_HOME2)
        assert out.kind is MissKind.REMOTE_DIRTY
        # The owner was downgraded, not invalidated.
        assert n[1].holds(LINE_HOME2)
        assert not n[1].holds_dirty(LINE_HOME2)

    def test_dirty_at_home_node_is_still_3hop(self):
        # Line homed at 2, dirty in node 1's cache, requested by node 0:
        # the data comes from node 1's cache regardless of the home.
        p, n, _ = build()
        miss(p, n, 1, LINE_HOME2, write=True)
        out = miss(p, n, 0, LINE_HOME2)
        assert out.kind is MissKind.REMOTE_DIRTY

    def test_read_after_sharing_writeback_is_2hop(self):
        p, n, _ = build()
        miss(p, n, 1, LINE_HOME2, write=True)
        miss(p, n, 0, LINE_HOME2)            # 3-hop; data written back home
        out = miss(p, n, 3, LINE_HOME2)      # now clean at home
        assert out.kind is MissKind.REMOTE_CLEAN

    def test_dirty_read_at_own_home(self):
        # Node 0 reads its own home line that node 1 holds dirty: still
        # a 3-hop service (the paper's dirty-miss class).
        p, n, _ = build()
        miss(p, n, 1, LINE_HOME0, write=True)
        out = miss(p, n, 0, LINE_HOME0)
        assert out.kind is MissKind.REMOTE_DIRTY


class TestWriteClassification:
    def test_write_invalidate_sharers(self):
        p, n, _ = build()
        miss(p, n, 1, LINE_HOME0)
        miss(p, n, 2, LINE_HOME0)
        out = miss(p, n, 0, LINE_HOME0, write=True)
        assert out.kind is MissKind.LOCAL
        assert out.invalidations == 2
        assert not n[1].holds(LINE_HOME0)
        assert not n[2].holds(LINE_HOME0)
        assert p.directory.owner(LINE_HOME0) == 0

    def test_write_miss_to_dirty_remote(self):
        p, n, _ = build()
        miss(p, n, 1, LINE_HOME2, write=True)
        out = miss(p, n, 0, LINE_HOME2, write=True)
        assert out.kind is MissKind.REMOTE_DIRTY
        assert out.invalidations == 1
        assert not n[1].holds(LINE_HOME2)

    def test_migratory_pingpong_is_all_3hop(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME2, write=True)
        for turn in range(1, 6):
            node = turn % 2
            out = miss(p, n, node, LINE_HOME2, write=True)
            assert out.kind is MissKind.REMOTE_DIRTY


class TestUpgrades:
    def test_already_owner_returns_none(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME0, write=True)
        assert p.ensure_owner(0, LINE_HOME0) is None

    def test_upgrade_from_shared(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME0)
        miss(p, n, 1, LINE_HOME0)
        out = p.ensure_owner(0, LINE_HOME0)
        assert out is not None and out.upgrade
        assert out.kind is MissKind.LOCAL  # home is node 0
        assert out.invalidations == 1
        assert p.directory.owner(LINE_HOME0) == 0
        assert not n[1].holds(LINE_HOME0)

    def test_upgrade_remote_home(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME1)
        out = p.ensure_owner(0, LINE_HOME1)
        assert out.kind is MissKind.REMOTE_CLEAN and out.upgrade

    def test_upgrade_counter(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME1)
        p.ensure_owner(0, LINE_HOME1)
        assert p.upgrades == 1


class TestEvictions:
    def test_eviction_removes_directory_presence(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME1)
        n[0].invalidate(LINE_HOME1)
        p.handle_eviction(0, LINE_HOME1, dirty=False)
        assert not p.directory.is_cached(LINE_HOME1)

    def test_dirty_eviction_counts_writeback(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME1, write=True)
        n[0].invalidate(LINE_HOME1)
        p.handle_eviction(0, LINE_HOME1, dirty=True)
        assert p.writebacks == 1

    def test_read_after_dirty_eviction_is_clean(self):
        p, n, _ = build()
        miss(p, n, 0, LINE_HOME1, write=True)
        n[0].invalidate(LINE_HOME1)
        p.handle_eviction(0, LINE_HOME1, dirty=True)
        out = miss(p, n, 2, LINE_HOME1)
        assert out.kind is MissKind.REMOTE_CLEAN

    def test_directory_matches_caches_after_traffic(self):
        p, n, _ = build(l2_size=512, l2_assoc=1)  # tiny L2 forces evictions
        lines = [LINE_HOME0, LINE_HOME1, LINE_HOME2, 12, 16, 20, 24]
        for step in range(60):
            node = step % 4
            line = lines[step % len(lines)]
            result = n[node].access(line, step % 3 == 0, False)
            if result.victim is not None:
                p.handle_eviction(node, result.victim, result.victim_dirty)
            if result.level.value == "miss":
                p.service_miss(node, line, step % 3 == 0, False)
            elif step % 3 == 0:
                p.ensure_owner(node, line)
        p.check_consistency()


class TestRac:
    def test_remote_fill_allocates_in_rac(self):
        p, n, racs = build(racs=True)
        miss(p, n, 0, LINE_HOME1)
        assert racs[0].holds(LINE_HOME1)

    def test_local_fill_does_not_touch_rac(self):
        p, n, racs = build(racs=True)
        miss(p, n, 0, LINE_HOME0)
        assert not racs[0].holds(LINE_HOME0)
        assert racs[0].probes == 0

    def test_rac_hit_after_l2_eviction(self):
        p, n, racs = build(racs=True)
        miss(p, n, 0, LINE_HOME1)
        # L2 loses the line but the RAC keeps it: node retains presence.
        n[0].invalidate(LINE_HOME1)
        p.handle_eviction(0, LINE_HOME1, dirty=False)
        assert p.directory.is_cached_by(LINE_HOME1, 0)
        n[0].access(LINE_HOME1, False, False)
        out = p.service_miss(0, LINE_HOME1, False, False)
        assert out.kind is MissKind.LOCAL and out.via_rac

    def test_rac_probe_counted_on_miss(self):
        p, n, racs = build(racs=True)
        miss(p, n, 0, LINE_HOME1)
        assert racs[0].probes == 1 and racs[0].hits == 0

    def test_dirty_in_remote_rac_costs_more(self):
        p, n, racs = build(racs=True)
        miss(p, n, 1, LINE_HOME2, write=True)
        # Push the dirty line out of node 1's L2 into its RAC.
        n[1].invalidate(LINE_HOME2)
        p.handle_eviction(1, LINE_HOME2, dirty=True)
        assert racs[1].holds_dirty(LINE_HOME2)
        out = miss(p, n, 0, LINE_HOME2)
        assert out.kind is MissKind.REMOTE_DIRTY
        assert out.from_remote_rac

    def test_invalidation_reaches_rac(self):
        p, n, racs = build(racs=True)
        miss(p, n, 0, LINE_HOME1)
        assert racs[0].holds(LINE_HOME1)
        miss(p, n, 2, LINE_HOME1, write=True)
        assert not racs[0].holds(LINE_HOME1)
        assert not p.directory.is_cached_by(LINE_HOME1, 0)

    def test_rac_write_hit_needs_ownership(self):
        p, n, racs = build(racs=True)
        miss(p, n, 0, LINE_HOME1)          # shared fill, RAC allocated
        miss(p, n, 2, LINE_HOME1)          # another sharer
        n[0].invalidate(LINE_HOME1)        # drop from L2, keep in RAC
        p.handle_eviction(0, LINE_HOME1, dirty=False)
        n[0].access(LINE_HOME1, True, False)
        out = p.service_miss(0, LINE_HOME1, True, False)
        assert out.kind is MissKind.REMOTE_CLEAN  # 2-hop ownership
        assert out.via_rac and out.upgrade
        assert out.invalidations == 1
        assert p.directory.owner(LINE_HOME1) == 0


class TestValidation:
    def test_rac_count_mismatch_rejected(self):
        nodes = [NodeCaches(1024, 2, l1_size=256, l1_assoc=2)]
        with pytest.raises(ValueError):
            DirectoryProtocol(HomeMap(1, PAGE), nodes, [])
