"""Tests for directory state transitions and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.directory import DirectoryState


class TestBasicTransitions:
    def test_unowned_by_default(self):
        d = DirectoryState()
        assert d.owner(1) is None
        assert d.sharers(1) == frozenset()
        assert not d.is_cached(1)

    def test_add_sharer(self):
        d = DirectoryState()
        d.add_sharer(1, 2)
        d.add_sharer(1, 3)
        assert d.sharers(1) == {2, 3}
        assert d.owner(1) is None
        assert d.is_cached_by(1, 2)

    def test_set_owner_clears_other_sharers(self):
        d = DirectoryState()
        d.add_sharer(1, 2)
        d.add_sharer(1, 3)
        d.set_owner(1, 4)
        assert d.owner(1) == 4
        assert d.sharers(1) == {4}

    def test_clear_owner_demotes_to_sharer(self):
        d = DirectoryState()
        d.set_owner(1, 4)
        d.clear_owner(1)
        assert d.owner(1) is None
        assert d.sharers(1) == {4}

    def test_remove_node(self):
        d = DirectoryState()
        d.add_sharer(1, 2)
        d.add_sharer(1, 3)
        d.remove_node(1, 2)
        assert d.sharers(1) == {3}

    def test_remove_last_sharer_uncaches_line(self):
        d = DirectoryState()
        d.add_sharer(1, 2)
        d.remove_node(1, 2)
        assert not d.is_cached(1)
        assert d.tracked_lines() == 0

    def test_remove_owner_clears_ownership(self):
        d = DirectoryState()
        d.set_owner(1, 2)
        d.remove_node(1, 2)
        assert d.owner(1) is None
        assert not d.is_cached(1)

    def test_remove_absent_node_is_noop(self):
        d = DirectoryState()
        d.remove_node(1, 7)  # no error
        d.add_sharer(1, 2)
        d.remove_node(1, 7)
        assert d.sharers(1) == {2}


class TestInvalidateOthers:
    def test_keeps_keeper(self):
        d = DirectoryState()
        for node in (1, 2, 3):
            d.add_sharer(9, node)
        removed = d.invalidate_others(9, keeper=2)
        assert removed == 2
        assert d.sharers(9) == {2}

    def test_keeper_not_present(self):
        d = DirectoryState()
        d.add_sharer(9, 1)
        removed = d.invalidate_others(9, keeper=5)
        assert removed == 1
        assert not d.is_cached(9)

    def test_uncached_line(self):
        d = DirectoryState()
        assert d.invalidate_others(9, keeper=0) == 0

    def test_removes_foreign_owner(self):
        d = DirectoryState()
        d.set_owner(9, 1)
        d.add_sharer(9, 2)  # unusual but legal transitional state
        d.invalidate_others(9, keeper=2)
        assert d.owner(9) is None
        assert d.sharers(9) == {2}


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["add", "own", "clear", "remove", "invother"]),
            st.integers(0, 3),   # line
            st.integers(0, 3),   # node
        ),
        max_size=120,
    )
)
@settings(max_examples=80, deadline=None)
def test_invariants_hold_under_random_ops(ops):
    d = DirectoryState()
    for op, line, node in ops:
        if op == "add":
            d.add_sharer(line, node)
        elif op == "own":
            d.set_owner(line, node)
        elif op == "clear":
            d.clear_owner(line)
        elif op == "remove":
            d.remove_node(line, node)
        else:
            d.invalidate_others(line, node)
        d.check_invariants()
        # Owner, when present, is the only sharer after set_owner; in
        # general the owner must always be a sharer.
        owner = d.owner(line)
        if owner is not None:
            assert owner in d.sharers(line)
