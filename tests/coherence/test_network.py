"""Tests for the interconnect latency model."""

from repro.coherence.network import InterconnectModel
from repro.coherence.protocol import ServiceOutcome
from repro.params import (
    RAC_HIT_LATENCY,
    RAC_REMOTE_DIRTY_LATENCY,
    IntegrationLevel,
    MissKind,
    latencies,
)

BASE = latencies(IntegrationLevel.BASE, l2_assoc=1)
L2MC = latencies(IntegrationLevel.L2_MC)
FULL = latencies(IntegrationLevel.FULL)


def test_local_latency():
    net = InterconnectModel(BASE)
    assert net.service_latency(ServiceOutcome(MissKind.LOCAL)) == BASE.local
    assert net.counters.local_requests == 1


def test_remote_clean_latency():
    net = InterconnectModel(BASE)
    assert net.service_latency(ServiceOutcome(MissKind.REMOTE_CLEAN)) == 175
    assert net.counters.requests_2hop == 1


def test_remote_dirty_latency():
    net = InterconnectModel(BASE)
    assert net.service_latency(ServiceOutcome(MissKind.REMOTE_DIRTY)) == 275
    assert net.counters.requests_3hop == 1


def test_rac_hit_is_local_memory_speed():
    net = InterconnectModel(FULL)
    out = ServiceOutcome(MissKind.LOCAL, via_rac=True)
    assert net.service_latency(out) == RAC_HIT_LATENCY


def test_dirty_from_remote_rac_pays_extra():
    net = InterconnectModel(FULL)
    out = ServiceOutcome(MissKind.REMOTE_DIRTY, from_remote_rac=True)
    assert net.service_latency(out) == FULL.remote_dirty + (RAC_REMOTE_DIRTY_LATENCY - 200)


def test_upgrade_uses_upgrade_latency_in_l2mc():
    net = InterconnectModel(L2MC)
    data = ServiceOutcome(MissKind.REMOTE_CLEAN)
    upgrade = ServiceOutcome(MissKind.REMOTE_CLEAN, upgrade=True)
    assert net.service_latency(data) == 225      # memory fetch penalized
    assert net.service_latency(upgrade) == 175   # data-less: Base path


def test_upgrade_matches_remote_clean_elsewhere():
    for table in (BASE, FULL):
        net = InterconnectModel(table)
        upgrade = ServiceOutcome(MissKind.REMOTE_CLEAN, upgrade=True)
        assert net.service_latency(upgrade) == table.remote_clean


def test_invalidations_counted():
    net = InterconnectModel(BASE)
    net.service_latency(ServiceOutcome(MissKind.LOCAL, invalidations=3))
    assert net.counters.invalidations == 3


def test_counters_as_dict():
    net = InterconnectModel(BASE)
    net.service_latency(ServiceOutcome(MissKind.REMOTE_CLEAN))
    d = net.counters.as_dict()
    assert d["2hop"] == 1 and d["3hop"] == 0
