"""Tests for home-node assignment and code replication."""

import pytest

from repro.coherence.homemap import HomeMap


class TestRoundRobin:
    def test_pages_distribute_round_robin(self):
        hm = HomeMap(4, page_bytes=256)  # 4 lines per page
        homes = [hm.home_of(line) for line in range(0, 64, 4)]
        assert homes == [i % 4 for i in range(16)]

    def test_lines_within_page_share_home(self):
        hm = HomeMap(4, page_bytes=256)
        assert len({hm.home_of(line) for line in range(4)}) == 1

    def test_uniprocessor_all_local(self):
        hm = HomeMap(1, page_bytes=256)
        assert all(hm.is_local(line, 0) for line in range(100))

    def test_local_fraction_roughly_one_over_n(self):
        hm = HomeMap(8, page_bytes=512)
        lines = range(0, 8 * 512 // 64 * 50, 1)
        local = sum(hm.is_local(line, 3) for line in lines)
        assert abs(local / len(lines) - 1 / 8) < 0.01


class TestReplication:
    def test_replicated_lines_are_always_local(self):
        text = {1, 2, 3}
        hm = HomeMap(8, page_bytes=256, replicated=lambda line: line in text)
        for node in range(8):
            for line in text:
                assert hm.home_of(line, node) == node
                assert hm.is_local(line, node)

    def test_non_replicated_lines_unaffected(self):
        hm_plain = HomeMap(8, page_bytes=256)
        hm_repl = HomeMap(8, page_bytes=256, replicated=lambda line: False)
        for line in range(0, 200, 7):
            assert hm_plain.home_of(line, 2) == hm_repl.home_of(line, 2)


class TestValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            HomeMap(0)

    def test_rejects_sub_line_page(self):
        with pytest.raises(ValueError):
            HomeMap(2, page_bytes=32)

    def test_rejects_non_power_of_two_line_count(self):
        with pytest.raises(ValueError):
            HomeMap(2, page_bytes=192)  # 3 lines per page
