"""Property-based tests for directory state transitions.

The stateful machine in ``test_protocol_stateful.py`` explores the
protocol's whole operation surface; these properties pin the
individual transition rules of :meth:`DirectoryProtocol.service_miss`
/ :meth:`ensure_owner` / :meth:`handle_eviction` directly, for
arbitrary interleavings of reads and writes from arbitrary nodes:

* a serviced **write** leaves the writer as sole owner and sole holder;
* a serviced **read** adds the reader as a sharer and leaves no owner
  unless an owner survives untouched;
* an **upgrade** invalidates every other holder;
* an **eviction** removes the node and writes dirty data back;
* after every transition the directory matches cache contents exactly
  (``check_consistency``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.homemap import HomeMap
from repro.coherence.protocol import DirectoryProtocol
from repro.memsys.hierarchy import HierarchyLevel, NodeCaches
from repro.params import MissKind

NNODES = 4
PAGE = 256

OPS = st.lists(
    st.tuples(
        st.integers(0, NNODES - 1),   # node
        st.integers(0, 31),           # line
        st.booleans(),                # write
    ),
    min_size=1, max_size=80,
)


def build():
    nodes = [
        NodeCaches(2048, 2, l1_size=256, l1_assoc=2, node_id=i)
        for i in range(NNODES)
    ]
    protocol = DirectoryProtocol(HomeMap(NNODES, PAGE), nodes)
    return nodes, protocol


def demand(nodes, protocol, node, line, write):
    """One demand access with full protocol bookkeeping; returns the
    ServiceOutcome when the access missed in the node's hierarchy."""
    result = nodes[node].access(line, write, False)
    if result.victim is not None:
        protocol.handle_eviction(node, result.victim, result.victim_dirty)
    if result.level is HierarchyLevel.MISS:
        return protocol.service_miss(node, line, write, False)
    if write:
        protocol.ensure_owner(node, line)
    return None


@given(OPS)
@settings(max_examples=80, deadline=None)
def test_write_makes_requester_sole_owner(ops):
    nodes, protocol = build()
    for node, line, write in ops:
        demand(nodes, protocol, node, line, write)
        if write:
            directory = protocol.directory
            assert directory.owner(line) == node
            assert directory.sharers(line) == frozenset({node})


@given(OPS)
@settings(max_examples=80, deadline=None)
def test_read_adds_sharer_and_strips_foreign_dirty_ownership(ops):
    nodes, protocol = build()
    for node, line, write in ops:
        before_owner = protocol.directory.owner(line)
        outcome = demand(nodes, protocol, node, line, write)
        if not write:
            directory = protocol.directory
            assert directory.is_cached_by(line, node)
            if (outcome is not None and before_owner is not None
                    and before_owner != node
                    and outcome.kind is MissKind.REMOTE_DIRTY):
                # A dirty owner was downgraded to a plain sharer.
                assert directory.owner(line) is None
                assert directory.is_cached_by(line, before_owner)


@given(OPS)
@settings(max_examples=80, deadline=None)
def test_directory_always_matches_caches(ops):
    nodes, protocol = build()
    for node, line, write in ops:
        demand(nodes, protocol, node, line, write)
        protocol.check_consistency()


@given(OPS)
@settings(max_examples=80, deadline=None)
def test_at_most_one_dirty_holder(ops):
    nodes, protocol = build()
    for node, line, write in ops:
        demand(nodes, protocol, node, line, write)
        holders = [
            i for i, caches in enumerate(nodes)
            if caches.holds_dirty(line)
        ]
        assert len(holders) <= 1
        if holders:
            assert protocol.directory.owner(line) == holders[0]


@given(OPS, st.integers(0, NNODES - 1))
@settings(max_examples=60, deadline=None)
def test_eviction_removes_node_and_collects_dirty_data(ops, victim_node):
    nodes, protocol = build()
    for node, line, write in ops:
        demand(nodes, protocol, node, line, write)
    caches = nodes[victim_node]
    for line in list(caches.l2.resident_lines()):
        dirty = caches.holds_dirty(line)
        before_wb = protocol.writebacks
        caches.invalidate(line)
        protocol.handle_eviction(victim_node, line, dirty)
        assert not protocol.directory.is_cached_by(line, victim_node)
        assert protocol.writebacks == before_wb + (1 if dirty else 0)
    protocol.check_consistency()


@given(OPS)
@settings(max_examples=60, deadline=None)
def test_upgrade_invalidates_every_other_holder(ops):
    nodes, protocol = build()
    for node, line, write in ops:
        demand(nodes, protocol, node, line, write)
    # Force-upgrade node 0 on every line it still caches.
    for line in list(nodes[0].l2.resident_lines()):
        others_before = [
            i for i in protocol.directory.sharers(line) if i != 0
        ]
        outcome = protocol.ensure_owner(0, line)
        assert protocol.directory.owner(line) == 0
        for other in others_before:
            assert not nodes[other].l2.contains(line)
            assert not protocol.directory.is_cached_by(line, other)
        if outcome is not None:
            assert outcome.upgrade
            assert outcome.invalidations == len(others_before)
    protocol.check_consistency()
