"""Exporter tests: Chrome trace JSON, metrics dumps, self-time tables."""

from __future__ import annotations

import csv
import json

from repro.obs import (
    MetricsRegistry,
    SpanRecord,
    chrome_trace_events,
    render_self_time,
    self_time_table,
    total_root_seconds,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.stats.breakdown import MissBreakdown


def spans_fixture():
    """One root with two children (0.6 s self) plus a worker track."""
    return [
        SpanRecord("system.run", 10.0, 2.0, 1, "main", {"engine": "fast"}),
        SpanRecord("engine.fast", 10.1, 1.0, 1, "main"),
        SpanRecord("trace.build", 11.2, 0.4, 1, "main"),
        SpanRecord("campaign.job", 10.5, 0.5, 42, "worker"),
    ]


class TestChromeTrace:
    def test_events_are_microseconds_relative_to_first_span(self):
        events = chrome_trace_events(spans_fixture())
        complete = [e for e in events if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        assert by_name["system.run"]["ts"] == 0.0
        assert by_name["system.run"]["dur"] == 2_000_000.0
        assert by_name["engine.fast"]["ts"] == 100_000.0
        assert by_name["campaign.job"]["ts"] == 500_000.0
        assert by_name["system.run"]["args"] == {"engine": "fast"}
        assert "args" not in by_name["engine.fast"]

    def test_one_process_name_metadata_event_per_pid(self):
        events = chrome_trace_events(spans_fixture())
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {1, 42}
        assert all(e["name"] == "process_name" for e in meta)
        assert meta[0]["args"] == {"name": "repro pid 1"}

    def test_empty_span_list(self):
        assert chrome_trace_events([]) == []

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(spans_fixture(), str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(spans_fixture()) + 2
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "M")


class TestMetricsDumps:
    def registry(self):
        reg = MetricsRegistry()
        reg.count("integrity.checks_run", 2)
        series = reg.new_series(label="8M8w", engine="fast")
        series.sample(5, MissBreakdown(d_local=3, d_remote_dirty=1),
                      i_refs=20, dir_lines=7, rac_probes=4, rac_hits=1)
        series.sample(6, MissBreakdown(d_local=5, d_remote_dirty=2),
                      i_refs=45, dir_lines=8, rac_probes=6, rac_hits=2)
        return reg

    def test_json_dump(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(self.registry(), str(path))
        data = json.loads(path.read_text())
        assert data["counters"] == {"integrity.checks_run": 2}
        (series,) = data["series"]
        assert series["meta"] == {"label": "8M8w", "engine": "fast"}
        assert series["miss_local"] == [3, 2]
        assert series["dirty_share"] == round(2 / 7, 6)

    def test_csv_dump_one_row_per_quantum(self, tmp_path):
        path = tmp_path / "metrics.csv"
        write_metrics_csv(self.registry(), str(path))
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        first = rows[0]
        assert first["series"] == "0"
        assert first["label"] == "8M8w"
        assert first["engine"] == "fast"
        assert first["quantum"] == "5"
        assert first["miss_3hop"] == "1"
        assert first["dir_lines"] == "7"
        assert float(first["rac_hit_rate"]) == 0.25


class TestSelfTime:
    def test_self_time_is_duration_minus_direct_children(self):
        rows = {r["name"]: r for r in self_time_table(spans_fixture())}
        # system.run: 2.0 total, children engine.fast (1.0) and
        # trace.build (0.4) leave 0.6 self.
        assert abs(rows["system.run"]["self"] - 0.6) < 1e-9
        assert abs(rows["engine.fast"]["self"] - 1.0) < 1e-9
        assert rows["campaign.job"]["calls"] == 1

    def test_self_sums_to_root_total(self):
        spans = spans_fixture()
        rows = self_time_table(spans)
        assert abs(sum(r["self"] for r in rows)
                   - total_root_seconds(spans)) < 1e-9
        assert abs(total_root_seconds(spans) - 2.5) < 1e-9

    def test_rows_sorted_by_descending_self_time(self):
        selves = [r["self"] for r in self_time_table(spans_fixture())]
        assert selves == sorted(selves, reverse=True)

    def test_repeated_names_aggregate(self):
        spans = [
            SpanRecord("campaign.job", 0.0, 1.0, 1, "main"),
            SpanRecord("campaign.job", 2.0, 3.0, 1, "main"),
        ]
        (row,) = self_time_table(spans)
        assert row["calls"] == 2
        assert row["total"] == 4.0

    def test_render_self_time_table_text(self):
        text = render_self_time(spans_fixture(), wall_seconds=2.5)
        lines = text.splitlines()
        assert lines[0] == "span self-time profile"
        assert "span" in lines[1] and "self%" in lines[1]
        assert any(line.lstrip().startswith("system.run") for line in lines)
        assert lines[-1].endswith("covers 100.0% of 2.500s wall")
