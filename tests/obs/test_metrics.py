"""Metrics registry unit tests: instruments, quantum series, merging."""

from __future__ import annotations

import json

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    QuantumSeries,
    current_metrics,
    use_metrics,
)
from repro.obs.metrics import HistogramSummary
from repro.params import INSTRS_PER_ILINE
from repro.stats.breakdown import MissBreakdown


class TestInstruments:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("integrity.checks_run")
        reg.count("integrity.checks_run")
        reg.count("jobs", 5)
        assert reg.counters == {"integrity.checks_run": 2, "jobs": 5}

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.gauge("dir.lines", 10)
        reg.gauge("dir.lines", 7)
        assert reg.gauges == {"dir.lines": 7}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (2.0, 4.0, 9.0):
            reg.observe("job.seconds", v)
        hist = reg.histograms["job.seconds"]
        assert hist.count == 3
        assert hist.total == 15.0
        assert hist.mean == 5.0
        assert (hist.min, hist.max) == (2.0, 9.0)

    def test_histogram_merge(self):
        a, b = HistogramSummary(), HistogramSummary()
        a.observe(3.0)
        b.observe(1.0)
        b.observe(8.0)
        a.merge_dict(b.to_dict())
        assert a.count == 3
        assert a.total == 12.0
        assert (a.min, a.max) == (1.0, 8.0)

    def test_histogram_merge_into_empty(self):
        a = HistogramSummary()
        b = HistogramSummary()
        b.observe(4.0)
        a.merge_dict(b.to_dict())
        assert (a.count, a.min, a.max) == (1, 4.0, 4.0)


class TestQuantumSeries:
    def test_samples_store_deltas_of_cumulative_counters(self):
        series = QuantumSeries({"label": "8M8w"})
        misses = MissBreakdown(i_local=2, d_local=3, i_remote=1,
                               d_remote_clean=4, d_remote_dirty=5)
        series.sample(10, misses, i_refs=100, dir_lines=40,
                      rac_probes=20, rac_hits=10)
        misses = MissBreakdown(i_local=3, d_local=5, i_remote=2,
                               d_remote_clean=6, d_remote_dirty=9)
        series.sample(11, misses, i_refs=250, dir_lines=55,
                      rac_probes=30, rac_hits=18)

        assert series.quantum == [10, 11]
        assert series.miss_local == [5, 3]      # (2+3), (3+5)-(2+3)
        assert series.miss_2hop == [5, 3]       # (1+4), (2+6)-(1+4)
        assert series.miss_3hop == [5, 4]
        assert series.i_refs == [100, 150]
        assert series.dir_lines == [40, 55]     # gauge, not a delta
        assert series.rac_probes == [20, 10]
        assert series.rac_hits == [10, 8]

    def test_totals_match_final_cumulative_counters(self):
        series = QuantumSeries()
        final = MissBreakdown(i_local=7, d_local=1, i_remote=2,
                              d_remote_clean=3, d_remote_dirty=8)
        series.sample(0, MissBreakdown(i_local=4), i_refs=10, dir_lines=1)
        series.sample(1, final, i_refs=30, dir_lines=2)
        assert series.total_misses == final.total
        assert sum(series.miss_3hop) == final.d_remote_dirty
        assert series.dirty_share == final.d_remote_dirty / final.total

    def test_mpki_and_rac_hit_rate(self):
        series = QuantumSeries()
        series.sample(0, MissBreakdown(d_local=6), i_refs=100, dir_lines=0,
                      rac_probes=8, rac_hits=2)
        series.sample(1, MissBreakdown(d_local=6), i_refs=200, dir_lines=0,
                      rac_probes=8, rac_hits=2)
        mpki = series.mpki()
        assert mpki[0] == 1000.0 * 6 / (100 * INSTRS_PER_ILINE)
        assert mpki[1] == 0.0  # no misses that quantum
        assert series.rac_hit_rate() == [0.25, 0.0]

    def test_dirty_share_empty_series(self):
        assert QuantumSeries().dirty_share == 0.0

    def test_to_dict_from_dict_round_trip(self):
        series = QuantumSeries({"label": "x", "l2_assoc": 8})
        series.sample(3, MissBreakdown(d_local=2, d_remote_dirty=1),
                      i_refs=50, dir_lines=9, rac_probes=4, rac_hits=1)
        data = json.loads(json.dumps(series.to_dict()))
        back = QuantumSeries.from_dict(data)
        assert back.meta == series.meta
        assert back.quantum == series.quantum
        for field in QuantumSeries.DELTA_FIELDS + ("dir_lines",):
            assert getattr(back, field) == getattr(series, field)
        assert back.dirty_share == series.dirty_share


class TestRegistryMerging:
    def test_absorb_merges_everything(self):
        worker = MetricsRegistry()
        worker.count("integrity.checks_run", 3)
        worker.gauge("trace.refs", 1000)
        worker.observe("job.seconds", 2.0)
        worker.new_series(label="w").sample(
            0, MissBreakdown(d_local=1), i_refs=5, dir_lines=2)

        parent = MetricsRegistry()
        parent.count("integrity.checks_run", 1)
        parent.observe("job.seconds", 6.0)
        parent.absorb(json.loads(json.dumps(worker.to_dict())))

        assert parent.counters["integrity.checks_run"] == 4
        assert parent.gauges["trace.refs"] == 1000
        assert parent.histograms["job.seconds"].count == 2
        assert parent.histograms["job.seconds"].mean == 4.0
        assert len(parent.series) == 1
        assert parent.series[0].meta == {"label": "w"}
        assert parent.series[0].miss_local == [1]

    def test_registry_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.new_series(label="x").sample(
            0, MissBreakdown(), i_refs=0, dir_lines=0)
        json.dumps(reg.to_dict())


class TestNullMetrics:
    def test_null_metrics_discards(self):
        NULL_METRICS.count("a")
        NULL_METRICS.gauge("b", 1)
        NULL_METRICS.observe("c", 2.0)
        NULL_METRICS.absorb({"counters": {"a": 1}})
        assert NULL_METRICS.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}, "series": [],
        }
        assert NULL_METRICS.enabled is False

    def test_use_metrics_installs_and_restores(self):
        reg = MetricsRegistry()
        assert current_metrics() is NULL_METRICS
        with use_metrics(reg):
            assert current_metrics() is reg
        assert current_metrics() is NULL_METRICS
