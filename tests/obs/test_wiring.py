"""Observability wiring: engines, checker, campaign, and the CLI.

The contract under test has two halves.  *Completeness*: with a tracer
and registry installed, every instrumented layer — ``System.run``, the
replay engines' phases, the trace generator, the integrity checker,
the campaign executor (including worker processes) — shows up in the
spans and metrics.  *Transparency*: enabling all of it changes no
simulated value (the differential identity ``fast == vectorized ==
vectorized-mp`` holds with observability on), and the per-quantum
series totals reconcile exactly with the end-of-run aggregates.
"""

from __future__ import annotations

import json

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import System, simulate
from repro.experiments.cli import main
from repro.obs import (
    MetricsRegistry,
    Tracer,
    use_metrics,
    use_tracer,
)
from repro.params import KB
from repro.runner import CampaignRunner, SimJob, TraceSpec
from repro.trace.generator import build_trace

#: Matches tests/conftest.py TEST_SCALE, the size of the shared traces.
SCALE = 128


def base_machine(ncpus=1, **kw):
    kw.setdefault("scale", SCALE)
    return MachineConfig.base(ncpus, **kw)


def stream_machine(ncpus=8):
    """A RAC + OOO config: forces the staged pipeline's stream mode."""
    return MachineConfig.fully_integrated(
        ncpus, rac_size=256 * KB, cpu_model="ooo", scale=SCALE)


def traced_run(machine, trace, engine=None, check="off"):
    """Simulate under a fresh tracer+registry; return (result, t, m)."""
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        if engine is None:
            result = simulate(machine, trace, check=check)
        else:
            result = System(machine, engine=engine, check=check).run(trace)
    return result, tracer, registry


class TestTransparency:
    """Observability on == observability off, value for value."""

    def test_uniprocessor_engines_identical_with_obs_on(self, uni_trace):
        machine = base_machine(1)
        plain = simulate(machine, uni_trace).to_dict()
        for engine in ("fast", "vectorized"):
            traced = traced_run(machine, uni_trace, engine)[0].to_dict()
            assert traced == plain, engine

    def test_mp_engines_identical_with_obs_on(self, mp8_trace):
        machine = base_machine(8)
        plain = simulate(machine, mp8_trace).to_dict()
        for engine in ("fast", "vectorized-mp"):
            traced = traced_run(machine, mp8_trace, engine)[0].to_dict()
            assert traced == plain, engine

    def test_mp_stream_mode_identical_with_obs_on(self, mp8_trace):
        # RAC + OOO forces the staged pipeline through its stream mode.
        machine = stream_machine()
        plain = System(machine, engine="fast").run(mp8_trace).to_dict()
        traced = traced_run(machine, mp8_trace, "vectorized-mp")[0].to_dict()
        assert traced == plain


class TestEngineSpans:
    def test_system_and_engine_spans(self, uni_trace):
        machine = base_machine(1)
        _, tracer, _ = traced_run(machine, uni_trace, "fast")
        names = [s.name for s in tracer.spans]
        assert "system.run" in names
        assert "engine.fast" in names
        run_span = next(s for s in tracer.spans if s.name == "system.run")
        assert run_span.args["engine"] == "fast"
        assert run_span.args["label"] == machine.label

    def test_vectorized_uni_phase_spans(self, uni_trace):
        _, tracer, _ = traced_run(base_machine(1), uni_trace, "vectorized")
        names = {s.name for s in tracer.spans}
        assert {"uni.views", "uni.walk", "uni.finalize"} <= names

    def test_mp_batch_phase_spans_nest_in_engine(self, mp8_trace):
        _, tracer, _ = traced_run(base_machine(8), mp8_trace,
                                  "vectorized-mp")
        spans = {s.name: s for s in tracer.spans}
        for phase in ("mp.census", "mp.walks", "mp.coherence", "mp.timing",
                      "mp.materialize"):
            assert phase in spans, phase
        engine = spans["engine.vectorized-mp"]
        for phase in ("mp.walks", "mp.coherence", "mp.timing"):
            span = spans[phase]
            assert span.ts >= engine.ts
            assert span.ts + span.dur <= engine.ts + engine.dur + 1e-6

    def test_mp_stream_phase_spans(self, mp8_trace):
        machine = stream_machine()
        _, tracer, _ = traced_run(machine, mp8_trace, "vectorized-mp")
        spans = {s.name: s for s in tracer.spans}
        assert spans["mp.walks"].args == {"mode": "stream",
                                          "coherence": "inline"}
        assert spans["mp.timing"].args == {"mode": "stream"}
        assert "mp.coherence" not in spans

    def test_trace_build_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            build_trace(ncpus=1, scale=SCALE, txns=10, warmup_txns=5,
                        seed=3)
        (span,) = [s for s in tracer.spans if s.name == "trace.build"]
        assert span.args["ncpus"] == 1
        assert span.args["scale"] == SCALE


class TestQuantumSeriesWiring:
    @pytest.mark.parametrize("engine", ["fast", "vectorized-mp"])
    def test_series_totals_match_end_of_run_breakdown(self, mp8_trace,
                                                      engine):
        result, _, registry = traced_run(base_machine(8), mp8_trace, engine)
        (series,) = registry.series
        misses = result.misses
        assert series.total_misses == misses.total
        assert sum(series.miss_local) == misses.i_local + misses.d_local
        assert sum(series.miss_2hop) == (misses.i_remote
                                         + misses.d_remote_clean)
        assert sum(series.miss_3hop) == misses.d_remote_dirty
        assert series.dirty_share == misses.dirty_share
        assert series.meta["engine"] == engine
        assert series.meta["ncpus"] == 8

    def test_fast_and_mp_series_are_identical(self, mp8_trace):
        machine = base_machine(8)
        fast = traced_run(machine, mp8_trace, "fast")[2].series[0]
        staged = traced_run(machine, mp8_trace, "vectorized-mp")[2].series[0]
        for field in ("quantum", "miss_local", "miss_2hop", "miss_3hop",
                      "i_refs"):
            assert getattr(fast, field) == getattr(staged, field), field
        # Batch mode's directory gauge covers coherence-tracked shared
        # lines only (private lines bypass the directory until the run
        # materializes): a positive lower bound on the live occupancy.
        for flat, live in zip(staged.dir_lines, fast.dir_lines):
            assert 0 < flat <= live

    def test_only_measured_quanta_are_sampled(self, mp8_trace):
        _, _, registry = traced_run(base_machine(8), mp8_trace, "fast")
        (series,) = registry.series
        assert len(series) == len(mp8_trace.quanta) - mp8_trace.warmup_quanta
        assert series.quantum[0] == mp8_trace.warmup_quanta

    def test_rac_columns_populated_in_stream_mode(self, mp8_trace):
        machine = stream_machine()
        result, _, registry = traced_run(machine, mp8_trace,
                                         "vectorized-mp")
        (series,) = registry.series
        assert sum(series.rac_probes) > 0
        assert sum(series.rac_hits) == result.rac.hits

    def test_vectorized_uni_engine_opens_no_series(self, uni_trace):
        # The numpy kernel replays out of trace order: no per-quantum
        # sampling point exists, so it must not open a series.
        _, _, registry = traced_run(base_machine(1), uni_trace, "vectorized")
        assert registry.series == []

    def test_disabled_metrics_build_no_sampler(self, uni_trace):
        machine = base_machine(1)
        system = System(machine, engine="fast")
        system.run(uni_trace)
        assert system._sampler is None


class TestIntegrityMetrics:
    def test_checker_emits_span_and_counters(self, uni_trace):
        _, tracer, registry = traced_run(base_machine(1), uni_trace, "fast",
                                         check="end-of-run")
        assert registry.counters["integrity.checks_run"] >= 1
        assert "integrity.violations" not in registry.counters
        checks = [s for s in tracer.spans if s.name == "integrity.check"]
        assert checks
        assert all(s.args == {"tier": "end-of-run"} for s in checks)

    def test_per_quantum_tier_counts_every_walk(self, uni_trace):
        _, tracer, registry = traced_run(base_machine(1), uni_trace,
                                         "general", check="per-quantum")
        walks = registry.counters["integrity.checks_run"]
        assert walks > 1
        spans = [s for s in tracer.spans if s.name == "integrity.check"]
        assert len(spans) == walks
        assert spans[0].args == {"tier": "per-quantum"}


class TestCampaignSpans:
    def jobs(self, n=2):
        spec = TraceSpec(ncpus=1, scale=SCALE, txns=20, seed=11)
        return [
            SimJob(spec=spec,
                   machine=base_machine(1, l2_size=(i + 1) * 1024 * 1024),
                   check="off")
            for i in range(n)
        ]

    def test_serial_jobs_open_tagged_spans(self):
        jobs = self.jobs()
        tracer = Tracer()
        with use_tracer(tracer), CampaignRunner(jobs=1) as runner:
            runner.begin_batch("figX")
            runner.run_jobs(jobs)
        spans = [s for s in tracer.spans if s.name == "campaign.job"]
        assert len(spans) == len(jobs)
        assert {s.args["hash"] for s in spans} == {
            j.content_hash() for j in jobs
        }
        assert all(s.args["source"] == "simulated" for s in spans)
        assert all(s.args["engine"] == "vectorized" for s in spans)

    def test_cache_hits_open_cache_tagged_spans(self, tmp_path):
        from repro.runner import ResultCache

        jobs = self.jobs()
        cache = ResultCache(str(tmp_path))
        with CampaignRunner(jobs=1, cache=cache) as runner:
            runner.run_jobs(jobs)  # cold, untraced
        tracer = Tracer()
        with use_tracer(tracer), CampaignRunner(jobs=1, cache=cache) as warm:
            warm.run_jobs(jobs)
        spans = [s for s in tracer.spans if s.name == "campaign.job"]
        assert len(spans) == len(jobs)
        assert all(s.args["source"] == "cache" for s in spans)

    def test_parallel_workers_ship_spans_and_metrics_back(self):
        jobs = self.jobs(2)
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            with CampaignRunner(jobs=2) as runner:
                runner.begin_batch("figX")
                results = runner.run_jobs(jobs)
        assert len(results) == 2
        spans = [s for s in tracer.spans if s.name == "campaign.job"]
        assert len(spans) == 2
        # Worker spans keep the worker's identity for per-process
        # Perfetto tracks.
        assert all(s.tid == "worker" for s in spans)
        assert all(s.pid != tracer.pid for s in spans)
        # The workers' engine spans and quantum series came along too.
        assert sum(1 for s in tracer.spans if s.name == "system.run") == 2
        assert registry.series == []  # vectorized uni: aggregates only

    def test_untraced_parallel_run_ships_no_payload(self):
        with CampaignRunner(jobs=2) as runner:
            results = runner.run_jobs(self.jobs(2))
        assert len(results) == 2


class TestCLI:
    def test_fig8_quick_metrics_dump_shows_dirty_share_rising(
            self, tmp_path, capsys):
        out = tmp_path / "fig8.json"
        assert main(["fig8", "--quick", "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        # One series per fig8 machine configuration, all 8 CPUs.
        assert all(s["meta"]["ncpus"] == 8 for s in data["series"])
        # The paper's sharing story, time-resolved: at fixed 8-way
        # associativity, growing the L2 converts 2-hop clean misses
        # into 3-hop dirty misses, so the dirty share rises strictly
        # with L2 size.
        eight_way = sorted(
            (s for s in data["series"] if s["meta"]["l2_assoc"] == 8),
            key=lambda s: s["meta"]["l2_bytes"],
        )
        assert len(eight_way) >= 3
        shares = [s["dirty_share"] for s in eight_way]
        assert shares == sorted(shares)
        assert len(set(shares)) == len(shares), shares
        assert all(len(s["quantum"]) > 0 for s in eight_way)

    def test_metrics_csv_suffix_selects_csv(self, tmp_path, capsys):
        out = tmp_path / "fig8.csv"
        assert main(["fig8", "--quick", "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        header = out.read_text().splitlines()[0]
        assert header.startswith("series,label,engine,quantum,miss_local")

    def test_profile_verb_prints_table_and_writes_trace(self, tmp_path,
                                                        capsys):
        trace_out = tmp_path / "fig6.trace.json"
        assert main(["profile", "fig6", "--quick",
                     "--trace-out", str(trace_out)]) == 0
        printed = capsys.readouterr().out
        assert "span self-time profile" in printed
        assert "engine.vectorized-mp" in printed
        # The span tree accounts for (nearly) the whole run: the
        # acceptance bar is coverage within 10% of measured wall time.
        footer = next(line for line in printed.splitlines()
                      if "of" in line and "wall" in line)
        coverage = float(footer.split("covers")[1].split("%")[0])
        assert coverage >= 90.0, footer
        payload = json.loads(trace_out.read_text())
        events = payload["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "system.run"
                   for e in events)
        assert any(e["ph"] == "M" for e in events)

    def test_profile_requires_known_target(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile"])
        with pytest.raises(SystemExit):
            main(["profile", "nope"])
        with pytest.raises(SystemExit):
            main(["fig5", "fig6"])
        capsys.readouterr()

    def test_plain_figure_run_stays_on_null_observability(self, capsys):
        from repro.obs import NULL_METRICS, NULL_TRACER, current_metrics, \
            current_tracer

        assert main(["fig3"]) == 0
        capsys.readouterr()
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is NULL_METRICS


class TestStreamChunkSpans:
    """The streaming replay path emits one ``stream.chunk`` span per
    consumed chunk — and none at all for materialized traces."""

    CHUNK = 4

    def _streamed_spans(self, trace, machine, engine):
        from repro.trace.stream import StreamedTrace

        tracer = Tracer()
        with use_tracer(tracer):
            result = System(machine, engine=engine).run(
                StreamedTrace.from_trace(trace, self.CHUNK))
        chunks = [s for s in tracer.spans if s.name == "stream.chunk"]
        return result, chunks

    def test_chunk_spans_cover_the_whole_stream(self, uni_trace):
        machine = base_machine(1)
        result, chunks = self._streamed_spans(uni_trace, machine, "fast")
        n = len(uni_trace.quanta)
        expected = -(-n // self.CHUNK)
        assert len(chunks) == expected
        assert [s.args["chunk"] for s in chunks] == list(range(expected))
        # Spans account for every quantum and reference, contiguously.
        assert sum(s.args["quanta"] for s in chunks) == n
        assert sum(s.args["refs"] for s in chunks) == uni_trace.total_refs
        start = 0
        for span in chunks:
            assert span.args["start"] == start
            assert span.args["engine"] == "fast"
            assert span.dur >= 0.0
            start += span.args["quanta"]
        # Transparency: streamed-with-spans equals plain materialized.
        assert result.to_dict() == simulate(machine, uni_trace).to_dict()

    def test_general_engine_tags_its_chunk_spans(self, uni_trace):
        machine = base_machine(1)
        _, chunks = self._streamed_spans(uni_trace, machine, "general")
        assert chunks
        assert {s.args["engine"] for s in chunks} == {"general"}

    def test_materialized_replay_emits_no_chunk_spans(self, uni_trace):
        tracer = Tracer()
        with use_tracer(tracer):
            simulate(base_machine(1), uni_trace)
        assert not any(s.name == "stream.chunk" for s in tracer.spans)

    def test_disabled_tracer_emits_no_chunk_spans(self, uni_trace):
        from repro.trace.stream import StreamedTrace

        result = System(base_machine(1), engine="fast").run(
            StreamedTrace.from_trace(uni_trace, self.CHUNK))
        assert result.to_dict() == simulate(
            base_machine(1), uni_trace).to_dict()
