"""Span tracer unit tests: recording, nesting, stitching, null cost."""

from __future__ import annotations

import pickle

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    assign_parents,
    current_tracer,
    use_tracer,
)
from repro.obs.tracer import _SHARED_NULL_SPAN


class TestSpanRecording:
    def test_span_records_name_interval_and_args(self):
        tracer = Tracer()
        with tracer.span("unit.outer", figure="fig5", n=3):
            pass
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "unit.outer"
        assert span.dur >= 0.0
        assert span.args == {"figure": "fig5", "n": 3}
        assert span.pid > 0
        assert span.tid == "main"

    def test_spans_appended_on_exit_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-9

    def test_span_recorded_even_when_body_raises(self):
        tracer = Tracer()
        try:
            with tracer.span("will.raise"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert [s.name for s in tracer.spans] == ["will.raise"]

    def test_add_span_records_synthetic_interval(self):
        tracer = Tracer(pid=7, tid="worker")
        tracer.add_span("mp.walks", 10.0, 2.5, mode="batch")
        span = tracer.spans[0]
        assert (span.name, span.ts, span.dur) == ("mp.walks", 10.0, 2.5)
        assert span.args == {"mode": "batch"}
        assert (span.pid, span.tid) == (7, "worker")


class TestNesting:
    def test_assign_parents_reconstructs_with_block_nesting(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a.1"):
                    pass
            with tracer.span("b"):
                pass
        spans = tracer.spans  # exit order: a.1, a, b, root
        parents = assign_parents(spans)
        by_name = {s.name: i for i, s in enumerate(spans)}
        assert parents[by_name["root"]] is None
        assert parents[by_name["a"]] == by_name["root"]
        assert parents[by_name["b"]] == by_name["root"]
        assert parents[by_name["a.1"]] == by_name["a"]

    def test_synthetic_back_to_back_spans_nest_under_parent(self):
        # The engines lay per-phase aggregates end-to-end inside the
        # engine span; the float-headroom epsilon must keep the last
        # one (whose end can equal the parent's end) a child.
        spans = [
            SpanRecord("engine", 0.0, 3.0, 1, "main"),
            SpanRecord("walks", 0.0, 2.0, 1, "main"),
            SpanRecord("timing", 2.0, 1.0, 1, "main"),
        ]
        parents = assign_parents(spans)
        assert parents[0] is None
        assert parents[1] == 0
        assert parents[2] == 0

    def test_tracks_are_independent_per_pid_tid(self):
        spans = [
            SpanRecord("parent", 0.0, 10.0, 1, "main"),
            SpanRecord("worker.job", 1.0, 2.0, 2, "worker"),
        ]
        parents = assign_parents(spans)
        # Same wall-clock window, different process: not a child.
        assert parents[1] is None


class TestStitching:
    def test_to_dicts_absorb_round_trip(self):
        worker = Tracer(pid=1234, tid="worker")
        worker.add_span("campaign.job", 5.0, 0.5, job="1M4w")
        payload = worker.to_dicts()
        # The payload must survive the process boundary.
        payload = pickle.loads(pickle.dumps(payload))

        parent = Tracer()
        with parent.span("local"):
            pass
        parent.absorb(payload)
        absorbed = parent.spans[-1]
        assert absorbed.name == "campaign.job"
        assert (absorbed.pid, absorbed.tid) == (1234, "worker")
        assert absorbed.args == {"job": "1M4w"}
        assert absorbed.to_dict() == worker.spans[0].to_dict()

    def test_from_dict_defaults(self):
        span = SpanRecord.from_dict({"name": "x", "ts": 1.0, "dur": 2.0})
        assert (span.pid, span.tid, span.args) == (0, "main", {})


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", k=1):
            pass
        NULL_TRACER.add_span("more", 0.0, 1.0)
        NULL_TRACER.absorb([{"name": "x", "ts": 0.0, "dur": 1.0}])
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.to_dicts() == []

    def test_null_span_is_one_shared_object(self):
        # The zero-overhead contract: a disabled site allocates nothing.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.span("a") is _SHARED_NULL_SPAN

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NullTracer.enabled is False


class TestInstall:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        try:
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is NULL_TRACER
