"""Chaos harness: every worker fault class heals to identical output.

The contract under test is the headline robustness claim: a campaign
whose workers crash, hang, lie, or stall produces *bit-identical*
figures to a fault-free run — the supervisor absorbs the fault, the
resilience counters record it, and nothing else changes.  The resume
path gets the harshest treatment: a campaign SIGKILLed mid-flight must
finish from its journal with the same output.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.common import Settings
from repro.integrity import (
    FaultInjectionError,
    WorkerFaultKind,
    WorkerFaultPlan,
    parse_worker_faults,
)
from repro.integrity.faults import EVERY_JOB

TINY = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)


def chaos_campaign(tmp_path, spec, **kw):
    token_dir = str(tmp_path / "tokens")
    os.makedirs(token_dir, exist_ok=True)
    return run_campaign(
        ("fig5",), TINY, jobs=2, cache_dir=None, progress=False,
        chaos=(parse_worker_faults(spec), token_dir), **kw,
    )


@pytest.fixture(scope="module")
def baseline():
    """The fault-free fig5 campaign every chaos run must reproduce."""
    return run_campaign(("fig5",), TINY, jobs=1, cache_dir=None,
                        progress=False)


class TestFaultSpecParsing:
    def test_full_grammar(self):
        plans = parse_worker_faults("crash@0,hang@1~120,slow@*~0.1:3")
        assert [p.kind for p in plans] == [
            WorkerFaultKind.CRASH, WorkerFaultKind.HANG, WorkerFaultKind.SLOW]
        assert plans[1].delay == 120.0
        assert plans[2].at_job == EVERY_JOB
        assert plans[2].times == 3

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultInjectionError):
            parse_worker_faults("")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            parse_worker_faults("meltdown@0")

    def test_malformed_tokens_rejected(self):
        for bad in ("crash", "crash@x", "hang@0~fast", "slow@0:lots"):
            with pytest.raises(FaultInjectionError):
                parse_worker_faults(bad)

    def test_plan_matching(self):
        assert WorkerFaultPlan("crash", at_job=2).matches(2)
        assert not WorkerFaultPlan("crash", at_job=2).matches(1)
        assert WorkerFaultPlan("slow", at_job=EVERY_JOB).matches(17)


class TestFaultClassesHeal:
    """One campaign per fault class: identical output, counters fired."""

    def assert_identical(self, report, baseline):
        assert report.ok, report.failures
        assert report.figures == baseline.figures

    def test_crash_is_respawned(self, tmp_path, baseline):
        report = chaos_campaign(tmp_path, "crash@0")
        self.assert_identical(report, baseline)
        r = report.telemetry.resilience
        assert r.crashes >= 1
        assert r.respawns >= 1

    def test_hang_is_timed_out_and_retried(self, tmp_path, baseline):
        report = chaos_campaign(tmp_path, "hang@0~600", job_timeout=2.0)
        self.assert_identical(report, baseline)
        r = report.telemetry.resilience
        assert r.timeouts >= 1
        assert r.retries >= 1

    def test_corrupt_result_fails_checksum_and_retries(self, tmp_path,
                                                       baseline):
        report = chaos_campaign(tmp_path, "corrupt-result@0")
        self.assert_identical(report, baseline)
        r = report.telemetry.resilience
        assert r.corrupt_results >= 1
        assert r.retries >= 1

    def test_transient_raise_is_retried(self, tmp_path, baseline):
        report = chaos_campaign(tmp_path, "transient-raise@0")
        self.assert_identical(report, baseline)
        assert report.telemetry.resilience.retries >= 1

    def test_slow_workers_change_nothing_but_time(self, tmp_path, baseline):
        report = chaos_campaign(tmp_path, "slow@*~0.02:4")
        self.assert_identical(report, baseline)
        assert report.telemetry.resilience.failures == 0

    def test_fault_storm_still_heals(self, tmp_path, baseline):
        report = chaos_campaign(
            tmp_path, "crash@0,transient-raise@1,corrupt-result@2,slow@3~0.05")
        self.assert_identical(report, baseline)
        assert report.telemetry.resilience.eventful


class TestTerminalFailure:
    def test_unretryable_storm_reports_instead_of_raising(self, tmp_path,
                                                          baseline):
        # Every job raises on every attempt and no retries are allowed:
        # the campaign must still *complete*, carrying a structured
        # per-job report instead of an exception.
        report = chaos_campaign(tmp_path, "transient-raise@*:9999",
                                max_retries=0)
        assert not report.ok
        failures = report.failures["fig5"]
        assert len(failures) == report.telemetry.resilience.failures > 0
        assert all(f["kind"] == "error" for f in failures)
        assert all(f["attempts"] == 1 for f in failures)
        assert "FAILED" in report.figures[0][1]

    def test_failure_report_payload(self, tmp_path):
        out = tmp_path / "report.json"
        report = chaos_campaign(tmp_path, "transient-raise@*:9999",
                                max_retries=0, failure_report=str(out))
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        assert payload["failures"]["fig5"] == report.failures["fig5"]
        assert payload["resilience"]["failures"] > 0


RESUME_DRIVER = """
import sys
from repro.experiments.campaign import run_campaign
from repro.experiments.common import Settings
from repro.integrity.faults import parse_worker_faults

journal, token_dir = sys.argv[1], sys.argv[2]
run_campaign(
    ("fig5",), Settings(scale=256, uni_txns=15, mp_txns=30, seed=3),
    jobs=1, cache_dir=None, progress=False, resume=journal,
    chaos=(parse_worker_faults("slow@*~0.4:9999"), token_dir),
)
"""


class TestKillAndResume:
    def test_sigkill_mid_campaign_resumes_bit_identical(self, tmp_path,
                                                        baseline):
        journal = tmp_path / "run.journal"
        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_root)

        # Launch a campaign whose jobs are artificially slowed, wait
        # until at least two completions hit the journal, then SIGKILL
        # the whole process — the harshest interruption there is.
        proc = subprocess.Popen(
            [sys.executable, "-c", RESUME_DRIVER, str(journal),
             str(token_dir)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if journal.exists() and \
                        journal.read_bytes().count(b"\n") >= 3:
                    break  # header + >=2 durable entries
                if proc.poll() is not None:
                    break  # finished whole: resume still must serve all
                time.sleep(0.05)
            else:
                pytest.fail("journal never accumulated two entries")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        # Resume without chaos: journaled jobs are served, the rest
        # simulate, and the figure is identical to the clean baseline.
        resumed = run_campaign(("fig5",), TINY, jobs=2, cache_dir=None,
                               progress=False, resume=str(journal))
        assert resumed.ok
        assert resumed.telemetry.journal_hits >= 2
        assert resumed.journal_stats.entries_loaded >= 2
        assert (resumed.telemetry.journal_hits
                + resumed.telemetry.simulated
                + resumed.telemetry.cache_hits
                == resumed.telemetry.total_jobs)
        assert resumed.figures == baseline.figures

        # A third pass serves everything from the journal.
        again = run_campaign(("fig5",), TINY, jobs=2, cache_dir=None,
                             progress=False, resume=str(journal))
        assert again.telemetry.simulated == 0
        assert again.telemetry.journal_hits == again.telemetry.total_jobs
        assert again.figures == baseline.figures
