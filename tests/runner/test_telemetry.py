"""Campaign telemetry: golden renders, serialization, progress/ETA."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.runner.telemetry import (
    NO_ANSI_ENV,
    SOURCE_CACHE,
    SOURCE_JOURNAL,
    SOURCE_SIMULATED,
    CampaignTelemetry,
    NullProgress,
    ProgressPrinter,
    ansi_enabled,
)


def sample_telemetry() -> CampaignTelemetry:
    t = CampaignTelemetry(workers=4)
    t.started_at = 100.0
    t.record("1M4w", "fig5", "aaa", 2.0, SOURCE_SIMULATED, "vectorized")
    t.record("2M4w", "fig5", "bbb", 0.0, SOURCE_CACHE, "vectorized")
    t.record("8M8w", "fig5", "ccc", 4.0, SOURCE_SIMULATED, "fast")
    t.record("All 2M8w", "fig8", "ddd", 0.0, SOURCE_CACHE, "vectorized-mp")
    t.end_batch("fig5", 6.5)
    t.end_batch("fig8", 0.1)
    return t


@pytest.fixture
def frozen_wall(monkeypatch):
    """Pin the telemetry module's clock so wall time is exactly 1.3 s."""
    import repro.runner.telemetry as mod

    monkeypatch.setattr(mod.time, "perf_counter", lambda: 101.3)


class TestAggregates:
    def test_counts_and_rates(self):
        t = sample_telemetry()
        assert t.total_jobs == 4
        assert t.simulated == 2
        assert t.cache_hits == 2
        assert t.hit_rate == 0.5
        assert t.simulated_seconds == 6.0
        assert t.mean_sim_seconds() == 3.0

    def test_empty_telemetry(self):
        t = CampaignTelemetry()
        assert t.hit_rate == 0.0
        assert t.mean_sim_seconds() == 0.0


class TestGoldenRender:
    def test_summary_line(self, frozen_wall):
        assert sample_telemetry().summary_line() == (
            "campaign summary: jobs=4 simulated=2 cache_hits=2 "
            "hit_rate=50% workers=4 wall=1.3s"
        )

    def test_render_table(self, frozen_wall):
        assert sample_telemetry().render() == (
            "campaign telemetry\n"
            "  batch         jobs   sim served     wall        engine\n"
            "  fig5             3     2      1     6.5s    vectorized\n"
            "  fig8             1     0      1     0.1s vectorized-mp\n"
            "campaign summary: jobs=4 simulated=2 cache_hits=2 "
            "hit_rate=50% workers=4 wall=1.3s"
        )

    def test_summary_stays_quiet_without_events(self, frozen_wall):
        # A clean campaign shows no journal or resilience fields at all.
        line = sample_telemetry().summary_line()
        assert "journal" not in line
        assert "retries" not in line

    def test_summary_shows_journal_and_resilience_events(self, frozen_wall):
        t = sample_telemetry()
        t.record("1M8w", "fig8", "eee", 0.0, SOURCE_JOURNAL, "fast")
        t.resilience.retries = 2
        t.resilience.timeouts = 1
        t.resilience.respawns = 1
        assert t.journal_hits == 1
        assert t.summary_line().endswith(
            "journal_hits=1 retries=2 timeouts=1 respawns=1 failures=0"
        )

    def test_dominant_engine_ties_break_alphabetically(self, frozen_wall):
        t = CampaignTelemetry()
        t.record("a", "figX", "h1", 1.0, SOURCE_SIMULATED, "vectorized")
        t.record("b", "figX", "h2", 1.0, SOURCE_SIMULATED, "fast")
        t.end_batch("figX", 2.0)
        row = t.render().splitlines()[2]
        assert row.endswith(" fast")

    def test_batch_without_records_renders_dash(self, frozen_wall):
        t = CampaignTelemetry()
        t.end_batch("empty", 0.0)
        row = t.render().splitlines()[2]
        assert row.split() == ["empty", "0", "0", "0", "0.0s", "-"]


class TestToDict:
    def test_json_round_trip(self, frozen_wall):
        data = json.loads(json.dumps(sample_telemetry().to_dict()))
        assert data["workers"] == 4
        assert data["jobs"] == 4
        assert data["simulated"] == 2
        assert data["cache_hits"] == 2
        assert data["hit_rate"] == 0.5
        assert data["simulated_seconds"] == 6.0
        assert data["wall_seconds"] == 1.3
        assert data["batches"] == [
            {"name": "fig5", "seconds": 6.5},
            {"name": "fig8", "seconds": 0.1},
        ]
        assert len(data["records"]) == 4
        assert data["records"][0] == {
            "label": "1M4w", "batch": "fig5", "job_hash": "aaa",
            "seconds": 2.0, "source": "simulated", "engine": "vectorized",
        }


class TestProgressPrinter:
    def printer(self):
        telemetry = CampaignTelemetry(workers=2)
        stream = io.StringIO()
        return ProgressPrinter(telemetry, stream), telemetry, stream

    def test_job_lines_and_eta(self):
        printer, telemetry, stream = self.printer()
        printer.start_batch("fig5", 3, expected_sim=3)
        printer.job_done(
            telemetry.record("a", "fig5", "h1", 4.0, SOURCE_SIMULATED))
        lines = stream.getvalue().splitlines()
        # 2 jobs left, both expected to simulate, mean 4 s over 2
        # workers -> 4.0 s.
        assert lines[0] == "  [fig5 1/3] a: 4.00s (simulated) | eta 4.0s"

    def test_last_job_has_no_eta(self):
        printer, telemetry, stream = self.printer()
        printer.start_batch("fig5", 1, expected_sim=1)
        printer.job_done(
            telemetry.record("a", "fig5", "h1", 4.0, SOURCE_SIMULATED))
        assert stream.getvalue() == "  [fig5 1/1] a: 4.00s (simulated)\n"

    def test_warm_cache_batch_shows_no_phantom_eta(self):
        # The regression this fixes: remaining *jobs* used to drive the
        # ETA, so a warm-cache batch with one slow historical mean
        # printed hours of phantom work.  With expected_sim=0 every
        # line is suffix-free.
        printer, telemetry, stream = self.printer()
        telemetry.record("old", "fig4", "h0", 60.0, SOURCE_SIMULATED)
        printer.start_batch("fig5", 3, expected_sim=0)
        for label in ("a", "b", "c"):
            printer.job_done(
                telemetry.record(label, "fig5", label, 0.0, SOURCE_CACHE))
        out = stream.getvalue()
        assert "eta" not in out
        assert out.splitlines()[-1] == "  [fig5 3/3] c: 0.00s (cache)"

    def test_mixed_batch_eta_counts_only_remaining_sims(self):
        printer, telemetry, stream = self.printer()
        printer.start_batch("fig5", 4, expected_sim=2)
        printer.job_done(
            telemetry.record("a", "fig5", "h1", 6.0, SOURCE_SIMULATED))
        lines = stream.getvalue().splitlines()
        # 3 jobs remain but only 1 simulation: 1 * 6 s / 2 workers.
        assert lines[0].endswith("| eta 3.0s")
        printer.job_done(
            telemetry.record("b", "fig5", "h2", 6.0, SOURCE_SIMULATED))
        assert stream.getvalue().splitlines()[1].endswith("(simulated)")

    def test_extra_sims_never_push_eta_negative(self):
        # More simulations than promised (e.g. a corrupt cache entry
        # re-simulating): remaining_sim clamps at zero.
        printer, telemetry, stream = self.printer()
        printer.start_batch("fig5", 3, expected_sim=1)
        for label in ("a", "b"):
            printer.job_done(
                telemetry.record(label, "fig5", label, 2.0,
                                 SOURCE_SIMULATED))
        assert "eta" not in stream.getvalue().splitlines()[1]

    def test_expected_sim_defaults_to_total(self):
        printer, telemetry, stream = self.printer()
        printer.start_batch("fig5", 2)
        printer.job_done(
            telemetry.record("a", "fig5", "h1", 2.0, SOURCE_SIMULATED))
        assert stream.getvalue().splitlines()[0].endswith("| eta 1.0s")

    def test_null_progress_accepts_the_same_calls(self):
        null = NullProgress()
        null.start_batch("fig5", 3, expected_sim=1)
        null.job_done(
            CampaignTelemetry().record("a", "fig5", "h", 1.0, SOURCE_CACHE))


class _FakeTTY(io.StringIO):
    def isatty(self):
        return True


class TestAnsiSuppression:
    """Escape codes only ever reach a real TTY; everything redirected
    (pipes, files, service logs, CI) stays plain text."""

    def test_non_tty_stream_disables_ansi(self, monkeypatch):
        monkeypatch.delenv(NO_ANSI_ENV, raising=False)
        assert ansi_enabled(io.StringIO()) is False
        assert ansi_enabled(None) is False

    def test_tty_stream_enables_ansi(self, monkeypatch):
        monkeypatch.delenv(NO_ANSI_ENV, raising=False)
        assert ansi_enabled(_FakeTTY()) is True

    def test_env_override_wins_even_on_a_tty(self, monkeypatch):
        monkeypatch.setenv(NO_ANSI_ENV, "1")
        assert ansi_enabled(_FakeTTY()) is False

    def test_closed_stream_is_not_a_tty(self, monkeypatch):
        monkeypatch.delenv(NO_ANSI_ENV, raising=False)
        stream = open(os.devnull, "w")
        stream.close()
        assert ansi_enabled(stream) is False

    def test_progress_printer_emits_no_escapes_on_non_tty(self,
                                                          monkeypatch):
        monkeypatch.delenv(NO_ANSI_ENV, raising=False)
        telemetry = CampaignTelemetry(workers=2)
        stream = io.StringIO()
        printer = ProgressPrinter(telemetry, stream)
        assert printer.ansi is False
        printer.start_batch("fig5", 2, expected_sim=2)
        printer.job_done(
            telemetry.record("a", "fig5", "h1", 2.0, SOURCE_SIMULATED))
        assert "\x1b" not in stream.getvalue()

    def test_progress_printer_styles_when_forced(self):
        telemetry = CampaignTelemetry(workers=2)
        stream = io.StringIO()
        printer = ProgressPrinter(telemetry, stream, ansi=True)
        printer.start_batch("fig5", 2, expected_sim=2)
        printer.job_done(
            telemetry.record("a", "fig5", "h1", 2.0, SOURCE_SIMULATED))
        out = stream.getvalue()
        assert "\x1b[" in out
        assert out.endswith("\n")  # still newline-terminated lines

    def test_render_is_plain_by_default_and_styled_on_request(self):
        telemetry = sample_telemetry()
        assert "\x1b" not in telemetry.render()
        styled = telemetry.render(color=True)
        assert "\x1b[" in styled
        # Styling never changes the words, only wraps them.
        import re

        assert re.sub(r"\x1b\[[0-9;]*m", "", styled) == telemetry.render()
