"""The checkpoint journal: WAL recovery, idempotence, format guards."""

from __future__ import annotations

import json

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.integrity import JournalFormatError
from repro.runner import CampaignJournal, SimJob, TraceSpec

SCALE = 256


@pytest.fixture(scope="module")
def points():
    """Three simulated (job, result) pairs shared by the module."""
    spec = TraceSpec(ncpus=1, scale=SCALE, txns=15, warmup_txns=5, seed=3)
    trace = spec.build()
    pairs = []
    for machine in (MachineConfig.integrated_l2(1, scale=SCALE),
                    MachineConfig.base(1, scale=SCALE),
                    MachineConfig.fully_integrated(1, scale=SCALE)):
        job = SimJob(spec=spec, machine=machine)
        pairs.append((job, simulate(machine, trace)))
    return pairs


def filled(path, points):
    with CampaignJournal(str(path)) as journal:
        for job, result in points:
            journal.append(job, result)
    return str(path)


class TestRoundTrip:
    def test_append_then_reopen_serves_exact_results(self, tmp_path, points):
        path = filled(tmp_path / "run.journal", points)
        reopened = CampaignJournal(path)
        assert len(reopened) == 3
        assert reopened.stats.entries_loaded == 3
        assert reopened.stats.corrupt_skipped == 0
        for job, result in points:
            assert job in reopened
            assert reopened.lookup(job).to_dict() == result.to_dict()

    def test_missing_file_is_an_empty_journal(self, tmp_path, points):
        journal = CampaignJournal(str(tmp_path / "absent.journal"))
        job, _ = points[0]
        assert len(journal) == 0
        assert journal.lookup(job) is None
        assert job not in journal

    def test_append_is_idempotent_by_hash(self, tmp_path, points):
        job, result = points[0]
        with CampaignJournal(str(tmp_path / "j")) as journal:
            journal.append(job, result)
            journal.append(job, result)
            assert journal.stats.appended == 1
        lines = (tmp_path / "j").read_bytes().splitlines()
        assert len(lines) == 2  # header + one entry


class TestRecovery:
    def test_torn_tail_is_dropped_then_overwritten(self, tmp_path, points):
        path = filled(tmp_path / "j", points[:2])
        with open(path, "ab") as fh:
            fh.write(b'{"job": "half-written')  # kill mid-append, no newline

        reopened = CampaignJournal(path)
        assert reopened.stats.entries_loaded == 2
        assert reopened.stats.corrupt_skipped == 1

        # Appending after recovery truncates the torn bytes away.
        job3, result3 = points[2]
        reopened.append(job3, result3)
        reopened.close()
        final = CampaignJournal(path)
        assert final.stats.entries_loaded == 3
        assert final.stats.corrupt_skipped == 0

    def test_corrupt_middle_line_skips_only_that_entry(self, tmp_path, points):
        path = filled(tmp_path / "j", points)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[2] = b'{"job": "x", "crc32": 1, "result": {}}\n'
        open(path, "wb").write(b"".join(lines))

        reopened = CampaignJournal(path)
        assert reopened.stats.entries_loaded == 2
        assert reopened.stats.corrupt_skipped == 1
        assert reopened.lookup(points[0][0]) is not None
        assert reopened.lookup(points[1][0]) is None
        assert reopened.lookup(points[2][0]) is not None

    def test_checksum_mismatch_rejects_entry(self, tmp_path, points):
        path = filled(tmp_path / "j", points[:1])
        lines = open(path, "rb").read().splitlines(keepends=True)
        entry = json.loads(lines[1])
        entry["result"]["measured_txns"] += 1  # tamper, CRC now stale
        lines[1] = json.dumps(entry).encode() + b"\n"
        open(path, "wb").write(b"".join(lines))

        reopened = CampaignJournal(path)
        assert reopened.stats.entries_loaded == 0
        assert reopened.stats.corrupt_skipped == 1


class TestAcceptRecords:
    """Service-mode ``accept`` lines: the restart re-queue contract."""

    def test_accept_round_trips_across_reopen(self, tmp_path, points):
        jobs = [job for job, _ in points]
        with CampaignJournal(str(tmp_path / "j")) as journal:
            for job in jobs:
                journal.accept(job)
            assert journal.stats.accepts_appended == 3
        reopened = CampaignJournal(str(tmp_path / "j"))
        assert reopened.stats.accepts_loaded == 3
        assert [j.content_hash() for j in reopened.accepted_jobs()] == [
            j.content_hash() for j in jobs]
        assert [j.content_hash() for j in reopened.pending_jobs()] == [
            j.content_hash() for j in jobs]

    def test_accept_is_idempotent_by_hash(self, tmp_path, points):
        job, result = points[0]
        with CampaignJournal(str(tmp_path / "j")) as journal:
            journal.accept(job)
            journal.accept(job)
            assert journal.stats.accepts_appended == 1
            # A job with a journaled result needs no acceptance either.
            journal.append(job, result)
            journal.accept(points[1][0])
        lines = (tmp_path / "j").read_bytes().splitlines()
        assert len(lines) == 4  # header + accept + result + accept

    def test_appended_result_clears_pending(self, tmp_path, points):
        job, result = points[0]
        other = points[1][0]
        with CampaignJournal(str(tmp_path / "j")) as journal:
            journal.accept(job)
            journal.accept(other)
            journal.append(job, result)
        reopened = CampaignJournal(str(tmp_path / "j"))
        assert [j.content_hash() for j in reopened.pending_jobs()] == [
            other.content_hash()]
        assert reopened.lookup_hash(job.content_hash()) is not None

    def test_corrupt_accept_line_is_dropped(self, tmp_path, points):
        path = str(tmp_path / "j")
        with CampaignJournal(path) as journal:
            journal.accept(points[0][0])
        lines = open(path, "rb").read().splitlines(keepends=True)
        entry = json.loads(lines[1])
        entry["crc32"] ^= 1  # flip a checksum bit
        lines[1] = json.dumps(entry).encode() + b"\n"
        open(path, "wb").write(b"".join(lines))

        reopened = CampaignJournal(path)
        assert reopened.stats.accepts_loaded == 0
        assert reopened.stats.corrupt_skipped == 1
        assert reopened.pending_jobs() == []

    def test_hash_drift_rejects_acceptance(self, tmp_path, points):
        import zlib

        from repro.runner.jobs import canonical_json

        path = str(tmp_path / "j")
        with CampaignJournal(path) as journal:
            journal.accept(points[0][0])
        lines = open(path, "rb").read().splitlines(keepends=True)
        entry = json.loads(lines[1])
        # Tamper with the spec but keep the CRC consistent: the line
        # is intact, yet its content no longer hashes to the promised
        # id — not a usable acceptance.
        entry["accept"]["machine"]["label"] = "edited-after-the-fact"
        entry["crc32"] = zlib.crc32(
            canonical_json(entry["accept"]).encode())
        lines[1] = json.dumps(entry).encode() + b"\n"
        open(path, "wb").write(b"".join(lines))

        reopened = CampaignJournal(path)
        assert reopened.stats.accepts_loaded == 0
        assert reopened.accepted_jobs() == []

    def test_result_readers_skip_accept_lines(self, tmp_path, points):
        """Campaign ``--resume`` sees only results, never accepts."""
        job, result = points[0]
        with CampaignJournal(str(tmp_path / "j")) as journal:
            journal.accept(job)
            journal.accept(points[1][0])
            journal.append(job, result)
        reopened = CampaignJournal(str(tmp_path / "j"))
        assert len(reopened) == 1  # accepts don't count as entries
        assert reopened.stats.entries_loaded == 1
        assert reopened.lookup(job).to_dict() == result.to_dict()


class TestFormatGuards:
    def test_non_journal_file_raises(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("not a journal\n")
        with pytest.raises(JournalFormatError):
            CampaignJournal(str(path))

    def test_json_lines_without_magic_raise(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something-else", "format": 1}\n')
        with pytest.raises(JournalFormatError):
            CampaignJournal(str(path))

    def test_future_format_version_raises(self, tmp_path):
        path = tmp_path / "future.journal"
        path.write_text(
            '{"format": 999, "kind": "repro-oltp-campaign-journal"}\n'
        )
        with pytest.raises(JournalFormatError):
            CampaignJournal(str(path))
