"""The on-disk result cache: exact round trips, fail-soft rejection."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.obs import MetricsRegistry, use_metrics
from repro.runner import ResultCache, SimJob, TraceSpec

SCALE = 128


@pytest.fixture(scope="module")
def point():
    """One simulated job plus its result, shared by the module."""
    spec = TraceSpec(ncpus=1, scale=SCALE, txns=30, warmup_txns=10, seed=11)
    machine = MachineConfig.integrated_l2(1, scale=SCALE)
    job = SimJob(spec=spec, machine=machine)
    result = simulate(machine, spec.build())
    return job, result


class TestRoundTrip:
    def test_empty_cache_misses(self, tmp_path, point):
        job, _ = point
        cache = ResultCache(str(tmp_path))
        assert cache.load(job) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_store_then_load_is_exact(self, tmp_path, point):
        job, result = point
        cache = ResultCache(str(tmp_path))
        cache.store(job, result)
        loaded = cache.load(job)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert loaded.exec_time == result.exec_time
        assert loaded.machine == result.machine
        assert cache.stats.hits == 1

    def test_path_is_content_addressed(self, tmp_path, point):
        job, result = point
        cache = ResultCache(str(tmp_path))
        path = cache.store(job, result)
        assert path == cache.path_for(job)
        assert job.content_hash() in path

    def test_different_job_misses(self, tmp_path, point):
        job, result = point
        cache = ResultCache(str(tmp_path))
        cache.store(job, result)
        other = SimJob(spec=job.spec, machine=job.machine, check="end-of-run")
        assert cache.load(other) is None


class TestFailSoft:
    """Every flavour of bad entry demotes to a miss; none ever raises."""

    def _primed(self, tmp_path, point) -> ResultCache:
        job, result = point
        cache = ResultCache(str(tmp_path))
        cache.store(job, result)
        return cache

    def _rewrite(self, cache, job, mutate) -> None:
        path = cache.path_for(job)
        with open(path, "r", encoding="utf-8") as fh:
            entry = json.load(fh)
        mutate(entry)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)

    def test_garbage_bytes(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)
        with open(cache.path_for(job), "wb") as fh:
            fh.write(b"\x00\xffnot json\xfe")
        assert cache.load(job) is None
        assert cache.stats.rejected == 1

    def test_truncated_json(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)
        path = cache.path_for(job)
        text = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(text[: len(text) // 2])
        assert cache.load(job) is None
        assert cache.stats.rejected == 1

    def test_stale_format_version(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)
        self._rewrite(cache, job, lambda e: e.update(format=999))
        assert cache.load(job) is None
        assert cache.stats.rejected == 1

    def test_wrong_job_hash(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)
        self._rewrite(cache, job, lambda e: e.update(job="0" * 64))
        assert cache.load(job) is None
        assert cache.stats.rejected == 1

    def test_tampered_payload_fails_checksum(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)

        def tamper(entry):
            entry["result"]["measured_txns"] += 1

        self._rewrite(cache, job, tamper)
        assert cache.load(job) is None
        assert cache.stats.rejected == 1

    def test_missing_result_key(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)
        self._rewrite(cache, job, lambda e: e.pop("result"))
        assert cache.load(job) is None
        assert cache.stats.rejected == 1

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root ignores permission bits")
    def test_unreadable_entry(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)
        os.chmod(cache.path_for(job), 0o000)
        try:
            assert cache.load(job) is None
            assert cache.stats.rejected == 1
        finally:
            os.chmod(cache.path_for(job), 0o644)

    def test_directory_as_entry(self, tmp_path, point):
        job, _ = point
        cache = ResultCache(str(tmp_path))
        os.makedirs(cache.path_for(job))
        assert cache.load(job) is None
        assert cache.stats.rejected == 1

    def test_rejections_count_into_metrics(self, tmp_path, point):
        job, _ = point
        cache = self._primed(tmp_path, point)
        with open(cache.path_for(job), "wb") as fh:
            fh.write(b"garbage")
        registry = MetricsRegistry()
        with use_metrics(registry):
            cache.load(job)
            cache.load(job)
        assert registry.counters.get("cache.corrupt_skipped") == 2

    def test_clean_lookups_do_not_count(self, tmp_path, point):
        job, result = point
        cache = ResultCache(str(tmp_path))
        registry = MetricsRegistry()
        with use_metrics(registry):
            cache.load(job)  # plain miss: absent, not corrupt
            cache.store(job, result)
            cache.load(job)  # hit
        assert registry.counters.get("cache.corrupt_skipped", 0) == 0

    def test_overwrite_heals_bad_entry(self, tmp_path, point):
        job, result = point
        cache = self._primed(tmp_path, point)
        with open(cache.path_for(job), "wb") as fh:
            fh.write(b"garbage")
        assert cache.load(job) is None
        cache.store(job, result)
        healed = cache.load(job)
        assert healed is not None
        assert healed.to_dict() == result.to_dict()


class TestConcurrentAccess:
    """Two processes hammering the same hash: stores are atomic
    (tmp file + ``os.replace``), so a reader sees either a miss or a
    complete valid entry — never torn bytes, never a corrupt-skip."""

    WORKER = """
import sys

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.obs import MetricsRegistry, use_metrics
from repro.runner import ResultCache, SimJob, TraceSpec

cache_dir, rounds = sys.argv[1], int(sys.argv[2])
spec = TraceSpec(ncpus=1, scale=128, txns=30, warmup_txns=10, seed=11)
machine = MachineConfig.integrated_l2(1, scale=128)
job = SimJob(spec=spec, machine=machine)
result = simulate(machine, spec.build())
cache = ResultCache(cache_dir)
registry = MetricsRegistry()
torn = 0
with use_metrics(registry):
    for _ in range(rounds):
        cache.store(job, result)
        loaded = cache.load(job)
        if loaded is not None and loaded.to_dict() != result.to_dict():
            torn += 1
print(torn, cache.stats.rejected,
      registry.counters.get("cache.corrupt_skipped", 0))
"""

    def test_two_processes_same_hash_no_torn_reads(self, tmp_path, point):
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=src)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self.WORKER, str(tmp_path), "150"],
                stdout=subprocess.PIPE, text=True, env=env)
            for _ in range(2)
        ]
        for proc in procs:
            out, _ = proc.communicate(timeout=300)
            assert proc.returncode == 0
            torn, rejected, corrupt_skipped = out.split()
            assert torn == "0", "reader observed a torn/mismatched entry"
            assert rejected == "0"
            assert corrupt_skipped == "0"

        # The survivor entry is a byte-exact round trip of the result.
        job, result = point
        cache = ResultCache(str(tmp_path))
        loaded = cache.load(job)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert cache.stats.rejected == 0


class TestStats:
    def test_hit_rate(self, tmp_path, point):
        job, result = point
        cache = ResultCache(str(tmp_path))
        cache.load(job)  # miss
        cache.store(job, result)
        cache.load(job)  # hit
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5
