"""Shared-memory trace arena: one mapping, N workers, zero leaks.

Three contracts under test:

* **replay parity** — a trace attached from a shared segment is
  bit-identical to the store's materialized copy, in-process and
  across a real two-worker campaign pool (shared-memory on vs. off
  produce equal ``RunResult.to_dict()`` payloads);
* **ownership** — only the publishing parent unlinks segments; worker
  attachments never race the parent's cleanup (the resource-tracker
  unregister path), so a campaign leaves ``/dev/shm`` exactly as it
  found it;
* **crash safety** — a chaos-crashed worker and the supervisor's pool
  respawn leave no leaked segments either: respawned workers re-attach
  by name and the parent still unlinks exactly once.

Leak checks filter ``/dev/shm`` by this process's pid (segment names
embed the creator pid), so parallel test workers cannot see each
other's segments.
"""

import glob
import os

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.runner.executor import CampaignRunner
from repro.runner.jobs import SimJob
from repro.runner.shm import (
    SEGMENT_PREFIX,
    SharedTraceArena,
    attach_shared_trace,
    detach_all,
)
from repro.runner.tracestore import TraceSpec, TraceStore

SPEC = TraceSpec(ncpus=2, scale=256, txns=30, seed=3)
MACHINES = (
    MachineConfig(label="shm-a", ncpus=2),
    MachineConfig(label="shm-b", ncpus=2, l2_size=1 << 20),
)


def my_segments():
    """Segments created by this process (pid is embedded in the name)."""
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}{os.getpid()}_*")


@pytest.fixture
def store():
    return TraceStore(spill_dir=None)


@pytest.fixture
def arena():
    with SharedTraceArena() as arena:
        yield arena
        detach_all()
    assert not my_segments()


class TestAttachParity:
    def test_attached_replay_identical(self, arena, store):
        handle = arena.publish(SPEC, store)
        shared = attach_shared_trace(handle)
        base = store.get(SPEC)
        assert shared.warmup_quanta == base.warmup_quanta
        assert shared.text_pages == base.text_pages
        assert len(shared.quanta) == len(base.quanta)
        for mc in MACHINES:
            want = simulate(mc, base).to_dict()
            got = simulate(mc, shared).to_dict()
            assert got == want, mc.label
        del shared

    def test_publish_is_idempotent(self, arena, store):
        first = arena.publish(SPEC, store)
        second = arena.publish(SPEC, store)
        assert first is second
        assert len(arena) == 1
        assert arena.bytes_published == first.nbytes

    def test_attach_is_cached_per_process(self, arena, store):
        handle = arena.publish(SPEC, store)
        assert attach_shared_trace(handle) is attach_shared_trace(handle)

    def test_handle_layout_accounts_every_byte(self, arena, store):
        handle = arena.publish(SPEC, store)
        base = store.get(SPEC)
        nq = len(base.quanta)
        nrefs = sum(len(q.refs) for q in base.quanta)
        assert handle.num_quanta == nq
        assert handle.num_refs == nrefs
        assert handle.nbytes == 8 * (nq + 1 + nrefs + handle.num_text) + 4 * nq

    def test_attach_after_unlink_raises(self, store):
        arena = SharedTraceArena()
        handle = arena.publish(SPEC, store)
        arena.cleanup()
        detach_all()
        with pytest.raises(FileNotFoundError):
            attach_shared_trace(handle)


class TestCleanup:
    def test_cleanup_unlinks_everything(self, store):
        arena = SharedTraceArena()
        arena.publish(SPEC, store)
        assert my_segments()
        arena.cleanup()
        assert not my_segments()
        arena.cleanup()  # idempotent
        assert len(arena) == 0

    def test_context_manager_cleans_up(self, store):
        with SharedTraceArena() as arena:
            arena.publish(SPEC, store)
            assert my_segments()
        assert not my_segments()


class TestCampaignSharedMemory:
    """The tentpole end-to-end contract, on a real two-worker pool."""

    def jobs(self):
        return [SimJob(spec=SPEC, machine=mc) for mc in MACHINES]

    def run_campaign(self, tmp_path, shared_memory, chaos=None):
        with CampaignRunner(
            jobs=2, shared_memory=shared_memory,
            trace_store=TraceStore(spill_dir=str(tmp_path / "traces")),
            chaos=chaos,
        ) as runner:
            results = [r.to_dict() for r in runner.run_jobs(self.jobs())]
        return results

    def test_two_process_parity_and_no_leaks(self, tmp_path):
        on = self.run_campaign(tmp_path, shared_memory=True)
        assert not my_segments()
        off = self.run_campaign(tmp_path, shared_memory=False)
        assert on == off
        assert not my_segments()

    def test_chaos_crash_leaves_no_leaked_segments(self, tmp_path):
        from repro.integrity import parse_worker_faults

        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        baseline = self.run_campaign(tmp_path, shared_memory=True)
        chaos = (parse_worker_faults("crash@0"), str(token_dir))
        crashed = self.run_campaign(tmp_path, shared_memory=True,
                                    chaos=chaos)
        assert crashed == baseline
        assert not my_segments()
