"""Job identity: content hashes, payloads, validation, pickling."""

from __future__ import annotations

import pickle

import pytest

from repro.core.machine import MachineConfig
from repro.runner import CODE_VERSION, SimJob, TraceSpec, canonical_json
from repro.trace.storage import FORMAT_VERSION

SCALE = 128
SPEC = TraceSpec(ncpus=1, scale=SCALE, txns=40, seed=11)


def job(**over) -> SimJob:
    kw = dict(spec=SPEC, machine=MachineConfig.base(1, scale=SCALE), check="off")
    kw.update(over)
    return SimJob(**kw)


class TestContentHash:
    def test_stable_across_instances(self):
        assert job().content_hash() == job().content_hash()

    def test_is_sha256_hex(self):
        digest = job().content_hash()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_machine_changes_hash(self):
        other = job(machine=MachineConfig.integrated_l2(1, scale=SCALE))
        assert job().content_hash() != other.content_hash()

    def test_spec_changes_hash(self):
        other = job(spec=TraceSpec(ncpus=1, scale=SCALE, txns=41, seed=11))
        assert job().content_hash() != other.content_hash()

    def test_seed_changes_hash(self):
        other = job(spec=TraceSpec(ncpus=1, scale=SCALE, txns=40, seed=12))
        assert job().content_hash() != other.content_hash()

    def test_check_level_changes_hash(self):
        assert job().content_hash() != job(check="end-of-run").content_hash()

    def test_payload_pins_both_versions(self):
        payload = job().payload()
        assert payload["code_version"] == CODE_VERSION
        assert payload["trace_format"] == FORMAT_VERSION

    def test_hash_survives_pickle(self):
        # Jobs cross the worker-pool boundary; identity must too.
        j = job(machine=MachineConfig.fully_integrated(8, scale=SCALE))
        clone = pickle.loads(pickle.dumps(j))
        assert clone == j
        assert clone.content_hash() == j.content_hash()

    def test_topology_base_table_changes_hash(self):
        from dataclasses import replace

        from repro.scenario.topology import TopologySpec

        base = MachineConfig.fully_integrated(8, scale=SCALE)
        bumped = base.with_(topology=TopologySpec.uniform(
            base_table=replace(base.latencies, l2_hit=99)
        ))
        assert (
            job(machine=base).content_hash()
            != job(machine=bumped).content_hash()
        )

    def test_topology_changes_hash(self):
        from repro.scenario.topology import TopologySpec

        base = MachineConfig.fully_integrated(8, scale=SCALE)
        islands = base.with_(
            topology=TopologySpec.islands(group_size=4, island_extra=100)
        )
        assert (
            job(machine=base).content_hash()
            != job(machine=islands).content_hash()
        )

    def test_workload_changes_hash(self):
        from repro.scenario.workload import WorkloadSpec

        skewed = TraceSpec(ncpus=1, scale=SCALE, txns=40, seed=11,
                           workload=WorkloadSpec(name="zipf", skew=0.8))
        assert job().content_hash() != job(spec=skewed).content_hash()


class TestValidation:
    def test_bad_check_level_rejected(self):
        with pytest.raises(ValueError, match="check level"):
            job(check="sometimes")

    def test_label_is_machine_label(self):
        j = job()
        assert j.label == j.machine.label


class TestCanonicalJson:
    def test_key_order_invariant(self):
        a = canonical_json({"b": 1, "a": [2, 3]})
        b = canonical_json({"a": [2, 3], "b": 1})
        assert a == b

    def test_compact_encoding(self):
        assert " " not in canonical_json({"a": 1, "b": [2, 3]})
