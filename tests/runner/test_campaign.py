"""End-to-end campaign behaviour: determinism, cache resilience, CLI.

The headline guarantee under test: a figure produced through the
campaign runner — parallel workers, cold cache, or warm cache — is
*identical* to the one the plain serial driver path produces.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.common import Settings

FIGS = ("fig5", "fig10")


def campaign(cache_dir, jobs, **kw):
    return run_campaign(
        FIGS, Settings.quick(), jobs=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        progress=False, **kw,
    )


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Serial-cold, warm, and 4-worker-cold campaigns over fig5+fig10."""
    cache1 = tmp_path_factory.mktemp("campaign-serial")
    cache2 = tmp_path_factory.mktemp("campaign-parallel")
    serial = campaign(cache1, 1)
    warm = campaign(cache1, 1)
    parallel = campaign(cache2, 4)
    return cache1, serial, warm, parallel


class TestDeterminism:
    def test_parallel_matches_serial_exactly(self, runs):
        _, serial, _, parallel = runs
        assert parallel.figures == serial.figures

    def test_cache_warm_matches_serial_exactly(self, runs):
        _, serial, warm, _ = runs
        assert warm.figures == serial.figures

    def test_warm_run_simulates_nothing(self, runs):
        _, _, warm, _ = runs
        assert warm.telemetry.simulated == 0
        assert warm.telemetry.hit_rate == 1.0
        assert warm.telemetry.total_jobs > 0

    def test_cold_run_simulated_every_distinct_point(self, runs):
        _, serial, _, _ = runs
        # fig10's uniprocessor ladder overlaps fig5's machine set, so a
        # few points are intra-run cache hits; everything else simulates.
        assert serial.telemetry.simulated > 0
        assert (
            serial.telemetry.simulated + serial.telemetry.cache_hits
            == serial.telemetry.total_jobs
        )


class TestCacheResilience:
    def test_corrupt_and_stale_entries_resimulate_silently(self, runs):
        cache1, serial, _, _ = runs
        results_dir = cache1 / "results"
        entries = sorted(results_dir.glob("*.json"))
        assert len(entries) >= 2
        # One entry becomes garbage bytes, one a stale format version.
        entries[0].write_bytes(b"\x00corrupt\xff")
        stale = json.loads(entries[1].read_text())
        stale["format"] = 999
        entries[1].write_text(json.dumps(stale))

        healed = campaign(cache1, 1)  # must not raise
        assert healed.figures == serial.figures
        assert healed.telemetry.simulated >= 2
        assert healed.cache_stats.rejected >= 2

        # The bad entries were overwritten: a further run is all hits.
        again = campaign(cache1, 1)
        assert again.telemetry.simulated == 0


class TestCampaignModes:
    def test_memory_only_campaign(self):
        # cache_dir=None: no result cache, no trace spill, still correct.
        tiny = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)
        report = run_campaign(("fig5",), tiny, jobs=1, cache_dir=None,
                              progress=False)
        assert report.telemetry.cache_hits == 0
        assert report.telemetry.simulated == report.telemetry.total_jobs
        assert "Figure 5" in report.figures[0][1]

    def test_no_cache_flag_still_simulates(self, tmp_path):
        tiny = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)
        report = run_campaign(("fig5",), tiny, jobs=1,
                              cache_dir=str(tmp_path), use_cache=False,
                              progress=False)
        assert report.telemetry.simulated == report.telemetry.total_jobs
        assert not (tmp_path / "results").exists()

    def test_telemetry_summary_line_is_greppable(self, runs):
        _, _, warm, _ = runs
        line = warm.telemetry.summary_line()
        assert "simulated=0" in line
        assert "hit_rate=100" in line


class TestCampaignCli:
    def test_cli_verb_twice_second_run_all_hits(self, tmp_path, capsys):
        from repro.experiments.cli import main

        argv = [
            "campaign", "--scale", "256", "--uni-txns", "15",
            "--mp-txns", "30", "--seed", "3", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"), "--no-progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "campaign summary:" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "simulated=0" in second
        assert "hit_rate=100" in second
        # Figure output itself is identical between the two runs.
        strip = lambda text: [  # noqa: E731 — drop timing-dependent lines
            ln for ln in text.splitlines()
            if not ln.startswith("campaign") and " wall=" not in ln
            and "ETA" not in ln and not ln.startswith("  fig")
        ]
        assert strip(first) == strip(second)
