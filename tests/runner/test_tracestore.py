"""The bounded, spillable trace store that replaced the unbounded cache."""

from __future__ import annotations

import os

import pytest

from repro.runner import TraceSpec, TraceStore, default_trace_store

SCALE = 128


def spec(txns: int = 30) -> TraceSpec:
    return TraceSpec(ncpus=1, scale=SCALE, txns=txns, warmup_txns=10, seed=11)


def traces_equal(a, b) -> bool:
    if (a.ncpus, a.scale, a.measured_txns, a.warmup_quanta) != (
        b.ncpus, b.scale, b.measured_txns, b.warmup_quanta
    ):
        return False
    if a.text_pages != b.text_pages or len(a.quanta) != len(b.quanta):
        return False
    return all(
        qa.cpu == qb.cpu and list(qa.refs) == list(qb.refs)
        for qa, qb in zip(a.quanta, b.quanta)
    )


class TestLru:
    def test_build_then_memory_hit(self):
        store = TraceStore(capacity=2)
        first = store.get(spec())
        second = store.get(spec())
        assert first is second
        assert store.stats.builds == 1
        assert store.stats.memory_hits == 1

    def test_capacity_is_bounded(self):
        store = TraceStore(capacity=2)
        for txns in (20, 24, 28):
            store.get(spec(txns))
        assert len(store) == 2
        assert spec(20) not in store
        assert spec(24) in store and spec(28) in store

    def test_eviction_follows_recency(self):
        store = TraceStore(capacity=2)
        store.get(spec(20))
        store.get(spec(24))
        store.get(spec(20))  # touch: 24 is now least recent
        store.get(spec(28))
        assert spec(24) not in store
        assert spec(20) in store and spec(28) in store

    def test_clear_drops_memory(self):
        store = TraceStore(capacity=2)
        store.get(spec())
        store.clear()
        assert len(store) == 0
        store.get(spec())
        assert store.stats.builds == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestSpill:
    def test_build_writes_archive(self, tmp_path):
        store = TraceStore(capacity=2, spill_dir=str(tmp_path))
        store.get(spec())
        assert os.path.exists(tmp_path / spec().archive_name)

    def test_second_store_loads_archive_identically(self, tmp_path):
        built = TraceStore(capacity=2, spill_dir=str(tmp_path)).get(spec())
        fresh = TraceStore(capacity=2, spill_dir=str(tmp_path))
        loaded = fresh.get(spec())
        assert fresh.stats.archive_loads == 1
        assert fresh.stats.builds == 0
        assert traces_equal(built, loaded)

    def test_evicted_trace_reloads_from_archive(self, tmp_path):
        store = TraceStore(capacity=1, spill_dir=str(tmp_path))
        original = store.get(spec(20))
        store.get(spec(24))  # evicts spec(20)
        assert spec(20) not in store
        again = store.get(spec(20))
        assert store.stats.archive_loads == 1
        assert traces_equal(original, again)

    def test_corrupt_archive_rebuilt_silently(self, tmp_path):
        store = TraceStore(capacity=2, spill_dir=str(tmp_path))
        original = store.get(spec())
        path = tmp_path / spec().archive_name
        path.write_bytes(b"not an npz archive")
        store.clear()
        rebuilt = store.get(spec())  # must not raise
        assert store.stats.builds == 2
        assert traces_equal(original, rebuilt)
        # The bad file was replaced with a good archive.
        fresh = TraceStore(capacity=2, spill_dir=str(tmp_path))
        fresh.get(spec())
        assert fresh.stats.archive_loads == 1

    def test_clear_keeps_archives(self, tmp_path):
        store = TraceStore(capacity=2, spill_dir=str(tmp_path))
        store.get(spec())
        store.clear()
        store.get(spec())
        assert store.stats.archive_loads == 1
        assert store.stats.builds == 1


class TestEnsureArchived:
    def test_requires_spill_dir(self):
        with pytest.raises(ValueError, match="spill_dir"):
            TraceStore(capacity=2).ensure_archived(spec())

    def test_creates_archive_once(self, tmp_path):
        store = TraceStore(capacity=2, spill_dir=str(tmp_path))
        path = store.ensure_archived(spec())
        assert os.path.exists(path)
        builds = store.stats.builds
        assert store.ensure_archived(spec()) == path
        assert store.stats.builds == builds

    def test_spills_from_memory_without_rebuild(self, tmp_path):
        store = TraceStore(capacity=2)
        store.get(spec())  # built with no spill configured
        store.spill_dir = str(tmp_path)
        store.ensure_archived(spec())
        assert store.stats.builds == 1
        assert os.path.exists(tmp_path / spec().archive_name)


def test_default_store_is_process_wide_singleton():
    assert default_trace_store() is default_trace_store()
