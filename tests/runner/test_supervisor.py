"""The supervised executor: retry policy, outcomes, happy-path pool."""

from __future__ import annotations

import random

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.runner import RetryPolicy, SimJob, SupervisedExecutor, TraceSpec
from repro.runner.supervisor import JobFailure, JobOutcome, payload_crc
from repro.runner.tracestore import default_trace_store

SCALE = 256


def tiny_jobs():
    spec = TraceSpec(ncpus=1, scale=SCALE, txns=15, warmup_txns=5, seed=3)
    return [
        SimJob(spec=spec, machine=MachineConfig.integrated_l2(1, scale=SCALE)),
        SimJob(spec=spec, machine=MachineConfig.base(1, scale=SCALE)),
    ]


class TestRetryPolicy:
    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=-1.0)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_backoff_grows_exponentially_without_jitter(self):
        p = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=100.0,
                        jitter=0.0)
        rng = random.Random(0)
        assert p.delay(1, rng) == pytest.approx(0.1)
        assert p.delay(2, rng) == pytest.approx(0.2)
        assert p.delay(4, rng) == pytest.approx(0.8)

    def test_backoff_caps_at_max_delay(self):
        p = RetryPolicy(base_delay=0.1, multiplier=10.0, max_delay=0.5,
                        jitter=0.0)
        assert p.delay(10, random.Random(0)) == pytest.approx(0.5)

    def test_jitter_stays_within_fraction(self):
        p = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                        jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 20):
            d = p.delay(attempt, rng)
            assert 1.0 <= d <= 1.5

    def test_seeded_jitter_is_reproducible(self):
        p = RetryPolicy(jitter=0.5, seed=5)
        a = [p.delay(n, random.Random(p.seed)) for n in (1, 2, 3)]
        b = [p.delay(n, random.Random(p.seed)) for n in (1, 2, 3)]
        assert a == b


class TestOutcomeTypes:
    def test_outcome_ok_flag(self):
        job = tiny_jobs()[0]
        assert JobOutcome(job).ok
        failed = JobOutcome(job, failure=JobFailure(
            job.label, job.content_hash(), "timeout", "boom", 3))
        assert not failed.ok

    def test_failure_to_dict_round_trips(self):
        f = JobFailure("1M4w", "abc", "crash", "worker died", 2)
        d = f.to_dict()
        assert d == {"label": "1M4w", "job_hash": "abc", "kind": "crash",
                     "message": "worker died", "attempts": 2}

    def test_payload_crc_tracks_content(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"x": 1, "y": [1, 3]}
        assert payload_crc(a) == payload_crc(dict(a))
        assert payload_crc(a) != payload_crc(b)


class TestHappyPath:
    def test_pool_results_are_value_identical_to_inline(self):
        jobs = tiny_jobs()
        inline = [simulate(j.machine, j.spec.build(), check=j.check)
                  for j in jobs]
        seen = []
        with SupervisedExecutor(2, default_trace_store()) as ex:
            outcomes = ex.run(
                jobs, on_result=lambda job, *rest: seen.append(job.label))
        assert all(o.ok for o in outcomes)
        assert [o.attempts for o in outcomes] == [1, 1]
        for outcome, expect in zip(outcomes, inline):
            assert outcome.result.to_dict() == expect.to_dict()
        assert sorted(seen) == sorted(j.label for j in jobs)

    def test_stats_stay_quiet_on_a_clean_run(self):
        with SupervisedExecutor(2, default_trace_store()) as ex:
            ex.run(tiny_jobs())
            assert not ex.stats.eventful

    def test_close_is_idempotent(self):
        ex = SupervisedExecutor(1, default_trace_store())
        ex.close()
        ex.close()
