"""The HTTP/JSON API: routes, wire error taxonomy, keep-alive."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from http.client import HTTPConnection
from urllib.parse import urlsplit

import pytest

from _helpers import broken_job, tiny_job


def get(url: str):
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def post(url: str, payload):
    body = json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


class TestRoutes:
    def test_healthz(self, live_server):
        _, base = live_server
        status, payload = get(f"{base}/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert "code_version" in payload["version"]

    def test_stats(self, live_server):
        _, base = live_server
        status, payload = get(f"{base}/stats")
        assert status == 200
        assert {"queue_depth", "workers", "counters",
                "resilience"} <= set(payload)

    def test_submit_single_job_and_fetch_result(self, live_server):
        service, base = live_server
        job = tiny_job(0)
        status, payload = post(f"{base}/jobs", job.to_dict())
        assert status == 200
        assert payload["count"] == 1
        job_id = payload["jobs"][0]["id"]
        assert job_id == job.content_hash()
        service.wait(job_id, timeout=60)
        status, result = get(f"{base}/jobs/{job_id}/result")
        assert status == 200
        assert result["id"] == job_id
        assert result["source"] == "simulated"
        assert result["result"]["breakdown"]["busy"] > 0

    def test_submit_batch(self, live_server):
        service, base = live_server
        jobs = [tiny_job(i) for i in range(3)]
        status, payload = post(
            f"{base}/jobs", {"jobs": [j.to_dict() for j in jobs]})
        assert status == 200
        assert payload["count"] == 3
        assert [j["id"] for j in payload["jobs"]] == [
            j.content_hash() for j in jobs]

    def test_status_polling_shape(self, live_server):
        service, base = live_server
        job = tiny_job(1)
        post(f"{base}/jobs", job.to_dict())
        status, payload = get(f"{base}/jobs/{job.content_hash()}")
        assert status == 200
        assert payload["status"] in ("queued", "running", "done")
        assert payload["label"] == job.label


class TestErrorTaxonomy:
    def test_unknown_job_is_404(self, live_server):
        _, base = live_server
        status, payload = get(f"{base}/jobs/{'0' * 64}")
        assert status == 404
        assert payload["error"]["type"] == "UnknownJob"

    def test_unknown_path_is_404(self, live_server):
        _, base = live_server
        assert get(f"{base}/nope")[0] == 404
        assert post(f"{base}/nope", {})[0] == 404

    def test_malformed_spec_is_400(self, live_server):
        _, base = live_server
        status, payload = post(f"{base}/jobs", {"trace": {}})
        assert status == 400
        assert payload["error"]["type"] == "ConfigError"

    def test_invalid_geometry_is_400(self, live_server):
        _, base = live_server
        spec = tiny_job(0).to_dict()
        spec["machine"]["l2_size"] = 12345  # not a valid capacity
        status, payload = post(f"{base}/jobs", spec)
        assert status == 400
        assert payload["error"]["type"] == "ConfigError"

    def test_non_json_body_is_400(self, live_server):
        _, base = live_server
        req = urllib.request.Request(
            f"{base}/jobs", data=b"not json at all",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400

    def test_bad_batch_rejected_before_any_acceptance(self, live_server):
        service, base = live_server
        good, bad = tiny_job(2).to_dict(), {"trace": {}}
        status, _ = post(f"{base}/jobs", {"jobs": [good, bad]})
        assert status == 400
        assert service.get(tiny_job(2).content_hash()) is None

    def test_unfinished_result_is_409(self, make_service, live_server):
        service, base = live_server
        job = tiny_job(3)
        post(f"{base}/jobs", job.to_dict())
        # Immediately after submit the job may be queued or running;
        # either way the result endpoint must refuse with 409 until
        # it is finished (poll briefly in case it already completed).
        status, payload = get(f"{base}/jobs/{job.content_hash()}/result")
        if status == 409:
            assert payload["error"]["type"] == "NotFinished"
        else:
            assert status == 200  # raced to completion: also legal

    def test_failed_job_result_is_410(self, live_server):
        service, base = live_server
        job = broken_job()
        post(f"{base}/jobs", job.to_dict())
        service.wait(job.content_hash(), timeout=60)
        status, payload = get(f"{base}/jobs/{job.content_hash()}/result")
        assert status == 410
        assert payload["error"]["type"] == "JobFailed"


class TestScenarioSubmission:
    """Server-side ``{"scenario": name}`` expansion: a submission names
    a registered scenario and the service expands it to the ladder's
    content-addressed jobs."""

    def test_scenario_expands_to_the_ladder(self, live_server):
        from repro.scenario import get_scenario

        service, base = live_server
        status, payload = post(
            f"{base}/jobs", {"scenario": "tpcb-uni", "scale": 256,
                             "txns": 10})
        assert status == 200
        assert payload["count"] == 3
        # The server-side expansion hashes exactly as a client-side one
        # would: job identity is process-independent.
        expected = get_scenario("tpcb-uni").jobs(scale=256, txns=10)
        assert [j["id"] for j in payload["jobs"]] == [
            j.content_hash() for j in expected]
        service.wait(expected[0].content_hash(), timeout=60)
        status, result = get(
            f"{base}/jobs/{expected[0].content_hash()}/result")
        assert status == 200
        assert result["result"]["breakdown"]["busy"] > 0

    def test_resubmission_hits_the_same_ids(self, live_server):
        _, base = live_server
        spec = {"scenario": "read-heavy-uni", "scale": 256, "txns": 8}
        _, first = post(f"{base}/jobs", spec)
        _, second = post(f"{base}/jobs", spec)
        assert [j["id"] for j in first["jobs"]] == [
            j["id"] for j in second["jobs"]]

    def test_batch_mixes_scenarios_and_plain_jobs(self, live_server):
        _, base = live_server
        status, payload = post(f"{base}/jobs", {"jobs": [
            tiny_job(7).to_dict(),
            {"scenario": "tpcb-uni", "scale": 256, "txns": 10},
        ]})
        assert status == 200
        assert payload["count"] == 4
        assert payload["jobs"][0]["id"] == tiny_job(7).content_hash()

    def test_unknown_scenario_is_400_listing_the_menu(self, live_server):
        _, base = live_server
        status, payload = post(f"{base}/jobs", {"scenario": "no-such"})
        assert status == 400
        assert payload["error"]["type"] == "ConfigError"
        assert "tpcb-uni" in payload["error"]["message"]

    def test_bad_scenario_in_batch_accepts_nothing(self, live_server):
        service, base = live_server
        status, _ = post(f"{base}/jobs", {"jobs": [
            tiny_job(8).to_dict(),
            {"scenario": "no-such"},
        ]})
        assert status == 400
        assert service.get(tiny_job(8).content_hash()) is None

    def test_malformed_scenario_sizes_are_400(self, live_server):
        _, base = live_server
        status, payload = post(
            f"{base}/jobs", {"scenario": "tpcb-uni", "txns": "lots"})
        assert status == 400
        assert payload["error"]["type"] == "ConfigError"


class TestTransport:
    def test_keep_alive_serves_many_requests_per_connection(
            self, live_server):
        _, base = live_server
        parts = urlsplit(base)
        conn = HTTPConnection(parts.hostname, parts.port, timeout=10)
        try:
            for _ in range(5):
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            conn.close()

    def test_draining_service_refuses_submissions_with_503(
            self, live_server):
        service, base = live_server
        service.close()
        status, payload = post(f"{base}/jobs", tiny_job(9).to_dict())
        assert status == 503
        assert payload["error"]["type"] == "ServiceUnavailableError"
