"""End-to-end acceptance: HTTP results vs serial ground truth, and
SIGKILL-restart resume producing byte-identical output.

These are the two contracts that make service mode trustworthy:

1. the Figure 5 corpus submitted over HTTP at high concurrency yields
   results **bit-identical** to the serial in-process path;
2. a server SIGKILLed mid-campaign and restarted on the same journal
   finishes the remaining work, and the assembled output is
   **byte-identical** to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.common import Settings
from repro.runner import run_simulations
from repro.runner.jobs import canonical_json
from repro.service import figure_jobs
from repro.service.corpus import perturbed_jobs

SETTINGS = Settings(scale=128, uni_txns=20, mp_txns=40)
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def results_csv(rows) -> bytes:
    """A deterministic CSV over (label, hash, result-dict) rows.

    The payload column is the result's full canonical JSON, so two
    byte-identical CSVs mean every statistic of every job agrees.
    """
    lines = ["label,job,result"]
    for label, job_hash, result in sorted(rows, key=lambda r: r[1]):
        lines.append(f"{label},{job_hash},{canonical_json(result)}")
    return ("\n".join(lines) + "\n").encode()


def fetch_json(url: str):
    with urllib.request.urlopen(url) as resp:
        return json.load(resp)


class TestHTTPMatchesSerial:
    def test_fig5_corpus_bit_identical_at_high_concurrency(
            self, live_server, store):
        service, base = live_server
        jobs = figure_jobs(("fig5",), SETTINGS)
        serial = run_simulations(jobs)

        def submit(job):
            body = json.dumps(job.to_dict()).encode()
            req = urllib.request.Request(
                f"{base}/jobs", data=body,
                headers={"Content-Type": "application/json"})
            return json.load(urllib.request.urlopen(req))

        # 36 concurrent submissions of the 9-job corpus (every job
        # four times): exercises dedup under real thread concurrency.
        submissions = [jobs[i % len(jobs)] for i in range(36)]
        with ThreadPoolExecutor(max_workers=36) as pool:
            responses = list(pool.map(submit, submissions))
        assert all(r["count"] == 1 for r in responses)

        for job, expected in zip(jobs, serial):
            job_hash = job.content_hash()
            entry = service.wait(job_hash, timeout=180)
            assert entry.status == "done"
            payload = fetch_json(f"{base}/jobs/{job_hash}/result")
            assert canonical_json(payload["result"]) == canonical_json(
                expected.to_dict())
        # Every duplicate submission attached instead of re-running.
        assert service.counters.simulated == len(jobs)
        assert service.counters.dedup_hits == 36 - len(jobs)


class TestKillRestartResume:
    def test_sigkill_then_restart_yields_byte_identical_csv(
            self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        journal = str(tmp_path / "svc.journal")
        args = [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--port", "0", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", journal,
            "--scale", str(SETTINGS.scale),
            "--uni-txns", str(SETTINGS.uni_txns),
        ]

        def start():
            proc = subprocess.Popen(
                args, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env, cwd=str(tmp_path))
            line = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:\d+", line)
            assert match, f"no listen line: {line!r}"
            return proc, match.group(0)

        jobs = perturbed_jobs(10, SETTINGS, start=500)
        ids = [job.content_hash() for job in jobs]

        first, base = start()
        body = json.dumps({"jobs": [j.to_dict() for j in jobs]}).encode()
        req = urllib.request.Request(
            f"{base}/jobs", data=body,
            headers={"Content-Type": "application/json"})
        accepted = json.load(urllib.request.urlopen(req))
        assert accepted["count"] == len(jobs)
        time.sleep(0.25)  # let some jobs finish, leave some in flight
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=30)

        second, base = start()
        try:
            deadline = time.time() + 180
            statuses = {}
            while len(statuses) < len(ids) and time.time() < deadline:
                for job_id in ids:
                    if job_id in statuses:
                        continue
                    status = fetch_json(f"{base}/jobs/{job_id}")
                    if status["status"] in ("done", "failed"):
                        statuses[job_id] = status
                time.sleep(0.1)
            assert len(statuses) == len(ids), "restart lost accepted jobs"
            assert all(s["status"] == "done" for s in statuses.values())
            assert all(s["recovered"] for s in statuses.values())

            served = results_csv(
                (job.label, job_hash,
                 fetch_json(f"{base}/jobs/{job_hash}/result")["result"])
                for job, job_hash in zip(jobs, ids)
            )
        finally:
            second.send_signal(signal.SIGTERM)
            out, _ = second.communicate(timeout=120)
        assert second.returncode == 0, out
        assert "drained=yes" in out

        # The uninterrupted ground truth: the same corpus simulated
        # serially in this process.
        uninterrupted = results_csv(
            (job.label, job.content_hash(), result.to_dict())
            for job, result in zip(jobs, run_simulations(jobs))
        )
        assert served == uninterrupted
