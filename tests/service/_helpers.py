"""Plain helpers shared by the service tests (fixtures live in
conftest.py; these are importable functions)."""

from __future__ import annotations

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.runner import SimJob, TraceSpec
from repro.runner.tracestore import TraceStore

#: Scale/size making one simulation take well under a second.
SCALE = 256
TXNS = 15


def tiny_job(index: int = 0, ncpus: int = 1) -> SimJob:
    """A cheap, hash-distinct job (index varies the machine label)."""
    spec = TraceSpec(ncpus=ncpus, scale=SCALE, txns=TXNS,
                     warmup_txns=5, seed=3)
    machine = MachineConfig.base(ncpus, scale=SCALE).with_(
        label=f"svc-test-{index}")
    return SimJob(spec=spec, machine=machine)


def broken_job() -> SimJob:
    """A job that fails terminally in the worker: the trace is a 2-CPU
    workload but the machine wants 1 CPU (a replay mismatch)."""
    spec = TraceSpec(ncpus=2, scale=SCALE, txns=TXNS,
                     warmup_txns=5, seed=3)
    return SimJob(spec=spec, machine=MachineConfig.base(1, scale=SCALE))


def simulated_result(job: SimJob, store: TraceStore):
    """The serial ground-truth result for ``job``."""
    return simulate(job.machine, store.get(job.spec), check=job.check)
