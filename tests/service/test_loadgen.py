"""Load generator: schedule math, percentiles, and a live small run."""

from __future__ import annotations

import pytest

from repro.integrity.errors import ConfigError
from repro.service import loadgen

from _helpers import tiny_job


class TestParseMix:
    def test_parses_ratio(self):
        assert loadgen.parse_mix("80:20") == (80, 20)
        assert loadgen.parse_mix("1:0") == (1, 0)

    @pytest.mark.parametrize("bad", ["", "80", "a:b", "-1:2", "0:0"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            loadgen.parse_mix(bad)


class TestPercentiles:
    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert loadgen.percentile(samples, 50) == 50.0
        assert loadgen.percentile(samples, 99) == 99.0
        assert loadgen.percentile(samples, 100) == 100.0

    def test_empty_and_single(self):
        assert loadgen.percentile([], 99) == 0.0
        assert loadgen.percentile([7.0], 50) == 7.0

    def test_summary_shape(self):
        summary = loadgen.summarize([0.1, 0.2, 0.3])
        assert summary["count"] == 3
        assert summary["p50"] == 0.2
        assert summary["max"] == 0.3
        assert loadgen.summarize([]) == {"count": 0}


class TestSchedule:
    def test_mix_ratio_holds_for_short_runs(self):
        warm = [tiny_job(0)]
        cold = [tiny_job(100 + i) for i in range(10)]
        schedule = loadgen.build_schedule(warm, cold, 10, (80, 20))
        kinds = [kind for kind, _ in schedule]
        assert kinds.count("cold") == 2
        assert kinds.count("warm") == 8

    def test_cold_exhaustion_falls_back_to_warm(self):
        schedule = loadgen.build_schedule(
            [tiny_job(0)], [tiny_job(100)], 10, (1, 1))
        kinds = [kind for kind, _ in schedule]
        assert kinds.count("cold") == 1
        assert kinds.count("warm") == 9

    def test_all_cold_mix(self):
        cold = [tiny_job(100 + i) for i in range(4)]
        schedule = loadgen.build_schedule([], cold, 4, (0, 1))
        assert [k for k, _ in schedule] == ["cold"] * 4

    def test_deterministic(self):
        warm = [tiny_job(i) for i in range(2)]
        cold = [tiny_job(100 + i) for i in range(5)]
        a = loadgen.build_schedule(warm, cold, 20, (3, 1))
        b = loadgen.build_schedule(warm, cold, 20, (3, 1))
        assert a == b


class TestLiveRun:
    def test_small_session_reports_clean(self, live_server):
        _, base = live_server
        warm = [tiny_job(i) for i in range(2)]
        cold = [tiny_job(200 + i) for i in range(3)]
        report = loadgen.generate(
            base, warm, cold, requests=12, concurrency=4,
            mix=(3, 1), poll_timeout=120,
        )
        assert report["ok"], report
        assert report["requests"] == 12
        assert report["transport_errors"] == 0
        done = report["phases"]["submit_done"]
        assert done["warm"]["count"] == 9
        assert done["cold"]["count"] == 3
        # Warm submissions answer from the in-memory entry table; cold
        # ones simulate.  Warm latency must sit well under cold.
        assert done["warm"]["p50"] < done["cold"]["p50"]
        text = loadgen.render(report)
        assert "verdict: OK" in text
        assert "submit_accept" in text
