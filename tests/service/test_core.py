"""JobService unit behaviour: dedup, warm paths, backpressure, drain."""

from __future__ import annotations

import pytest

from repro.integrity.errors import QueueFullError, ServiceUnavailableError
from repro.runner import CampaignJournal
from repro.service import STATUS_DONE, STATUS_FAILED, STATUS_QUEUED

from _helpers import broken_job, simulated_result, tiny_job


class TestSubmission:
    def test_cold_job_simulates_and_completes(self, make_service, store):
        service = make_service()
        entry = service.submit(tiny_job(0))
        done = service.wait(entry.job_hash, timeout=60)
        assert done.status == STATUS_DONE
        assert done.source == "simulated"
        assert done.result.to_dict() == simulated_result(
            tiny_job(0), store).to_dict()
        assert service.counters.simulated == 1

    def test_duplicate_hash_attaches_to_existing_entry(self, make_service):
        service = make_service(started=False)
        first = service.submit(tiny_job(0))
        second = service.submit(tiny_job(0))
        assert second is first
        assert first.submissions == 2
        assert service.counters.dedup_hits == 1
        assert service.counters.accepted == 1

    def test_cache_hit_is_born_done_without_queueing(
            self, make_service, cache, store):
        job = tiny_job(1)
        cache.store(job, simulated_result(job, store))
        service = make_service(started=False)
        entry = service.submit(job)
        assert entry.status == STATUS_DONE
        assert entry.source == "cache"
        assert service.counters.cache_hits == 1
        assert service.counters.accepted == 0

    def test_journal_hit_is_born_done(self, make_service, store,
                                      journal_path):
        job = tiny_job(2)
        with CampaignJournal(journal_path) as journal:
            journal.append(job, simulated_result(job, store))
        service = make_service(started=False)
        entry = service.submit(job)
        assert entry.status == STATUS_DONE
        assert entry.source == "journal"
        assert service.counters.journal_hits == 1

    def test_queue_full_raises_and_counts(self, make_service):
        service = make_service(started=False, queue_limit=1)
        service.submit(tiny_job(0))
        with pytest.raises(QueueFullError):
            service.submit(tiny_job(1))
        assert service.counters.rejected_full == 1
        # The rejected job left no trace in the table.
        assert service.get(tiny_job(1).content_hash()) is None

    def test_draining_service_rejects_new_work(self, make_service):
        service = make_service()
        service.close()
        with pytest.raises(ServiceUnavailableError):
            service.submit(tiny_job(0))
        assert service.counters.rejected_draining == 1

    def test_submit_many_preserves_order(self, make_service):
        service = make_service(started=False)
        jobs = [tiny_job(i) for i in range(3)]
        entries = service.submit_many(jobs)
        assert [e.job_hash for e in entries] == [
            j.content_hash() for j in jobs]
        assert all(e.status == STATUS_QUEUED for e in entries)


class TestFailures:
    def test_terminal_worker_failure_marks_entry_failed(
            self, make_service):
        service = make_service()
        entry = service.submit(broken_job())
        done = service.wait(entry.job_hash, timeout=60)
        assert done.status == STATUS_FAILED
        assert done.failure is not None
        assert done.failure["message"]
        assert service.counters.failed == 1

    def test_failed_jobs_do_not_poison_later_submissions(
            self, make_service, store):
        service = make_service()
        bad = service.submit(broken_job())
        good = service.submit(tiny_job(0))
        assert service.wait(bad.job_hash, timeout=60).status == STATUS_FAILED
        assert service.wait(good.job_hash, timeout=60).status == STATUS_DONE


class TestLifecycle:
    def test_graceful_close_drains_queued_work(self, make_service):
        service = make_service()
        entries = [service.submit(tiny_job(i)) for i in range(3)]
        assert service.close(drain=True, timeout=120)
        assert all(e.status == STATUS_DONE for e in entries)

    def test_recovery_requeues_accepted_unfinished_jobs(
            self, make_service, journal_path):
        job = tiny_job(4)
        with CampaignJournal(journal_path) as journal:
            journal.accept(job)
        service = make_service()
        entry = service.get(job.content_hash())
        assert entry is not None
        assert entry.recovered
        assert service.counters.recovered == 1
        assert service.wait(job.content_hash(),
                            timeout=60).status == STATUS_DONE

    def test_recovery_materializes_finished_jobs_as_done(
            self, make_service, store, journal_path):
        job = tiny_job(5)
        with CampaignJournal(journal_path) as journal:
            journal.accept(job)
            journal.append(job, simulated_result(job, store))
        service = make_service(started=True)
        entry = service.get(job.content_hash())
        assert entry is not None
        assert entry.status == STATUS_DONE
        assert entry.source == "journal"
        assert service.counters.recovered == 0  # nothing to re-run

    def test_stats_shape(self, make_service):
        service = make_service()
        entry = service.submit(tiny_job(0))
        service.wait(entry.job_hash, timeout=60)
        stats = service.stats()
        assert stats["workers"] == 2
        assert stats["queue_limit"] == 64
        assert stats["jobs"]["done"] == 1
        assert stats["counters"]["simulated"] == 1
        assert "resilience" in stats
        assert stats["cache"]["hit_rate"] == 0.0
        assert "journal" in stats

    def test_health_carries_version_info(self, make_service):
        service = make_service(started=False)
        health = service.health()
        assert health["ok"] is True
        assert set(health["version"]) >= {
            "package", "code_version", "trace_format"}
