"""Shared fixtures for the job-service tests: tiny jobs, live servers."""

from __future__ import annotations

import threading

import pytest

from repro.runner import CampaignJournal, ResultCache
from repro.runner.tracestore import TraceStore
from repro.service import JobService, ServiceHTTPServer


@pytest.fixture
def store(tmp_path) -> TraceStore:
    """A private trace store spilling under the test's tmp dir."""
    return TraceStore(spill_dir=str(tmp_path / "traces"))


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(str(tmp_path / "results"))


@pytest.fixture
def journal_path(tmp_path) -> str:
    return str(tmp_path / "svc.journal")


@pytest.fixture
def make_service(store, cache, journal_path):
    """Factory for services wired to the test's cache/journal/store;
    everything created is closed at teardown."""
    created = []

    def build(started: bool = True, with_cache: bool = True,
              with_journal: bool = True, **kwargs) -> JobService:
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("queue_limit", 64)
        service = JobService(
            cache=cache if with_cache else None,
            journal=CampaignJournal(journal_path) if with_journal else None,
            trace_store=store,
            **kwargs,
        )
        created.append(service)
        if started:
            service.start()
        return service

    yield build
    for service in created:
        service.close(drain=False)


@pytest.fixture
def live_server(make_service):
    """A started service behind a real HTTP server on an ephemeral
    port; yields ``(service, base_url)``."""
    service = make_service()
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, f"http://127.0.0.1:{httpd.port}"
    finally:
        httpd.shutdown()
        thread.join(timeout=5)
        httpd.server_close()
